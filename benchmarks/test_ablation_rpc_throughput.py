"""Ablation A5 — RPC throughput versus client concurrency.

Paper §6: "We have found that our RPC data transfer protocol, with
multiple outstanding calls, achieves very high performance.  The
remote server can sustain a bandwidth of 4.6 megabits per second using
an average of three concurrent threads."

The bench sweeps concurrent client threads and prints sustained
goodput.  Asserted shape: monotone rise to a plateau of roughly
4-5 Mbit/s, reached by about three threads, with one thread well
below it and the plateau well below the 10 Mbit/s wire.
"""

import pytest

from repro.reporting import Column, TextTable
from repro.workloads.rpc_server import sweep_client_threads

from conftest import emit

THREAD_COUNTS = (1, 2, 3, 4, 6, 8)


def test_ablation_rpc_throughput(once):
    results = once(sweep_client_threads, THREAD_COUNTS,
                   measure_cycles=2_500_000)

    table = TextTable([
        Column("client threads", "d"), Column("goodput Mbit/s", ".2f"),
        Column("wire util", ".0%"), Column("calls", "d"),
        Column("MBus load", ".2f"),
    ])
    for count in THREAD_COUNTS:
        r = results[count]
        table.add_row(count, r.goodput_mbit, r.wire_utilization,
                      r.calls_completed, r.bus_load)
    emit("Ablation A5: RPC throughput vs concurrent client threads "
         "(paper: 4.6 Mbit/s at ~3 threads)", table.render())

    goodput = {k: results[k].goodput_mbit for k in THREAD_COUNTS}
    plateau = max(goodput.values())

    # The plateau sits near the paper's 4.6 Mbit/s, far below the wire.
    assert 3.8 < plateau < 5.4
    assert plateau < 10.0

    # About three threads reach ~95% of the plateau; one thread doesn't.
    assert goodput[3] > 0.92 * plateau
    assert goodput[1] < 0.85 * plateau

    # Monotone (with small simulation noise) up to the plateau.
    assert goodput[1] <= goodput[2] + 0.3
    assert goodput[2] <= goodput[3] + 0.3

    # Extra threads beyond saturation add nothing.
    assert abs(goodput[8] - goodput[4]) < 0.5
