"""Benchmark-harness helpers.

Each benchmark regenerates one of the paper's tables or figures,
prints it to the real stdout (so it lands in ``bench_output.txt``
even under pytest's capture), and saves a copy under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_CAPTURE_MANAGER = []


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1,
        help="worker processes for benchmarks that fan seeded machine "
             "runs out through repro.observatory.runner (default 1; "
             "simulated results are identical at any job count)")


@pytest.fixture
def jobs(request):
    """The --jobs value: trial fan-out width for sweep benchmarks."""
    return request.config.getoption("--jobs")


@pytest.fixture(autouse=True)
def _grab_capture_manager(request):
    """Remember pytest's capture manager so emit() can suspend it.

    pytest captures at the file-descriptor level, so even
    ``sys.__stdout__`` writes would vanish into the capture buffer;
    the artifacts must be printed with capturing suspended to reach
    the terminal (and ``bench_output.txt``)."""
    manager = request.config.pluginmanager.getplugin("capturemanager")
    if manager is not None and manager not in _CAPTURE_MANAGER:
        _CAPTURE_MANAGER.append(manager)
    yield


def emit(name: str, text: str, metrics=None) -> None:
    """Print an artifact to the real stdout and save it to disk.

    ``metrics`` — a :class:`~repro.system.metrics.MachineMetrics` (or a
    ``{label: MachineMetrics}`` dict) — is additionally serialised next
    to the text artifact as ``<name>.json`` via ``to_dict()``, so runs
    can be diffed numerically, not just textually.
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    if _CAPTURE_MANAGER:
        with _CAPTURE_MANAGER[0].global_and_fixture_disabled():
            sys.stdout.write(banner + text + "\n")
            sys.stdout.flush()
    else:
        sys.stdout.write(banner + text + "\n")
        sys.stdout.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = name.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")
    if metrics is not None:
        if isinstance(metrics, dict):
            payload = {str(k): m.to_dict() for k, m in metrics.items()}
        else:
            payload = metrics.to_dict()
        (RESULTS_DIR / f"{safe}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (these are simulations
    measured in simulated time; wall-clock repetition adds nothing)."""
    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return run
