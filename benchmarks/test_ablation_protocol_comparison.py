"""Ablation A2 — coherence-protocol comparison.

The paper's §5.1 argues three positions:

1. simple write-through-invalidate "is not a practical protocol for
   more than a few processors, because the substantial write traffic
   will rapidly saturate the bus";
2. ownership/invalidate protocols avoid that but "perform poorly when
   actual sharing occurs, since the invalidated information must be
   reloaded";
3. the Firefly's conditional write-through pays for sharing only while
   sharing exists (and the Dragon "uses a similar scheme").

The bench runs the identical calibrated workload (same seeds, same
reference streams) under each protocol at 4 CPUs, at the default
sharing level and at a heavy-sharing level, and compares bus load.
"""

import pytest

from repro.processor.refgen import WorkloadShape
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

from conftest import emit

PROTOCOLS = ("firefly", "dragon", "mesi", "berkeley", "write-once",
             "write-through")

LIGHT = WorkloadShape(shared_write_fraction=0.02, shared_read_fraction=0.01)
DEFAULT = WorkloadShape()  # S = 0.1
HEAVY = WorkloadShape(shared_write_fraction=0.33,
                      shared_read_fraction=0.15)


def measure(protocol, shape):
    machine = FireflyMachine(FireflyConfig(
        processors=4, protocol=protocol, workload=shape, seed=23))
    metrics = machine.run(warmup_cycles=120_000, measure_cycles=250_000)
    return {
        "load": metrics.bus_load,
        "ops": metrics.bus_ops,
        "miss_rate": metrics.mean_miss_rate,
        "tpi": metrics.mean_tpi,
    }


def sweep():
    results = {}
    for label, shape in (("light", LIGHT), ("default", DEFAULT),
                         ("heavy", HEAVY)):
        for protocol in PROTOCOLS:
            results[(label, protocol)] = measure(protocol, shape)
    return results


def test_ablation_protocol_comparison(once):
    results = once(sweep)
    table = TextTable([
        Column("sharing", "s", align_left=True),
        Column("protocol", "s", align_left=True),
        Column("bus load", ".3f"), Column("bus ops", "d"),
        Column("M", ".3f"), Column("TPI", ".2f"),
    ])
    for label in ("light", "default", "heavy"):
        for protocol in PROTOCOLS:
            r = results[(label, protocol)]
            table.add_row(label, protocol, r["load"], r["ops"],
                          r["miss_rate"], r["tpi"])
        table.add_separator()
    emit("Ablation A2: protocol comparison (4 CPUs, identical streams)",
         table.render())

    for label in ("light", "default", "heavy"):
        loads = {p: results[(label, p)]["load"] for p in PROTOCOLS}
        # Claim 1: write-through-invalidate saturates the bus relative
        # to every write-back protocol, at every sharing level.
        for protocol in PROTOCOLS:
            if protocol != "write-through":
                assert loads["write-through"] > 1.35 * loads[protocol], label

        # Claim 3: Firefly and Dragon behave alike ("a similar scheme").
        assert loads["firefly"] == pytest.approx(loads["dragon"], rel=0.2)

    # Claim 2: under heavy true sharing, the invalidate protocols force
    # reload misses the update protocols avoid.
    heavy_miss = {p: results[("heavy", p)]["miss_rate"] for p in PROTOCOLS}
    assert heavy_miss["mesi"] > heavy_miss["firefly"]
    assert heavy_miss["berkeley"] > heavy_miss["firefly"]
    heavy_loads = {p: results[("heavy", p)]["load"] for p in PROTOCOLS}
    assert heavy_loads["mesi"] > heavy_loads["firefly"]
    assert heavy_loads["berkeley"] > heavy_loads["firefly"]

    # And the flip side the paper concedes: with almost no sharing,
    # invalidate write-back protocols are competitive (no conditional
    # write-through to pay for) — Firefly must not win big there.
    light_loads = {p: results[("light", p)]["load"] for p in PROTOCOLS}
    assert light_loads["firefly"] < 1.25 * light_loads["mesi"]
