"""Ablation A11 — open vs. closed queueing model vs. cycle simulation.

Paper §5.2, of its open-network approximation: "This is not accurate
at high loads, since the number of caches requesting service is
bounded, but it is fairly accurate at the moderate loads at which the
system actually operates."

This bench quantifies that sentence: the open model, an exact-MVA
closed model (bounded population — the refinement the paper skipped),
and the cycle simulator, across processor counts.  Asserted shape:
the models agree at moderate load; at high processor counts the open
model over-predicts TPI, the closed model sits between it and the
simulation, and the closed model saturates at the asymptotic bus
bound (~10.4 no-wait processors' worth) instead of diverging.
"""

import pytest

from repro.analytic.closed_model import ClosedFireflyModel
from repro.analytic.queueing import FireflyAnalyticModel
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

from conftest import emit

SIMULATED_COUNTS = (2, 5, 8, 12)
MODEL_COUNTS = (2, 5, 8, 12, 16, 24)


def simulate(np):
    machine = FireflyMachine(FireflyConfig(processors=np))
    metrics = machine.run(warmup_cycles=200_000, measure_cycles=250_000)
    return {"load": metrics.bus_load, "tpi": metrics.mean_tpi}


def test_ablation_closed_model(once):
    sim_results = once(lambda: {np: simulate(np) for np in SIMULATED_COUNTS})

    open_model = FireflyAnalyticModel()
    closed = ClosedFireflyModel()
    table = TextTable([
        Column("NP", "d"),
        Column("L open", ".2f"), Column("L closed", ".2f"),
        Column("L sim", "s"),
        Column("TPI open", ".1f"), Column("TPI closed", ".1f"),
        Column("TPI sim", "s"),
        Column("TP open", ".2f"), Column("TP closed", ".2f"),
    ])
    for np in MODEL_COUNTS:
        c = closed.operating_point(np)
        try:
            o = open_model.operating_point(np)
            o_load, o_tpi, o_tp = o.load, o.tpi, o.total_performance
        except Exception:
            o_load = o_tpi = o_tp = float("nan")
        sim = sim_results.get(np)
        table.add_row(np, o_load, c.load,
                      f"{sim['load']:.2f}" if sim else "-",
                      o_tpi, c.tpi,
                      f"{sim['tpi']:.1f}" if sim else "-",
                      o_tp, c.total_performance)
    bound = closed.asymptotic_bound()
    emit("Ablation A11: open vs closed queueing model vs simulation",
         table.render() + f"\nasymptotic bus bound: TP <= {bound:.1f}")

    # Moderate loads: all three agree on L to slide-rule accuracy.
    for np in (2, 5):
        c, o, s = (closed.operating_point(np), open_model.operating_point(np),
                   sim_results[np])
        assert c.load == pytest.approx(o.load, abs=0.03)
        assert s["load"] == pytest.approx(o.load, abs=0.12)

    # High population: open >= closed >= simulated TPI (the paper's
    # "not accurate at high loads", quantified).
    for np in (8, 12):
        c, o, s = (closed.operating_point(np), open_model.operating_point(np),
                   sim_results[np])
        assert o.tpi >= c.tpi >= s["tpi"] - 0.2

    # The closed model saturates at the bus bound instead of diverging.
    assert closed.operating_point(64).total_performance <= bound + 1e-6
    assert closed.operating_point(64).total_performance > 0.95 * bound
