"""Ablation A7 — cache geometry: the 4-byte line and the 16 KB size.

Paper footnote 4: "This is an abnormally large miss rate for a 16
kilobyte cache.  We attribute it to the small line size (4 bytes).  A
larger line would probably have reduced the miss rate considerably,
but it would have complicated the design ... Since the penalty for a
miss is only one tick if the MBus is available ... we did not pursue a
larger line."  And §5.2: "If the Firefly processors were significantly
faster relative to main memory, then it would be necessary to push
down the miss rate either by increasing the cache size or by
increasing the cache block size."

Two sweeps on identical-seed workloads:

- line size 1/2/4 words at fixed 16 KB capacity, on a spatially local
  trace (sequential instruction runs give multi-word lines their win);
- cache size 4 KB..64 KB at one-word lines on a capacity-stressing
  working set.
"""

import pytest

from repro.cache.cache import CacheGeometry
from repro.processor.refgen import WorkloadShape
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

from conftest import emit

CAPACITY_SHAPE = WorkloadShape(
    data_working_set=5500, data_reuse=0.97, loop_iterations=14.0,
    write_set_size=1500, write_locality=0.9, loop_length=48,
    prefill_working_set=True)


def run(geometry, shape=None):
    config = FireflyConfig(processors=2, cache_geometry=geometry,
                           seed=47, **({"workload": shape} if shape else {}))
    machine = FireflyMachine(config)
    metrics = machine.run(warmup_cycles=250_000, measure_cycles=250_000)
    return {
        "miss_rate": metrics.mean_miss_rate,
        "load": metrics.bus_load,
        "tpi": metrics.mean_tpi,
    }


def sweep():
    line_rows = []
    for words in (1, 2, 4):
        geometry = CacheGeometry(4096 // words, words)  # constant 16 KB
        line_rows.append((words, run(geometry)))
    size_rows = []
    for lines in (1024, 4096, 16384):
        size_rows.append((lines, run(CacheGeometry(lines, 1),
                                     shape=CAPACITY_SHAPE)))
    return line_rows, size_rows


def test_ablation_cache_geometry(once):
    line_rows, size_rows = once(sweep)

    table = TextTable([
        Column("sweep", "s", align_left=True),
        Column("geometry", "s", align_left=True),
        Column("M", ".3f"), Column("L", ".3f"), Column("TPI", ".2f"),
    ])
    for words, r in line_rows:
        table.add_row("line size", f"16KB, {words * 4}B lines",
                      r["miss_rate"], r["load"], r["tpi"])
    table.add_separator()
    for lines, r in size_rows:
        table.add_row("cache size", f"{lines * 4 // 1024}KB, 4B lines",
                      r["miss_rate"], r["load"], r["tpi"])
    emit("Ablation A7: cache geometry (line-size and size sweeps)",
         table.render())

    # Footnote 4: larger lines reduce the miss rate considerably
    # (spatial locality in the instruction stream).
    m1 = dict(line_rows)[1]["miss_rate"]
    m4 = dict(line_rows)[4]["miss_rate"]
    assert m4 < 0.7 * m1
    # The default geometry shows the paper's "abnormally large" M~0.2.
    assert 0.14 < m1 < 0.26

    # Cache-size sweep on a capacity-bound working set: bigger wins.
    sizes = dict(size_rows)
    assert sizes[4096]["miss_rate"] < sizes[1024]["miss_rate"]
    assert sizes[16384]["miss_rate"] < 0.6 * sizes[4096]["miss_rate"]
    assert sizes[16384]["load"] < sizes[1024]["load"]

    # And the design rationale: the small-line penalty in *time* is
    # modest, because a miss costs only one extra tick on a free bus —
    # TPI moves far less than M does.
    tpi1 = dict(line_rows)[1]["tpi"]
    tpi4 = dict(line_rows)[4]["tpi"]
    assert (tpi1 - tpi4) / tpi4 < 0.5 * (m1 - m4) / max(m4, 1e-9)
