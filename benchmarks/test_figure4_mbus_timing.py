"""Figure 4 — MBus Timing.

A scripted two-cache scenario runs on the cycle-accurate bus with the
signal tracer enabled; the timing diagram is rendered from the
captured per-cycle events.  Assertions pin the figure's content: four
cycles per operation, arbitration + address in cycle 1, write data in
cycle 2, MShared in cycle 3, read data in cycle 4 (from the caches,
memory inhibited, when MShared was asserted).
"""

from repro.bus.mbus import MBus
from repro.bus.signals import SignalTrace, TimingDiagram
from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.protocols import protocol_by_name
from repro.common.events import Simulator
from repro.common.types import MBUS_OP_CYCLES, AccessKind, MemRef
from repro.memory.main_memory import MainMemory, MemoryModule

from conftest import emit


def run_scenario():
    sim = Simulator()
    trace = SignalTrace()
    memory = MainMemory([MemoryModule(0, 1 << 16, is_master=True)])
    bus = MBus(sim, memory, trace=trace)
    protocol = protocol_by_name("firefly")
    cache0 = SnoopyCache(bus, protocol, 0, CacheGeometry(64, 1))
    cache1 = SnoopyCache(bus, protocol, 1, CacheGeometry(64, 1))

    def scenario():
        # 1. cache 0 read-misses: MRead answered by memory.
        yield from cache0.cpu_read(MemRef(40, AccessKind.DATA_READ))
        # 2. cache 0 dirties the line locally (no bus operation).
        yield from cache0.cpu_write(MemRef(40, AccessKind.DATA_WRITE), 7)
        # 3. cache 1 read-misses: MRead answered by cache 0 with
        #    MShared asserted and memory inhibited.
        yield from cache1.cpu_read(MemRef(40, AccessKind.DATA_READ))
        # 4. cache 1 writes the now-shared line: MWrite receiving
        #    MShared (conditional write-through).
        yield from cache1.cpu_write(MemRef(40, AccessKind.DATA_WRITE), 9)

    sim.process(scenario(), "scenario")
    sim.run()
    return trace


def test_figure4_mbus_timing(once):
    trace = once(run_scenario)
    diagram = TimingDiagram(trace).render()
    emit("Figure 4: MBus Timing (captured signal trace)", diagram)

    assert len(trace.transactions) == 3  # MRead, MRead(MShared), MWrite
    read_plain, read_shared, write_shared = trace.transactions

    for txn in trace.transactions:
        assert txn.end_cycle - txn.start_cycle == MBUS_OP_CYCLES
        events = {e.signal: e.cycle - txn.start_cycle for e in txn.events}
        assert events["Arbitrate"] == 0
        assert events["Address"] == 0
        assert events["TagProbe"] == 1

    # Plain read: no MShared, data from memory in cycle 4.
    events = {e.signal: e.cycle - read_plain.start_cycle
              for e in read_plain.events}
    assert not read_plain.shared_response
    assert events["ReadData"] == 3
    assert not read_plain.supplied_by_cache

    # Shared read: MShared in cycle 3, cache-supplied data in cycle 4.
    events = {e.signal: e.cycle - read_shared.start_cycle
              for e in read_shared.events}
    assert read_shared.shared_response
    assert events["MShared"] == 2
    assert events["ReadData"] == 3
    assert read_shared.supplied_by_cache

    # Write-through: write data in cycle 2, MShared response in cycle 3.
    events = {e.signal: e.cycle - write_shared.start_cycle
              for e in write_shared.events}
    assert write_shared.shared_response
    assert events["WriteData"] == 1
    assert events["MShared"] == 2

    # One transfer per 400 ns: transactions never overlap.
    for earlier, later in zip(trace.transactions, trace.transactions[1:]):
        assert later.start_cycle >= earlier.end_cycle
