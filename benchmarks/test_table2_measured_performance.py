"""Table 2 — Firefly Measured Performance (K refs/sec).

Runs the Topaz Threads exerciser on one-CPU and five-CPU machines
(prefetching enabled, light instruction mix) and prints the paper's
rows: per-CPU read/write/total reference rates against the analytic
*Expected* columns, total MBus references with bus load, and the
per-CPU MBus breakdown — reads (with miss rate), writes split into
MShared-received / not-received / victims.

Absolute numbers need not match 1987 hardware; the benchmark asserts
the table's *signatures*: Actual exceeding Expected, the one-CPU miss
rate far above the five-CPU one, roughly a third of five-CPU writes
receiving MShared, and victim writes suppressed by write-through.
"""

import pytest

from repro.reporting import Column, TextTable
from repro.workloads.threads_exerciser import (
    build_exerciser,
    exerciser_expectations,
)

from conftest import emit

WARMUP = 200_000
MEASURE = 400_000


def run_table2():
    results = {}
    for processors in (1, 5):
        kernel = build_exerciser(processors)
        metrics = kernel.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
        results[processors] = (kernel, metrics)
    return results


def render(results):
    blocks = []
    for processors, (kernel, metrics) in results.items():
        expected = exerciser_expectations(processors)
        seconds = metrics.window_seconds
        n = metrics.processors
        per_cpu_bus_reads = metrics.bus_reads / n / seconds / 1e3
        per_cpu_mshared = metrics.bus_writes_mshared / n / seconds / 1e3
        per_cpu_not = metrics.bus_writes_not_mshared / n / seconds / 1e3
        per_cpu_victims = metrics.bus_victim_writes / n / seconds / 1e3

        table = TextTable([Column(f"{processors}-CPU system", "s",
                                  align_left=True),
                           Column("Expected", ".0f"),
                           Column("Actual", ".0f")])
        table.add_row("Per CPU: Reads", expected["reads_krate"],
                      metrics.mean_read_krate)
        table.add_row("         Writes", expected["writes_krate"],
                      metrics.mean_write_krate)
        table.add_row("         Total", expected["total_krate"],
                      metrics.mean_cpu_krate)
        table.add_separator()
        table.add_row(f"MBus Total (L={metrics.bus_load:.2f})",
                      None, metrics.bus_krate)
        table.add_row(f"MBus Reads/CPU (M={metrics.mean_miss_rate:.2f})",
                      None, per_cpu_bus_reads)
        table.add_row("Writes w/ MShared /CPU", None, per_cpu_mshared)
        table.add_row("Writes w/o MShared /CPU", None, per_cpu_not)
        table.add_row("Victim writes /CPU", None, per_cpu_victims)
        extra = (f"migrations={kernel.total_migrations}  "
                 f"context switches="
                 f"{kernel.stats['context_switches'].total}  "
                 f"read:write="
                 f"{metrics.mean_read_krate / metrics.mean_write_krate:.2f}")
        blocks.append(table.render() + "\n" + extra)
    return "\n\n".join(blocks)


def test_table2_measured_performance(once):
    results = once(run_table2)
    emit("Table 2: Firefly Measured Performance (K refs/sec)",
         render(results),
         metrics={f"{n}cpu": m for n, (_, m) in results.items()})

    _, one = results[1]
    one_kernel = results[1][0]
    five_kernel, five = results[5]

    # Signature 1: measured rates exceed the analytic expectation
    # (prefetching + the exerciser's light instructions), as in the
    # paper's 1350 vs 850 and 1075 vs 752.
    assert one.mean_cpu_krate > 1.2 * exerciser_expectations(1)["total_krate"]
    assert five.mean_cpu_krate > 1.2 * exerciser_expectations(5)["total_krate"]

    # Signature 2: the one-CPU miss rate is much higher (cold caches
    # from rapid context switching among all threads on one cache):
    # paper M = 0.3 vs 0.17.
    assert one.mean_miss_rate > five.mean_miss_rate + 0.08

    # Signature 3: heavy true sharing on the five-CPU system — the
    # paper measured 33% of CPU writes receiving MShared; S=0.1 was
    # "clearly too low".
    cpu_writes = sum(c.data_writes for c in five.cpus)
    mshared_fraction = five.bus_writes_mshared / cpu_writes
    assert 0.2 < mshared_fraction < 0.5
    assert mshared_fraction > 3 * 0.1   # far above the assumed S

    # Signature 4: victim writes suppressed because write-throughs
    # leave lines clean.
    assert five.bus_victim_writes < five.bus_writes_mshared

    # Signature 5: substantial bus load at five CPUs (paper: L=0.54),
    # and single-CPU load far lower.
    assert 0.45 < five.bus_load < 0.85
    assert one.bus_load < 0.35

    # Signature 6: there was real synchronisation and migration.
    assert five_kernel.stats["blocks"].total > 0
    assert five_kernel.total_migrations > 0
