"""Ablation A10 — the coarse-grained application speedups of §6.

"New software will obtain the greatest benefit from multiprocessing.
For example, we have implemented a parallel version of the Unix make
utility, which forks multiple compilations in parallel when possible.
An experimental version of the Modula-2+ compiler quickly reads in the
source file and then compiles each procedure body in parallel."

Both applications on one vs. four processors.  Make (compile-dominated
DAG, shared disk) speeds up strongly; the compiler (serial front/back
end around a parallel middle) shows the Amdahl bend.
"""

import pytest

from repro.io.subsystem import IoSubsystem
from repro.reporting import Column, TextTable
from repro.topaz.kernel import TopazKernel
from repro.workloads.parallel_compiler import CompilerParams, ParallelCompiler
from repro.workloads.parallel_make import ParallelMake, sample_project

from conftest import emit


def run_make(processors):
    kernel = TopazKernel.build(processors=processors, threads_hint=24,
                               io_enabled=True, seed=3)
    io = IoSubsystem(kernel.machine)
    make = ParallelMake(kernel, io, sample_project(6),
                        max_parallel=processors)
    return make.run(max_cycles=200_000_000)


def run_compiler(processors):
    kernel = TopazKernel.build(processors=processors, threads_hint=24,
                               io_enabled=True, seed=5)
    io = IoSubsystem(kernel.machine)
    compiler = ParallelCompiler(kernel, io, CompilerParams(procedures=10))
    return compiler.run(max_cycles=200_000_000)


def test_ablation_applications(once):
    results = once(lambda: {
        ("make", 1): run_make(1), ("make", 4): run_make(4),
        ("compiler", 1): run_compiler(1), ("compiler", 4): run_compiler(4),
    })

    table = TextTable([
        Column("application", "s", align_left=True),
        Column("CPUs", "d"), Column("elapsed (ms)", ".1f"),
        Column("speedup", ".2f"),
    ])
    speedups = {}
    for app in ("make", "compiler"):
        base = results[(app, 1)]
        for processors in (1, 4):
            span = results[(app, processors)]
            speedups[(app, processors)] = base / span
            table.add_row(app, processors, span * 1e-7 * 1e3, base / span)
    emit("Ablation A10: coarse-grained application speedups (paper §6)",
         table.render())

    # Make: compile-dominated, parallelises well (disk seeks bound it
    # below ideal).
    assert 1.8 < speedups[("make", 4)] < 4.0
    # Compiler: the serial read/parse/emit phases bend the curve —
    # real speedup, but visibly sub-linear.
    assert 1.2 < speedups[("compiler", 4)] < 3.0
    assert speedups[("compiler", 4)] < speedups[("make", 4)]
