"""Table 1 — Firefly Estimated Performance (the analytic model).

Regenerates the paper's table exactly: bus loading L, ticks per
instruction TPI, relative per-processor performance RP and total
system performance TP for NP = 2..12 processors, from the open
queueing model with the paper's parameters (M=0.2, D=0.25, S=0.1).
"""

import pytest

from repro.analytic.queueing import FireflyAnalyticModel, PAPER_TABLE_1
from repro.reporting import Column, TextTable

from conftest import emit


def build_table1():
    model = FireflyAnalyticModel()
    points = model.table1()
    table = TextTable([
        Column("NP (number of processors):", "s", align_left=True),
        *[Column(f"{int(p.processors)}", ".2f") for p in points],
    ])
    table.add_row("L (bus loading):",
                  *[p.load for p in points])
    table.add_row("TPI (ticks per instruction):",
                  *[round(p.tpi, 1) for p in points])
    table.add_row("RP (relative performance):",
                  *[p.relative_performance for p in points])
    table.add_row("TP (total performance):",
                  *[p.total_performance for p in points])
    return points, table.render()


def test_table1_estimated_performance(once):
    points, text = once(build_table1)
    emit("Table 1: Firefly Estimated Performance", text)

    for point in points:
        paper = PAPER_TABLE_1[int(point.processors)]
        assert point.load == pytest.approx(paper.load, abs=0.006)
        assert point.tpi == pytest.approx(paper.tpi, abs=0.06)
        assert point.relative_performance == pytest.approx(
            paper.relative_performance, abs=0.01)
        assert point.total_performance == pytest.approx(
            paper.total_performance, abs=0.011)

    # The headline conclusions drawn from the table:
    model = FireflyAnalyticModel()
    assert model.knee_processors() in (8, 9, 10)   # "perhaps nine"
    five = model.operating_point(5)
    assert five.total_performance > 4.0            # "more than four times"
    assert 0.38 < five.load < 0.42                 # "bus load ... 0.4"
    assert 0.83 < five.relative_performance < 0.87  # "about 85%"
