"""Figure 3 — Cache Line States.

The state-transition diagram is *measured* from the implemented
protocol: a two-cache rig puts a line in each state, applies every
processor and bus stimulus, and records the successor and bus
operations.  The benchmark then checks the enumeration against the
golden table transcribed from the paper's figure — the strongest
evidence the implemented protocol is the published one.
"""

from repro.cache.fsm import enumerate_transitions, transition_map
from repro.reporting import render_state_diagram

from conftest import emit

# Transcribed from Figure 3 (P = processor op, M = bus op; the
# parenthesised MShared response selects among P-arc successors).
FIGURE3_GOLDEN = {
    ("I", "P-read-miss", False): "V",
    ("I", "P-read-miss", True): "S",
    ("I", "P-write-miss", False): "V",
    ("I", "P-write-miss", True): "S",
    ("V", "P-read", False): "V",
    ("V", "P-write", False): "D",
    ("V", "M-read", False): "S",
    ("V", "M-write", False): "S",
    ("D", "P-read", False): "D",
    ("D", "P-write", False): "D",
    ("D", "M-read", False): "SD",
    ("D", "M-write", False): "S",
    ("S", "P-read", False): "S",
    ("S", "P-write", False): "V",
    ("S", "P-write", True): "S",
    ("S", "M-read", False): "S",
    ("S", "M-write", False): "S",
    ("SD", "P-read", False): "SD",
    ("SD", "P-write", False): "V",
    ("SD", "P-write", True): "S",
    ("SD", "M-read", False): "SD",
    ("SD", "M-write", False): "S",
}


def measure():
    text = render_state_diagram("firefly")
    fsm = transition_map("firefly")
    transitions = enumerate_transitions("firefly")
    return text, fsm, transitions


def test_figure3_cache_states(once):
    text, fsm, transitions = once(measure)
    emit("Figure 3: Cache Line States (measured from the implementation)",
         text)

    assert fsm == FIGURE3_GOLDEN

    # Structural facts the figure conveys:
    # - four resident states (the Dirty x Shared tag combinations);
    resident = {t.start.value for t in transitions} - {"I"}
    assert resident == {"V", "D", "S", "SD"}
    # - write-back is silent for private lines, write-through happens
    #   for shared ones;
    by_key = {(t.start.value, t.stimulus, t.peer_holds): t
              for t in transitions}
    assert by_key[("D", "P-write", False)].bus_ops == ()
    assert by_key[("S", "P-write", True)].bus_ops == ("MWrite",)
    # - losing the last sharer reverts the line toward write-back.
    assert fsm[("S", "P-write", False)] == "V"
    assert fsm[("SD", "P-write", False)] == "V"
    # - a dirty line answering a bus read keeps its dirty tag (memory
    #   was inhibited).
    assert fsm[("D", "M-read", False)] == "SD"
