"""Figure 2 — the internal structure of Topaz.

Rendered from a live kernel: the Nub, the standing address spaces
(Taos, UserTTD, Trestle), plus application spaces — with real threads
placed in them, including a single-threaded Ultrix space (which the
runtime enforces can hold only one thread, per §4.1).
"""

from repro.reporting import render_topaz_diagram
from repro.topaz import Compute, SpaceKind, TopazKernel

from conftest import emit


def build_and_render():
    kernel = TopazKernel.build(processors=5, threads_hint=16, seed=2)

    def app_thread():
        yield Compute(10)

    ultrix = kernel.create_space("ultrix:sh", SpaceKind.ULTRIX_APP)
    kernel.fork(app_thread, name="sh", space=ultrix)
    for i in range(3):
        kernel.fork(app_thread, name=f"server{i}")
    return kernel, render_topaz_diagram(kernel)


def test_figure2_topaz_structure(once):
    kernel, text = once(build_and_render)
    emit("Figure 2: Internal Structure of Topaz", text)

    assert "Nub (VAX kernel mode)" in text
    assert "thread scheduler" in text
    assert "RPC" in text
    for space in ("Taos", "UserTTD", "Trestle"):
        assert space in text
    assert "ultrix:sh" in text and "[ultrix" in text
    assert "3 thread(s)" in text      # the Topaz app space
    assert "5 processors" in text

    # The structural facts behind the figure:
    kinds = {s.kind.value for s in kernel.address_spaces}
    assert {"nub", "taos", "ttd", "trestle", "topaz", "ultrix"} <= kinds
    ultrix_spaces = [s for s in kernel.address_spaces
                     if s.kind is SpaceKind.ULTRIX_APP]
    assert all(not s.multi_threaded for s in ultrix_spaces)
