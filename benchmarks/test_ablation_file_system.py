"""Ablation A13 — the threaded file system (§6).

"The file system uses multiple threads to do read-ahead and
write-behind."  The same sequential read-and-rewrite application runs
against the block-cache file service with the helper threads disabled
(every miss and write stalls the application — the uniprocessor-era
design) and enabled (prefetch and buffered writes overlap the
application's computation on other processors).
"""

import pytest

from repro.reporting import Column, TextTable
from repro.workloads.file_system import FileSystemWorkload

from conftest import emit


def run_case(helpers_enabled):
    workload = FileSystemWorkload(processors=3,
                                  helpers_enabled=helpers_enabled)
    elapsed = workload.run()
    stats = dict(workload.service.stats)
    stats["elapsed"] = elapsed
    return stats


def test_ablation_file_system(once):
    results = once(lambda: {"synchronous": run_case(False),
                            "threaded": run_case(True)})

    table = TextTable([
        Column("file system", "s", align_left=True),
        Column("elapsed (ms)", ".1f"), Column("cache hits", "d"),
        Column("demand misses", "d"), Column("read-aheads", "d"),
        Column("write-behinds", "d"), Column("speedup", ".2f"),
    ])
    sync, threaded = results["synchronous"], results["threaded"]
    table.add_row("synchronous (no helpers)", sync["elapsed"] * 1e-7 * 1e3,
                  sync["hits"], sync["demand_misses"], sync["readaheads"],
                  sync["writebehinds"], 1.0)
    table.add_row("threaded (read-ahead + write-behind)",
                  threaded["elapsed"] * 1e-7 * 1e3, threaded["hits"],
                  threaded["demand_misses"], threaded["readaheads"],
                  threaded["writebehinds"],
                  sync["elapsed"] / threaded["elapsed"])
    emit("Ablation A13: threaded file system (paper §6)", table.render())

    # Without helpers, every block read is a demand miss.
    assert sync["demand_misses"] == sync["app_reads"]
    assert sync["readaheads"] == 0

    # With helpers, nearly every read hits prefetched data, and the
    # rewrites drained in the background.
    assert threaded["hits"] >= 0.8 * threaded["app_reads"]
    assert threaded["readaheads"] > 0
    assert threaded["writebehinds"] > 0

    # The application finishes substantially faster (the disk still
    # bounds it — 1.3-2x, not miracles).
    speedup = sync["elapsed"] / threaded["elapsed"]
    assert 1.25 < speedup < 2.5
