"""Simulator throughput: wall-clock performance of the model itself.

Not a paper artifact — this is the housekeeping benchmark that tracks
how fast the reproduction simulates, in simulated cycles per wall
second, so regressions in the hot paths (event kernel, cache lookup,
bus transactions) are visible.  pytest-benchmark runs it multiple
rounds, unlike the single-shot experiment benches.
"""

import pytest

from repro.system import FireflyConfig, FireflyMachine

CYCLES = 100_000


def simulate_standard_machine():
    machine = FireflyMachine(FireflyConfig(processors=5))
    machine.start()
    machine.sim.run_until(CYCLES)
    return machine.sim.now


def test_simulator_throughput(benchmark):
    result = benchmark.pedantic(simulate_standard_machine,
                                rounds=3, iterations=1)
    assert result == CYCLES
    # Derived figure for the logs: simulated cycles per wall second.
    cycles_per_second = CYCLES / benchmark.stats.stats.mean
    print(f"\nsimulator speed: {cycles_per_second / 1e3:.0f}K simulated "
          f"cycles/s for the standard 5-CPU machine "
          f"({cycles_per_second * 1e-7:.4f}x real time)")
