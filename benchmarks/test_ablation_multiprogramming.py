"""Ablation A9 — multiprogramming predictability (§6).

"When a user carries out a few unrelated activities simultaneously,
the performance of the system is much more predictable than that of a
time-shared uniprocessor."

Three independent single-threaded applications (the intro's profiler /
compiler / mail scenario, each in its own Ultrix address space) run
together on a one-processor machine and on a four-processor Firefly,
against a solo baseline.  On the multiprocessor each application keeps
nearly its solo pace; on the uniprocessor each gets roughly a third.
"""

import pytest

from repro.reporting import Column, TextTable
from repro.topaz.kernel import TopazKernel
from repro.workloads.multiprogramming import MultiprogrammingMix

from conftest import emit

HORIZON = 600_000


def run_mix(processors, apps):
    kernel = TopazKernel.build(processors=processors, threads_hint=8,
                               seed=53)
    mix = MultiprogrammingMix(kernel, independent_apps=apps,
                              pipeline_items=0)
    kernel.machine.start()
    kernel.sim.run_until(HORIZON)
    return {name: p.iterations for name, p in mix.progress.items()}


def test_ablation_multiprogramming(once):
    results = once(lambda: {
        "solo": run_mix(1, apps=1),
        "1cpu x3": run_mix(1, apps=3),
        "4cpu x3": run_mix(4, apps=3),
    })
    solo = results["solo"]["profiler"]
    shared = results["1cpu x3"]
    parallel = results["4cpu x3"]

    table = TextTable([
        Column("configuration", "s", align_left=True),
        Column("app", "s", align_left=True),
        Column("iterations", "d"),
        Column("vs solo", ".2f"),
    ])
    table.add_row("solo baseline (1 CPU, 1 app)", "profiler", solo, 1.0)
    table.add_separator()
    for name, iterations in shared.items():
        table.add_row("time-shared (1 CPU, 3 apps)", name, iterations,
                      iterations / solo)
    table.add_separator()
    for name, iterations in parallel.items():
        table.add_row("Firefly (4 CPUs, 3 apps)", name, iterations,
                      iterations / solo)
    emit("Ablation A9: multiprogramming predictability (paper §6)",
         table.render())

    # Time-shared uniprocessor: each app gets roughly a third.
    for name, iterations in shared.items():
        assert 0.2 < iterations / solo < 0.45, name

    # The Firefly: each app keeps nearly its solo pace (a little bus
    # interference is honest).
    for name, iterations in parallel.items():
        assert iterations / solo > 0.85, name

    # Predictability: the spread between luckiest and unluckiest app is
    # small on the multiprocessor.
    values = list(parallel.values())
    assert max(values) - min(values) <= 0.15 * solo
