"""Ablation A1 — the CVAX upgrade.

Paper §5.3: "Preliminary measurements of the CVAX Firefly confirm our
expectation that the combination of a faster processor and larger
cache results in approximately the same bus load per processor.  On
our benchmarks, the upgrade has improved execution speeds by factors
of 2.0 to 2.5.  This is less than the 2.5 to 3.2 speedup reported for
other systems that use the new CVAX processor.  We have sacrificed
some potential performance by choosing not to use the on-chip cache
for data, and by retaining the original MBus timing."

Two workloads bracket the claim:

- *resident*: the default calibrated workload, whose working set fits
  both cache sizes — the speedup is pure core speed (~2.1-2.4x), and
  the faster core raises per-CPU bus load (compulsory misses don't
  shrink with a bigger cache);
- *capacity*: a working set between 16 KB and 64 KB — the quadrupled
  cache absorbs it, cutting the effective miss ratio ~3-4x, which is
  what buys the paper's "approximately the same bus load per
  processor".

Real programs sit between the two; both keep the speedup in the
paper's neighbourhood and below the uncompromised 2.5-3.2 range.
"""

import pytest

from repro.processor.refgen import WorkloadShape
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine, Generation

from conftest import emit

RESIDENT = WorkloadShape()
CAPACITY = WorkloadShape(
    data_working_set=5500, data_reuse=0.97, loop_iterations=14.0,
    write_set_size=1500, write_locality=0.9, loop_length=48,
    prefill_working_set=True)


def measure(generation, processors, shape):
    machine = FireflyMachine(FireflyConfig(
        processors=processors, generation=generation, workload=shape,
        seed=11))
    metrics = machine.run(warmup_cycles=300_000, measure_cycles=300_000)
    instructions = sum(c.instructions for c in metrics.cpus)
    references = sum(c.references for c in metrics.cpus)
    misses = sum(cache.stats[key].windowed
                 for cache in machine.caches
                 for key in ("ifetch.miss", "dread.miss", "dwrite.miss")
                 if key in cache.stats)
    onchip_hit = (machine.cpus[0].onchip.hit_rate
                  if machine.cpus[0].onchip is not None else 0.0)
    return {
        "instructions": instructions,
        "load": metrics.bus_load,
        "load_per_cpu": metrics.bus_load / processors,
        "effective_miss": misses / references if references else 0.0,
        "onchip_hit": onchip_hit,
    }


def sweep():
    rows = {}
    for label, shape in (("resident", RESIDENT), ("capacity", CAPACITY)):
        for generation in (Generation.MICROVAX, Generation.CVAX):
            for processors in (1, 5):
                rows[(label, generation, processors)] = measure(
                    generation, processors, shape)
    return rows


def test_ablation_cvax_upgrade(once):
    rows = once(sweep)
    table = TextTable([
        Column("workload", "s", align_left=True),
        Column("machine", "s", align_left=True), Column("CPUs", "d"),
        Column("speedup", ".2f"), Column("L", ".2f"),
        Column("L/CPU", ".3f"), Column("M(eff)", ".3f"),
        Column("onchip hit", ".2f"),
    ])
    speedups = {}
    for label in ("resident", "capacity"):
        for processors in (1, 5):
            micro = rows[(label, Generation.MICROVAX, processors)]
            cvax = rows[(label, Generation.CVAX, processors)]
            speedup = cvax["instructions"] / micro["instructions"]
            speedups[(label, processors)] = speedup
            table.add_row(label, "MicroVAX", processors, 1.0,
                          micro["load"], micro["load_per_cpu"],
                          micro["effective_miss"], micro["onchip_hit"])
            table.add_row(label, "CVAX", processors, speedup,
                          cvax["load"], cvax["load_per_cpu"],
                          cvax["effective_miss"], cvax["onchip_hit"])
        table.add_separator()
    emit("Ablation A1: CVAX upgrade", table.render())

    # Execution speedup in the paper's neighbourhood, and always below
    # the uncompromised 2.5-3.2 range other CVAX systems reported.
    for key, speedup in speedups.items():
        assert 1.9 < speedup < 2.9, f"{key}: {speedup:.2f}"
    assert min(speedups.values()) < 2.5  # the sacrificed performance

    # Capacity workload: the 64 KB cache slashes the effective miss
    # ratio, delivering "approximately the same bus load per processor".
    micro5 = rows[("capacity", Generation.MICROVAX, 5)]
    cvax5 = rows[("capacity", Generation.CVAX, 5)]
    assert cvax5["effective_miss"] < 0.5 * micro5["effective_miss"]
    assert cvax5["load_per_cpu"] == pytest.approx(
        micro5["load_per_cpu"], rel=0.45)

    # The instruction-only on-chip cache carries most fetches.
    assert rows[("resident", Generation.CVAX, 1)]["onchip_hit"] > 0.5
