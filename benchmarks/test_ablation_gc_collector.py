"""Ablation A8 — the concurrent garbage collector (§6).

"Single threaded applications that use garbage collection also
benefit.  The application must pay the in-line cost of reference
counted assignments, but the collector itself runs as a separate
thread on another processor."

Three configurations of the same reference-counted application:

- one processor, stop-the-world collection (the uniprocessor world);
- one processor, 'concurrent' collector thread (no benefit possible —
  the collector steals the only CPU);
- two processors, concurrent collector (the Firefly experience).
"""

import pytest

from repro.reporting import Column, TextTable
from repro.topaz.kernel import TopazKernel
from repro.workloads.gc_app import GcApplication, GcParams

from conftest import emit


def run_case(processors, concurrent):
    kernel = TopazKernel.build(processors=processors, threads_hint=6,
                               seed=43, shared_region_words=4096)
    app = GcApplication(kernel, GcParams(), concurrent_collector=concurrent)
    elapsed = app.run()
    return {
        "elapsed": elapsed,
        "collections": app.collections,
        "units_per_ms": GcParams().work_units / (elapsed * 1e-7 * 1e3),
    }


def test_ablation_gc_collector(once):
    results = once(lambda: {
        "1cpu stop-world": run_case(1, concurrent=False),
        "1cpu concurrent": run_case(1, concurrent=True),
        "2cpu concurrent": run_case(2, concurrent=True),
    })

    table = TextTable([
        Column("configuration", "s", align_left=True),
        Column("elapsed (ms)", ".2f"),
        Column("collections", "d"),
        Column("work units / ms", ".2f"),
    ])
    for label, r in results.items():
        table.add_row(label, r["elapsed"] * 1e-7 * 1e3, r["collections"],
                      r["units_per_ms"])
    emit("Ablation A8: concurrent garbage collection (paper §6)",
         table.render())

    stop_world = results["1cpu stop-world"]
    one_concurrent = results["1cpu concurrent"]
    two_concurrent = results["2cpu concurrent"]

    # Collection happened in every configuration.
    assert stop_world["collections"] >= 1
    assert two_concurrent["collections"] >= 1

    # The paper's claim: with a second processor, the collector runs
    # off the application's critical path — the app finishes faster
    # than stop-the-world on one CPU.
    assert two_concurrent["elapsed"] < 0.92 * stop_world["elapsed"]

    # And the benefit genuinely comes from the extra processor, not
    # from the threading structure: one CPU + concurrent collector is
    # no faster than stop-the-world (the collector steals the CPU).
    assert one_concurrent["elapsed"] >= 0.95 * stop_world["elapsed"]
