"""Ablation A12 — two real machines validate the RPC substitution.

A5 reproduces the 4.6 Mbit/s RPC result with the remote server
modelled as a fixed turnaround (the substitution documented in
DESIGN.md).  This bench removes the substitution: *two complete
Firefly machines* — client and server, each with its own MBus, caches
and Topaz kernel — share one simulator and one Ethernet cable, and the
server's replies are computed by threads on the server's own CPUs.

Asserted: the full system saturates at the same goodput, at the same
~3-thread concurrency, as the substituted model — i.e. the
substitution preserved the behaviour the experiment measures.
"""

import pytest

from repro.reporting import Column, TextTable
from repro.workloads.rpc_server import sweep_client_threads
from repro.workloads.rpc_two_machine import TwoMachineRpc

from conftest import emit

THREADS = (1, 3, 6)


def sweep_two_machine():
    results = {}
    for threads in THREADS:
        rpc = TwoMachineRpc(client_threads=threads)
        results[threads] = rpc.run(measure_cycles=2_000_000)
    return results


def test_ablation_two_machine_rpc(once):
    two_machine, substituted = once(lambda: (
        sweep_two_machine(),
        sweep_client_threads(THREADS, measure_cycles=2_000_000)))

    table = TextTable([
        Column("client threads", "d"),
        Column("substituted server (Mbit/s)", ".2f"),
        Column("real server machine (Mbit/s)", ".2f"),
        Column("server calls served", "d"),
        Column("server bus load", ".2f"),
    ])
    for threads in THREADS:
        table.add_row(threads,
                      substituted[threads].goodput_mbit,
                      two_machine[threads]["goodput_mbit"],
                      two_machine[threads]["served"],
                      two_machine[threads]["server_bus_load"])
    emit("Ablation A12: two-machine RPC vs the fixed-turnaround "
         "substitution", table.render())

    # Both saturate near the paper's 4.6 Mbit/s...
    assert 3.8 < two_machine[3]["goodput_mbit"] < 5.4
    # ...at about three threads...
    assert abs(two_machine[6]["goodput_mbit"]
               - two_machine[3]["goodput_mbit"]) < 0.8
    # ...with one thread clearly below saturation.
    assert two_machine[1]["goodput_mbit"] < \
        0.85 * two_machine[3]["goodput_mbit"]

    # The substitution's error at saturation is small.
    for threads in (3, 6):
        real = two_machine[threads]["goodput_mbit"]
        model = substituted[threads].goodput_mbit
        assert real == pytest.approx(model, rel=0.2)

    # The server machine did real work: it served the calls, on its
    # own bus.
    assert two_machine[3]["served"] > 10
    assert two_machine[3]["server_bus_load"] > 0.0
