"""Ablation A6 — I/O subsystem: the MDC's rates and the QBus's appetite.

Paper claims measured here:

- "The MDC can paint a large area of the screen at 16 megapixels per
  second, and can paint approximately 20,000 10-point characters per
  second" (§5);
- "Sixty times per second, the controller deposits in Firefly memory
  the current mouse position and an unencoded bitmap representing the
  current state of the keyboard" (§5);
- "When fully loaded, the QBus consumes about 30% of the main memory
  bandwidth" (§5).
"""

import pytest

from repro.io import DisplayCommand, IoSubsystem
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

from conftest import emit


def measure_display():
    machine = FireflyMachine(FireflyConfig(processors=2, io_enabled=True))
    io = IoSubsystem(machine, mdc_queue_entries=256)
    memory = machine.memory
    # Large-area paint: refill the queue with full-screen fills.
    for i in range(40):
        io.mdc_queue.enqueue_direct(memory, DisplayCommand.FILL_RECT,
                                    (0, 0, 1024, 768))
    io.start()
    machine.mbus.mark_window()
    machine.sim.run_until(20_000_000)   # 2 seconds simulated
    window_seconds = machine.sim.now * 1e-7
    pixels_per_second = io.mdc.stats["pixels_painted"].total / window_seconds

    # Character paint on a fresh machine.
    machine2 = FireflyMachine(FireflyConfig(processors=2, io_enabled=True))
    io2 = IoSubsystem(machine2, mdc_queue_entries=256)
    for i in range(200):
        io2.mdc_queue.enqueue_direct(machine2.memory,
                                     DisplayCommand.PAINT_CHARS,
                                     (0, (i * 13) % 700, 120))
    io2.start()
    machine2.sim.run_until(10_000_000)  # 1 second simulated
    chars_per_second = (io2.mdc.stats["chars_painted"].total
                        / (machine2.sim.now * 1e-7))
    deposits_per_second = (io2.mdc.stats["input_deposits"].total
                           / (machine2.sim.now * 1e-7))
    return pixels_per_second, chars_per_second, deposits_per_second


def measure_qbus_saturation():
    machine = FireflyMachine(FireflyConfig(processors=1, io_enabled=True))
    io = IoSubsystem(machine)
    _, qbus_addr = io.alloc(1024, "flood buffer")

    def flood():
        for _ in range(40):
            yield from machine.qbus.dma_write_block(qbus_addr,
                                                    list(range(256)))

    machine.mbus.mark_window()
    proc = machine.sim.process(flood(), "flood")
    machine.sim.run()
    return machine.mbus.load()


def test_ablation_io_display(once):
    (pixels, chars, deposits), qbus_load = once(
        lambda: (measure_display(), measure_qbus_saturation()))

    table = TextTable([
        Column("quantity", "s", align_left=True),
        Column("paper", "s"), Column("measured", ".3g"),
    ])
    table.add_row("area paint (Mpixel/s)", "16", pixels / 1e6)
    table.add_row("character paint (chars/s)", "20,000", chars)
    table.add_row("input deposits (Hz)", "60", deposits)
    table.add_row("saturated-QBus MBus load", "~0.30", qbus_load)
    emit("Ablation A6: display controller rates and QBus bandwidth",
         table.render())

    # 16 Mpixel/s large-area paint (polling overhead eats a little).
    assert 13e6 < pixels <= 16.5e6
    # ~20,000 characters per second.
    assert 17_000 < chars <= 21_000
    # 60 Hz keyboard/mouse deposits.
    assert 55 <= deposits <= 65
    # "about 30%" of MBus bandwidth when the QBus is saturated.
    assert 0.25 < qbus_load < 0.35
