"""Table 1 cross-validation — the cycle simulator against the model.

Runs the calibrated synthetic workload on machines of 1..12 processors
and prints the simulated L, TPI, RP and TP next to the analytic
predictions.  The simulator is systematically a little *faster* than
the model — the model charges a full 2-tick bus operation per miss
while the hardware (and the simulator) overlap one tick with the
normal access, and the open queueing assumption over-penalises high
load — the same directions of error the paper acknowledges.  What must
agree is the shape: L monotone in NP, RP monotone down, TP rising with
diminishing returns, and the standard 5-CPU machine at > 4x.
"""

import pytest

from repro.analytic.queueing import FireflyAnalyticModel
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

from conftest import emit

PROCESSOR_COUNTS = (1, 2, 4, 5, 6, 8, 10, 12)


def _measure_point(np):
    """One machine run of the sweep; module-level so it fans out
    through the parallel trial executor (``--jobs N``)."""
    machine = FireflyMachine(FireflyConfig(processors=np))
    metrics = machine.run(warmup_cycles=200_000, measure_cycles=300_000)
    return {"bus_load": metrics.bus_load, "mean_tpi": metrics.mean_tpi,
            "instr_rate": metrics.total_instruction_krate,
            "mean_miss_rate": metrics.mean_miss_rate,
            "dirty_fraction": metrics.dirty_fraction}


def simulate_sweep(jobs=1):
    from repro.observatory.runner import run_ordered

    model = FireflyAnalyticModel()
    measured = run_ordered(PROCESSOR_COUNTS, _measure_point, jobs=jobs,
                           describe=lambda np: f"(table1 np={np})")
    rows = []
    baseline_rate = None
    for np, point in zip(PROCESSOR_COUNTS, measured):
        tpi = point["mean_tpi"]
        rp = 11.9 / tpi if tpi else 0.0
        if np == 1:
            baseline_rate = point["instr_rate"] / rp  # no-wait-normalised
        tp = point["instr_rate"] / baseline_rate
        analytic = model.operating_point(np)
        rows.append((np, point["bus_load"], analytic.load, tpi,
                     analytic.tpi, rp, analytic.relative_performance,
                     tp, analytic.total_performance,
                     point["mean_miss_rate"], point["dirty_fraction"]))
    return rows


def render(rows):
    table = TextTable([
        Column("NP", "d"), Column("L sim", ".2f"), Column("L model", ".2f"),
        Column("TPI sim", ".1f"), Column("TPI model", ".1f"),
        Column("RP sim", ".2f"), Column("RP model", ".2f"),
        Column("TP sim", ".2f"), Column("TP model", ".2f"),
        Column("M", ".2f"), Column("D", ".2f"),
    ])
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_table1_simulated_validation(once, jobs):
    rows = once(simulate_sweep, jobs)
    emit("Table 1 validation: cycle simulation vs analytic model",
         render(rows))

    loads = [r[1] for r in rows]
    tpis = [r[3] for r in rows]
    rps = [r[5] for r in rows]
    tps = [r[7] for r in rows]

    # Shape: L and TPI rise with NP; RP falls; TP rises.
    assert loads == sorted(loads)
    assert all(b >= a - 0.15 for a, b in zip(tpis, tpis[1:]))
    assert rps[0] > rps[-1]
    assert tps == sorted(tps)

    # Diminishing returns set in by twelve processors (marginal TP per
    # added processor; the sweep's NP steps are uneven).
    nps = [r[0] for r in rows]
    early_gain = (tps[1] - tps[0]) / (nps[1] - nps[0])
    late_gain = (tps[-1] - tps[-2]) / (nps[-1] - nps[-2])
    assert late_gain < early_gain

    # Absolute agreement with the model: slide-rule accuracy.
    for row in rows:
        np, l_sim, l_model = row[0], row[1], row[2]
        assert l_sim == pytest.approx(l_model, abs=0.12), f"NP={np}"

    # Calibration held across the sweep.
    for row in rows:
        assert 0.12 <= row[9] <= 0.26   # M
        assert 0.15 <= row[10] <= 0.40  # D

    # The standard machine: >4x a single no-wait processor.
    five = next(r for r in rows if r[0] == 5)
    assert five[7] > 3.9
