"""Figure 1 — the Firefly system diagram.

Rendered from the *built machine's object graph* (boards derived from
the CPU list, memory modules from the installed array, devices from
the attached QBus complement), not from a stored drawing — so the
figure documents what the model actually instantiates.
"""

from repro.io import IoSubsystem
from repro.reporting import render_system_diagram
from repro.system import FireflyConfig, FireflyMachine, Generation

from conftest import emit


def build_and_render():
    machine = FireflyMachine(FireflyConfig(io_enabled=True))
    IoSubsystem(machine)
    micro = render_system_diagram(machine)
    cvax_machine = FireflyMachine(FireflyConfig(
        generation=Generation.CVAX, processors=5, memory_megabytes=128,
        io_enabled=True))
    IoSubsystem(cvax_machine)
    cvax = render_system_diagram(cvax_machine)
    return micro, cvax


def test_figure1_system_diagram(once):
    micro, cvax = once(build_and_render)
    emit("Figure 1: Firefly System (MicroVAX, standard 5-CPU)", micro)
    emit("Figure 1 (second generation): CVAX Firefly, 128 MB", cvax)

    # The standard machine of the paper: primary board + two dual-CPU
    # secondary boards, four 4 MB memory modules, the QBus devices.
    assert "primary processor board: CPU 0 (MicroVAX 78032)" in micro
    assert "secondary board 1: CPU 1 + CPU 2" in micro
    assert "secondary board 2: CPU 3 + CPU 4" in micro
    assert micro.count("memory module") == 4
    assert "4 MB" in micro
    assert "16 KB cache" in micro
    assert "10 MB/s" in micro
    for device in ("DEQNA Ethernet", "RQDX3 disk", "MDC display"):
        assert device in micro

    # The CVAX generation: 64 KB caches, 32 MB modules to 128 MB.
    assert "CVAX 78034" in cvax
    assert "64 KB cache" in cvax
    assert cvax.count("memory module") == 4
    assert "32 MB" in cvax
