"""Ablation A3 — process migration and the Topaz scheduler.

Paper §5.1: "The disadvantage of this conditional write-through
strategy is that write-through continues as long as a datum resides in
more than one cache, even though only one processor may be using it.
If processes are allowed to move freely between processors, the number
of unnecessary writes could be significant, since most of the
writeable data for a process will be in both the old and the new cache
until the data is displaced ...  For this reason, the Topaz scheduler
goes to some effort to avoid process migration."

The bench runs the same thread workload with the scheduler's affinity
preference on and off, and compares migrations, MShared write-through
traffic and bus load.
"""

import pytest

from repro.reporting import Column, TextTable
from repro.topaz import Compute, TopazKernel, TopazParams, YieldCpu

from conftest import emit


def run_workload(avoid_migration):
    kernel = TopazKernel.build(
        processors=4, threads_hint=16, seed=37,
        params=TopazParams(avoid_migration=avoid_migration,
                           affinity_window=6))

    def worker():
        while True:
            yield Compute(120)
            yield YieldCpu()

    for i in range(10):
        kernel.fork(worker, name=f"w{i}")
    metrics = kernel.run(warmup_cycles=150_000, measure_cycles=300_000)
    cpu_writes = sum(c.data_writes for c in metrics.cpus)
    return {
        "migrations": kernel.total_migrations,
        "mshared_writes": metrics.bus_writes_mshared,
        "mshared_per_write": metrics.bus_writes_mshared / cpu_writes,
        "load": metrics.bus_load,
        "affinity_hits": kernel.scheduler.affinity_hits,
        "dispatches": kernel.scheduler.picks,
        "instructions": sum(c.instructions for c in metrics.cpus),
    }


def test_ablation_migration(once):
    results = once(lambda: {"affinity": run_workload(True),
                            "free": run_workload(False)})
    affinity, free = results["affinity"], results["free"]

    table = TextTable([
        Column("scheduler", "s", align_left=True),
        Column("migrations", "d"), Column("MShared writes", "d"),
        Column("MShared/CPU-write", ".3f"), Column("bus load", ".3f"),
        Column("instructions", "d"),
    ])
    table.add_row("affinity (Topaz)", affinity["migrations"],
                  affinity["mshared_writes"],
                  affinity["mshared_per_write"], affinity["load"],
                  affinity["instructions"])
    table.add_row("free migration", free["migrations"],
                  free["mshared_writes"], free["mshared_per_write"],
                  free["load"], free["instructions"])
    emit("Ablation A3: migration avoidance (Topaz scheduler rationale)",
         table.render())

    # The scheduler works: far fewer migrations with affinity on.
    assert affinity["migrations"] < 0.5 * free["migrations"]
    assert affinity["affinity_hits"] > 0

    # The paper's mechanism: free migration leaves writeable data in
    # two caches, so a much larger share of writes becomes shared
    # write-through traffic, raising bus load.
    assert free["mshared_per_write"] > 1.5 * affinity["mshared_per_write"]
    assert free["load"] > affinity["load"]

    # And the end effect on useful work: the affinity scheduler gets
    # at least as many instructions through the same window.
    assert affinity["instructions"] >= 0.98 * free["instructions"]
