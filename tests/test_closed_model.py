"""The closed (MVA) bus model against the open model and theory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.closed_model import ClosedFireflyModel
from repro.analytic.queueing import AnalyticParameters, FireflyAnalyticModel
from repro.common.errors import ConfigurationError


@pytest.fixture
def closed():
    return ClosedFireflyModel()


@pytest.fixture
def open_model():
    return FireflyAnalyticModel()


class TestMva:
    def test_single_processor_never_queues(self, closed):
        solution = closed.solve(1)
        assert solution.residence_ticks == pytest.approx(
            closed.service_ticks)
        assert solution.queue_length < 1.0

    def test_throughput_monotone_in_population(self, closed):
        throughputs = [closed.solve(k).throughput_ops_per_tick
                       for k in range(1, 20)]
        assert throughputs == sorted(throughputs)

    def test_load_never_exceeds_one(self, closed):
        for k in (1, 5, 20, 100):
            assert closed.operating_point(k).load <= 1.0 + 1e-9

    def test_needs_a_processor(self, closed):
        with pytest.raises(ConfigurationError):
            closed.solve(0)


class TestAgainstOpenModel:
    def test_agreement_at_low_load(self, closed, open_model):
        """'fairly accurate at the moderate loads at which the system
        actually operates' — both models agree below ~0.5 load."""
        for np in (1, 2, 4, 5):
            c = closed.operating_point(np)
            o = open_model.operating_point(np)
            assert c.load == pytest.approx(o.load, abs=0.03)
            assert c.tpi == pytest.approx(o.tpi, rel=0.04)

    def test_closed_model_faster_at_high_load(self, closed, open_model):
        """The open model over-penalises high load (unbounded queue);
        the closed model, with its bounded population, predicts lower
        TPI there — the direction the cycle simulator confirms."""
        for np in (10, 12):
            c = closed.operating_point(np)
            o = open_model.operating_point(np)
            assert c.tpi < o.tpi

    def test_closed_model_saturates_at_the_asymptotic_bound(self, closed):
        bound = closed.asymptotic_bound()
        assert bound == pytest.approx(11.9 / 1.145, rel=1e-6)
        tp_large = closed.operating_point(64).total_performance
        assert tp_large <= bound + 1e-6
        assert tp_large > 0.97 * bound

    def test_open_model_diverges_closed_does_not(self, closed):
        # The open model cannot even evaluate L >= 1; the closed model
        # handles any population.
        point = closed.operating_point(200)
        assert point.load == pytest.approx(1.0, abs=1e-6)
        assert point.total_performance <= closed.asymptotic_bound() + 1e-6

    @given(np=st.integers(min_value=1, max_value=40),
           miss=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_property_closed_tpi_bounded_by_open(self, np, miss):
        """For any parameters, bounded queues never wait longer than
        unbounded ones: closed TPI <= open TPI wherever both exist."""
        params = AnalyticParameters(miss_rate=miss)
        closed = ClosedFireflyModel(params)
        open_model = FireflyAnalyticModel(params)
        c = closed.operating_point(np)
        try:
            o = open_model.operating_point(np)
        except ConfigurationError:
            return  # open model cannot reach this population
        assert c.tpi <= o.tpi * 1.02  # small MVA/SP coupling slack
