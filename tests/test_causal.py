"""Causal tracing: contexts, propagation, exact-sum decomposition.

Covers the contract points of docs/CAUSAL.md:

- the context allocator is a pure counter machine (no RNG, fully
  deterministic);
- attaching (then detaching) a flight recorder leaves a run
  byte-identical to one that never saw a recorder — the off-by-default
  guarantee;
- every finished request's five segments sum *exactly* to its
  turnaround on a real 5-CPU RPC workload;
- ``DeadlockError`` names the wait-for edges at both the event level
  and the thread level, and the kernel detects a thread deadlock long
  before the cycle horizon;
- the Chrome exporter draws causal flow arrows and groups dotted
  tracks into per-machine processes.
"""

from __future__ import annotations

import pytest

from repro.causal import (FlightRecorder, LOW_RATE_CATEGORIES,
                          ContextAllocator, RequestTracer, SEGMENTS,
                          trace_requests)
from repro.common.errors import DeadlockError, SimulationError
from repro.common.events import Simulator
from repro.telemetry import TelemetryHub, chrome_trace
from repro.telemetry.instrument import attach_kernel
from repro.telemetry.sampler import Sampler
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel
from repro.workloads.threads_exerciser import (ExerciserParams,
                                               build_exerciser)

pytestmark = pytest.mark.causal


# ---------------------------------------------------------------------------
# contexts


class TestContextAllocator:
    def test_root_and_child(self):
        alloc = ContextAllocator()
        root = alloc.root()
        child = alloc.child(root)
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id

    def test_deterministic_counters(self):
        a, b = ContextAllocator(), ContextAllocator()
        for _ in range(5):
            ra, rb = a.root(), b.root()
            assert (ra.trace_id, ra.span_id) == (rb.trace_id, rb.span_id)

    def test_child_of_none_is_root(self):
        alloc = ContextAllocator()
        ctx = alloc.child(None)
        assert ctx.parent_id == 0


class TestKernelPropagation:
    def test_host_forks_get_root_contexts(self):
        kernel = TopazKernel.build(processors=1, threads_hint=4, seed=3)

        def nop():
            yield ops.Compute(10)

        t1 = kernel.fork(nop, name="a")
        t2 = kernel.fork(nop, name="b")
        assert t1.ctx is not None and t2.ctx is not None
        assert t1.ctx.trace_id != t2.ctx.trace_id
        assert t1.ctx.parent_id == 0

    def test_ops_fork_inherits_trace(self):
        kernel = TopazKernel.build(processors=1, threads_hint=4, seed=3)
        seen = {}

        def child():
            yield ops.Compute(5)

        def parent():
            thread = yield ops.Fork(child, name="kid")
            seen["child"] = thread
            yield ops.Join(thread)

        root = kernel.fork(parent, name="parent")
        kernel.run_until_quiescent(max_cycles=200_000)
        assert seen["child"].ctx.trace_id == root.ctx.trace_id
        assert seen["child"].ctx.parent_id == root.ctx.span_id

    def test_rpc_call_events_carry_trace_and_span(self):
        from repro.workloads.rpc_server import RpcWorkload

        workload = RpcWorkload(processors=2, client_threads=1, seed=7)
        hub = TelemetryHub(workload.kernel.sim, max_events=100_000)
        attach_kernel(hub, workload.kernel)
        workload.transport.probe = hub.probe("rpc")
        workload.run(warmup_cycles=50_000, measure_cycles=300_000)
        calls = hub.events_named("rpc.call")
        assert calls, "no rpc.call events captured"
        for event in calls:
            args = dict(event.args)
            assert args["trace"] > 0
            assert args["span"] > 0
            assert args["cls"] == "rpc"


# ---------------------------------------------------------------------------
# the category filter and sampler drop counter


class TestEnableOnly:
    def test_filter_restricts_probe_activity(self):
        sim = Simulator()
        hub = TelemetryHub(sim, max_events=100)
        sched = hub.probe("sched")
        bus = hub.probe("bus")
        assert sched.active and bus.active
        hub.enable_only(LOW_RATE_CATEGORIES)
        assert sched.active
        assert not bus.active
        hub.enable_only(None)
        assert bus.active

    def test_filter_applies_to_later_probes(self):
        sim = Simulator()
        hub = TelemetryHub(sim, max_events=100)
        hub.enable_only({"sched"})
        assert not hub.probe("cache").active
        assert hub.probe("sched").active


class TestSamplerDropped:
    def test_dropped_counts_ring_evictions(self):
        sim = Simulator()
        sampler = Sampler(sim, interval=10, capacity=4)
        series = sampler.add("x", lambda: 1.0)
        for t in range(10):
            series.record(t, float(t))
        assert series.dropped == 6
        assert sampler.dropped == 6

    def test_chrome_export_reports_samples_dropped(self):
        sim = Simulator()
        hub = TelemetryHub(sim, max_events=100)
        sampler = Sampler(sim, interval=10, capacity=2)
        series = sampler.add("x", lambda: 1.0)
        for t in range(5):
            series.record(t, float(t))
        trace = chrome_trace(hub, [sampler])
        assert trace["otherData"]["samples_dropped"] == 3
        assert trace["otherData"]["dropped"] == 0


# ---------------------------------------------------------------------------
# the flight recorder


def _run_exerciser(seed: int, recorder: bool):
    kernel = build_exerciser(2, ExerciserParams(threads=6), seed=seed)
    rec = FlightRecorder(kernel, capacity=256) if recorder else None
    metrics = kernel.run(warmup_cycles=10_000, measure_cycles=30_000)
    if rec is not None:
        rec.detach()
    return kernel, metrics, rec


class TestFlightRecorder:
    def test_recorder_off_is_byte_identical(self):
        plain_kernel, plain_metrics, _ = _run_exerciser(11, recorder=False)
        rec_kernel, rec_metrics, rec = _run_exerciser(11, recorder=True)
        assert rec is not None and rec.recorded > 0
        # Identical simulated world: same final time, same metric
        # summary to the byte, same kernel counters.
        assert rec_kernel.sim.now == plain_kernel.sim.now
        assert rec_metrics.summary() == plain_metrics.summary()
        assert (rec_kernel.stats["context_switches"].total
                == plain_kernel.stats["context_switches"].total)
        assert rec_kernel.total_migrations == plain_kernel.total_migrations

    def test_ring_is_bounded_and_counts_drops(self):
        kernel = build_exerciser(1, ExerciserParams(threads=4), seed=5)
        recorder = FlightRecorder(kernel, capacity=16)
        kernel.run(warmup_cycles=5_000, measure_cycles=20_000)
        assert len(recorder.ring) <= 16
        assert recorder.recorded == len(recorder.ring) + recorder.dropped
        assert recorder.dropped > 0
        recorder.detach()

    def test_hot_categories_stay_dark(self):
        kernel = build_exerciser(1, ExerciserParams(threads=2), seed=5)
        recorder = FlightRecorder(kernel, capacity=64)
        kernel.run(warmup_cycles=5_000, measure_cycles=10_000)
        names = {event.name for event in recorder.events()}
        assert any(name.startswith("sched.") for name in names)
        assert not any(name.startswith("bus.") for name in names)
        recorder.detach()

    def test_detach_restores_inert_probes(self):
        from repro.telemetry.probe import NULL_PROBE

        kernel = build_exerciser(1, ExerciserParams(threads=2), seed=5)
        recorder = FlightRecorder(kernel)
        assert kernel.probe is not NULL_PROBE
        recorder.detach()
        assert kernel.probe is NULL_PROBE
        assert kernel.machine.mbus.probe is NULL_PROBE


# ---------------------------------------------------------------------------
# deadlock edges


class TestDeadlockEdges:
    def test_event_level_edges_in_message(self):
        sim = Simulator()
        resource = sim.resource("the-bus")

        def hog():
            yield resource.acquire()
            yield sim.timeout(10)
            # never releases

        def waiter():
            yield sim.timeout(5)
            yield resource.acquire()

        sim.process(hog(), "hog")
        sim.process(waiter(), "waiter")
        with pytest.raises(DeadlockError) as exc_info:
            sim.run(check_deadlock=True)
        error = exc_info.value
        assert "wait-for" in str(error)
        assert ("waiter", "resource:the-bus", "hog") in error.edges

    def test_kernel_detects_thread_deadlock_early(self):
        kernel = TopazKernel.build(processors=2, threads_hint=4, seed=9)
        a = kernel.mutex("a")
        b = kernel.mutex("b")

        def grab(first, second):
            yield ops.Compute(20)
            yield ops.Lock(first)
            yield ops.Compute(300)
            yield ops.Lock(second)
            yield ops.Unlock(second)
            yield ops.Unlock(first)

        kernel.fork(grab, a, b, name="t-ab")
        kernel.fork(grab, b, a, name="t-ba")
        with pytest.raises(DeadlockError) as exc_info:
            kernel.run_until_quiescent(max_cycles=10_000_000,
                                       slice_cycles=5_000)
        error = exc_info.value
        # Early detection: the first post-block slice, not the horizon.
        assert error.now is not None and error.now <= 50_000
        assert ("t-ab", "lock:b", "t-ba") in error.edges
        assert ("t-ba", "lock:a", "t-ab") in error.edges
        assert "held by" in str(error)

    def test_deadlock_error_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)


# ---------------------------------------------------------------------------
# exact-sum decomposition


class TestExactSum:
    @pytest.mark.slow
    def test_rpc_segments_sum_exactly(self):
        from repro.workloads.rpc_server import RpcWorkload

        workload = RpcWorkload(processors=5, client_threads=3, seed=1987)
        hub, tracer = trace_requests(workload.kernel,
                                     transport=workload.transport)
        workload.run(warmup_cycles=100_000, measure_cycles=600_000)
        tracer.close()
        assert tracer.assembled >= 3
        for record in tracer.finished:
            assert sum(record.segments.values()) == record.turnaround, \
                record.to_dict()
            assert all(v >= 0 for v in record.segments.values())
        stats = tracer.percentiles("rpc")
        assert stats["count"] == tracer.assembled
        assert stats["p50"] > 0
        means = tracer.segment_means("rpc")
        assert set(means) == set(SEGMENTS)
        # An RPC over the wire spends most of its life in transfer.
        assert means["transfer"] > means["run"]
        assert "rpc" in tracer.render()

    def test_scripted_decomposition_is_exact(self):
        """A hand-scripted request whose segments are known a priori."""
        sim = Simulator()
        hub = TelemetryHub(sim, max_events=0)
        tracer = RequestTracer(hub)
        sched = hub.probe("sched")
        bus = hub.probe("bus")
        rpc = hub.probe("rpc")

        # Request window [100, 600).  Timeline:
        #   [80, 200)  running on cpu0, one bus op (arb 10 + xfer 10),
        #              blocks on lock:m at 200
        #   [200, 300) blocked (ready mark at 300)
        #   [300, 350) runnable, queued
        #   [350, 450) running, preempted
        #   [450, 500) runnable, queued
        #   [500, 700) running; request completes at 600
        sched.instant_at("sched.ready", "sched", 50, tid=1)
        bus.complete("bus.op", "bus", 130, 10, initiator=0, wait=10)
        sched.complete("sched.run", "cpu0", 80, 120, tid=1,
                       reason="lock:m")
        sched.instant_at("sched.ready", "sched", 300, tid=1)
        sched.complete("sched.run", "cpu0", 350, 100, tid=1,
                       reason="preempt")
        sched.instant_at("sched.ready", "sched", 450, tid=1)
        rpc.complete("rpc.call", "rpc", 100, 500, tid=1, cls="rpc",
                     trace=1, span=1, parent_span=0, thread="t")
        sched.complete("sched.run", "cpu0", 500, 200, tid=1,
                       reason="yield")

        assert tracer.assembled == 1
        record = tracer.finished[0]
        assert record.complete
        assert record.segments == {
            "run": 280, "sched_wait": 100, "bus_arb_wait": 10,
            "transfer": 10, "blocked_on_lock": 100,
            "backoff": 0, "hedge_wait": 0,
        }
        assert sum(record.segments.values()) == record.turnaround == 500


# ---------------------------------------------------------------------------
# chrome export: flow arrows and pid grouping


class TestChromeCausalExport:
    def _run_with_prefix(self, prefix):
        # Fork/join + lock contention *under* the hub so the kernel
        # emits causal.fork and causal.wake instants.
        kernel = TopazKernel.build(processors=2, threads_hint=8, seed=13)
        hub = TelemetryHub(kernel.sim, max_events=200_000)
        attach_kernel(hub, kernel, prefix)
        lock = kernel.mutex("m")

        def child():
            yield ops.Lock(lock)
            yield ops.Compute(200)
            yield ops.Unlock(lock)

        def parent():
            kids = []
            for _ in range(3):
                kid = yield ops.Fork(child, name="kid")
                kids.append(kid)
            for kid in kids:
                yield ops.Join(kid)

        kernel.fork(parent, name="parent")
        kernel.run_until_quiescent(max_cycles=500_000)
        return hub

    def test_flow_arrows_pair_up(self):
        hub = self._run_with_prefix("")
        trace = chrome_trace(hub)
        starts = [e for e in trace["traceEvents"] if e.get("ph") == "s"]
        ends = [e for e in trace["traceEvents"] if e.get("ph") == "f"]
        assert starts, "no causal flow arrows exported"
        assert len(starts) == len(ends)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e.get("bp") == "e" for e in ends)
        # Every arrow ends at or after it starts.
        by_id = {e["id"]: e for e in starts}
        for end in ends:
            assert end["ts"] >= by_id[end["id"]]["ts"]

    def test_dotted_tracks_group_into_processes(self):
        hub = self._run_with_prefix("m1.")
        trace = chrome_trace(hub)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("name") == "process_name"}
        assert "firefly-sim:m1" in names
        m1_pids = {e["pid"] for e in trace["traceEvents"]
                   if e.get("name") == "process_name"
                   and e["args"]["name"] == "firefly-sim:m1"}
        assert m1_pids and 0 not in m1_pids
        # Thread names are the local leaf, not the dotted track.
        thread_names = {e["args"]["name"] for e in trace["traceEvents"]
                        if e.get("name") == "thread_name"}
        assert any(name.startswith("cpu") for name in thread_names)
        assert not any("." in name for name in thread_names)


# ---------------------------------------------------------------------------
# bench gate plumbing (the wall-clock ratios themselves are measured by
# `firefly-sim bench`, not asserted here — CI hosts are too noisy)


class TestOverheadGate:
    def test_recorder_gate_composes_into_ok(self, monkeypatch):
        from repro.observatory import bench

        monkeypatch.setattr(bench, "_overhead_run",
                            lambda attach, horizon, seed: 1.005
                            if attach else 1.0)
        monkeypatch.setattr(bench, "_recorder_run",
                            lambda horizon, seed: 1.01)
        result = bench.measure_overhead(quick=True)
        assert result["recorder_ratio"] == pytest.approx(1.01)
        assert result["recorder_ok"] is True
        assert result["ok"] is True

        monkeypatch.setattr(bench, "_recorder_run",
                            lambda horizon, seed: 1.10)
        result = bench.measure_overhead(quick=True)
        assert result["recorder_ok"] is False
        assert result["ok"] is False  # recorder breach fails the gate

    def test_chaos_outcome_carries_crash_key(self):
        from repro.faults.chaos import ScenarioOutcome

        outcome = ScenarioOutcome(name="x", description="d", seed=1,
                                  warmup=0, measure=0)
        assert outcome.to_dict()["crash"] is None
