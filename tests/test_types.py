"""Unit tests for value types and timing constants."""

import pytest

from repro.common.types import (
    AccessKind,
    BusOp,
    MBUS_CYCLE_NS,
    MBUS_OP_CYCLES,
    MemRef,
    SECONDS_PER_CYCLE,
    align_to_line,
)


class TestConstants:
    def test_paper_timing(self):
        # "Each requires four 100 ns. bus cycles."
        assert MBUS_CYCLE_NS == 100
        assert MBUS_OP_CYCLES == 4
        assert SECONDS_PER_CYCLE == pytest.approx(1e-7)

    def test_bandwidth_is_ten_megabytes(self):
        # One four-byte transfer per 400 ns = 10 MB/s.
        transfers_per_second = 1.0 / (MBUS_OP_CYCLES * SECONDS_PER_CYCLE)
        assert transfers_per_second * 4 == pytest.approx(10e6)


class TestAccessKind:
    def test_write_flag(self):
        assert AccessKind.DATA_WRITE.is_write
        assert not AccessKind.DATA_READ.is_write
        assert not AccessKind.INSTRUCTION_READ.is_write

    def test_instruction_flag(self):
        assert AccessKind.INSTRUCTION_READ.is_instruction
        assert not AccessKind.DATA_READ.is_instruction


class TestBusOp:
    def test_write_data(self):
        assert BusOp.MWRITE.carries_write_data
        assert not BusOp.MREAD.carries_write_data
        assert not BusOp.MINVALIDATE.carries_write_data

    def test_returns_data(self):
        assert BusOp.MREAD.returns_data
        assert BusOp.MREAD_EX.returns_data
        assert not BusOp.MWRITE.returns_data
        assert not BusOp.MINVALIDATE.returns_data

    def test_invalidates(self):
        assert BusOp.MREAD_EX.invalidates
        assert BusOp.MINVALIDATE.invalidates
        assert not BusOp.MREAD.invalidates
        assert not BusOp.MWRITE.invalidates


class TestMemRef:
    def test_valid_construction(self):
        ref = MemRef(100, AccessKind.DATA_READ)
        assert ref.address == 100 and not ref.partial

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemRef(-1, AccessKind.DATA_READ)

    def test_partial_only_for_writes(self):
        MemRef(0, AccessKind.DATA_WRITE, partial=True)
        with pytest.raises(ValueError):
            MemRef(0, AccessKind.DATA_READ, partial=True)

    def test_frozen(self):
        ref = MemRef(1, AccessKind.DATA_READ)
        with pytest.raises(Exception):
            ref.address = 2


class TestAlign:
    @pytest.mark.parametrize("addr,wpl,expected", [
        (0, 1, 0), (17, 1, 17), (17, 4, 16), (15, 4, 12), (16, 8, 16),
    ])
    def test_align(self, addr, wpl, expected):
        assert align_to_line(addr, wpl) == expected
