"""The threaded file service."""

import pytest

from repro.common.errors import ConfigurationError
from repro.system import CoherenceChecker
from repro.workloads.file_system import FileSystemParams, FileSystemWorkload

SMALL = FileSystemParams(file_blocks=8, compute_per_block=3000)


class TestFileSystem:
    def test_synchronous_path_every_read_misses(self):
        workload = FileSystemWorkload(processors=2, helpers_enabled=False,
                                      params=SMALL)
        elapsed = workload.run()
        stats = workload.service.stats
        assert elapsed > 0
        assert stats["demand_misses"] == SMALL.file_blocks
        assert stats["hits"] == 0
        assert stats["writebehinds"] == 0
        CoherenceChecker(workload.kernel.machine).check()

    def test_helpers_prefetch_and_buffer(self):
        workload = FileSystemWorkload(processors=3, helpers_enabled=True,
                                      params=SMALL)
        workload.run()
        stats = workload.service.stats
        assert stats["hits"] > stats["demand_misses"]
        assert stats["readaheads"] > 0
        assert stats["writebehinds"] > 0
        CoherenceChecker(workload.kernel.machine).check()

    def test_helpers_speed_up_the_application(self):
        def elapsed(helpers):
            workload = FileSystemWorkload(processors=3,
                                          helpers_enabled=helpers,
                                          params=SMALL)
            return workload.run()

        assert elapsed(True) < elapsed(False)

    def test_all_writes_eventually_reach_the_disk(self):
        workload = FileSystemWorkload(processors=3, helpers_enabled=True,
                                      params=SMALL)
        workload.run()
        stats = workload.service.stats
        expected_writes = len(range(0, SMALL.file_blocks,
                                    SMALL.rewrite_every))
        assert stats["writebehinds"] == expected_writes
        assert workload.io.disk.stats["writes"].total == expected_writes

    def test_data_reaches_correct_disk_blocks(self):
        workload = FileSystemWorkload(processors=2, helpers_enabled=False,
                                      params=SMALL)
        workload.run()
        # Reads touched the file's extent.
        assert workload.io.disk.stats["reads"].total == SMALL.file_blocks

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            FileSystemParams(file_blocks=0)
        with pytest.raises(ConfigurationError):
            FileSystemParams(helper_threads=0)
