"""Final coverage batch: odds and ends across the public surface."""

import pytest

from repro.analytic.queueing import PAPER_TABLE_1
from repro.common.types import AccessKind, MemRef
from repro.processor.cpu import Processor
from repro.processor.timing import MICROVAX_TIMING
from repro.reporting import render_system_diagram
from repro.system import FireflyConfig, FireflyMachine
from repro.topaz import Compute, TopazKernel, TopazParams
from tests.conftest import MiniRig


class TestPaperTable1Constant:
    def test_all_columns_present(self):
        assert sorted(PAPER_TABLE_1) == [2, 4, 6, 8, 10, 12]
        for np, point in PAPER_TABLE_1.items():
            assert point.processors == np
            assert 0 < point.load < 1
            assert point.tpi > 11.9
            assert 0 < point.relative_performance < 1
            assert point.total_performance < np


class TestOddProcessorCounts:
    def test_seven_cpu_diagram_has_three_secondary_boards(self):
        machine = FireflyMachine(FireflyConfig(processors=7))
        text = render_system_diagram(machine)
        assert "secondary board 3: CPU 5 + CPU 6" in text

    def test_even_count_leaves_half_board(self):
        machine = FireflyMachine(FireflyConfig(processors=4))
        text = render_system_diagram(machine)
        # CPUs 1+2 on board 1, CPU 3 alone on board 2.
        assert "secondary board 2: CPU 3 " in text


class TestProcessorHalt:
    def test_halt_stops_after_current_instruction(self):
        rig = MiniRig()

        class Endless:
            def next_instruction(self, cpu):
                from repro.processor.cpu import InstructionBundle
                return InstructionBundle(refs=(), base_cycles=10)

        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0],
                        Endless())
        cpu.start()
        rig.sim.run_until(100)
        cpu.halt()
        rig.sim.run_until(10_000)
        executed = cpu.stats["instructions"].total
        assert executed <= 12
        assert rig.sim.peek() is None  # nothing left scheduled


class TestKernelPreemptionInteraction:
    def test_preempted_thread_resumes_where_it_left_off(self):
        kernel = TopazKernel.build(
            processors=1, threads_hint=4, seed=3,
            params=TopazParams(time_slice_instructions=50))
        progress = []

        def counted(name, chunks):
            for i in range(chunks):
                yield Compute(30)
                progress.append((name, i))
            return chunks

        a = kernel.fork(counted, "a", 5, name="a")
        b = kernel.fork(counted, "b", 5, name="b")
        kernel.run_until_quiescent(max_cycles=3_000_000)
        assert a.result == 5 and b.result == 5
        # Each thread's own entries are strictly ordered.
        for name in ("a", "b"):
            own = [i for n, i in progress if n == name]
            assert own == sorted(own) == list(range(5))

    def test_slice_resets_on_dispatch(self):
        kernel = TopazKernel.build(
            processors=2, threads_hint=4, seed=3,
            params=TopazParams(time_slice_instructions=100))

        def brief():
            yield Compute(80)   # under one quantum
            return "ok"

        threads = [kernel.fork(brief, name=f"t{i}") for i in range(4)]
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert all(t.result == "ok" for t in threads)
        # Nothing here ever exceeded its quantum while others waited
        # long enough to matter; preemptions stay rare.
        assert kernel.stats.totals().get("preemptions", 0) <= 4


class TestMemRefBundleContract:
    def test_write_values_consumed_in_order(self):
        rig = MiniRig()
        from repro.processor.cpu import InstructionBundle

        refs = (MemRef(1, AccessKind.DATA_WRITE),
                MemRef(2, AccessKind.DATA_WRITE))
        bundle = InstructionBundle(refs=refs, write_values=(11, 22),
                                   base_cycles=24)

        class One:
            def __init__(self):
                self.sent = False

            def next_instruction(self, cpu):
                if self.sent:
                    return None
                self.sent = True
                return bundle

        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0], One())
        cpu.start()
        rig.sim.run()
        assert rig.caches[0].peek(1) == 11
        assert rig.caches[0].peek(2) == 22
