"""The GC workload and the command-line interface."""

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.system import CoherenceChecker
from repro.topaz.kernel import TopazKernel
from repro.workloads.gc_app import GcApplication, GcParams


def kernel_with(processors, seed=43):
    return TopazKernel.build(processors=processors, threads_hint=6,
                             seed=seed, shared_region_words=4096)


SMALL = GcParams(work_units=20, heap_cells=128, collect_threshold=96,
                 allocations_per_unit=16)


class TestGcApplication:
    def test_stop_world_completes_with_collections(self):
        app = GcApplication(kernel_with(1), SMALL,
                            concurrent_collector=False)
        elapsed = app.run()
        assert elapsed > 0
        assert app.collections >= 1
        CoherenceChecker(app.kernel.machine).check()

    def test_concurrent_completes_same_collections(self):
        stop = GcApplication(kernel_with(1), SMALL,
                             concurrent_collector=False)
        stop.run()
        conc = GcApplication(kernel_with(2), SMALL,
                             concurrent_collector=True)
        conc.run()
        assert conc.collections == stop.collections

    def test_second_processor_speeds_up_the_application(self):
        stop = GcApplication(kernel_with(1), SMALL,
                             concurrent_collector=False)
        stop_elapsed = stop.run()
        conc = GcApplication(kernel_with(2), SMALL,
                             concurrent_collector=True)
        conc_elapsed = conc.run()
        assert conc_elapsed < stop_elapsed
        CoherenceChecker(conc.kernel.machine).check()

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            GcParams(work_units=0)
        with pytest.raises(ConfigurationError):
            GcParams(collect_threshold=10_000)


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TPI" in out and "knee" in out
        assert "13.4" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--processors", "2",
                     "--warmup-cycles", "20000",
                     "--measure-cycles", "50000"]) == 0
        out = capsys.readouterr().out
        assert "bus load" in out
        assert "coherence OK" in out

    def test_simulate_with_diagram(self, capsys):
        assert main(["simulate", "--processors", "1",
                     "--warmup-cycles", "10000",
                     "--measure-cycles", "20000",
                     "--diagram", "--skip-check"]) == 0
        out = capsys.readouterr().out
        assert "Firefly System" in out
        assert "coherence OK" not in out

    def test_fsm(self, capsys):
        assert main(["fsm", "--protocol", "mesi"]) == 0
        out = capsys.readouterr().out
        assert "mesi" in out and "state V:" in out

    def test_exerciser(self, capsys):
        assert main(["exerciser", "--processors", "2", "--threads", "6",
                     "--measure-cycles", "100000"]) == 0
        out = capsys.readouterr().out
        assert "expected (analytic)" in out
        assert "migrations" in out

    def test_bad_config_is_a_clean_error(self, capsys):
        assert main(["simulate", "--processors", "99"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_bad_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])


class TestCliVerify:
    """The verify subcommand: guard stage, --json document, --oracle."""

    def test_verify_one_protocol_with_dsl_oracle(self, capsys):
        assert main(["verify", "--protocol", "mesi", "--no-lint",
                     "--oracle", "dsl"]) == 0
        out = capsys.readouterr().out
        assert "[OK] mesi" in out
        assert "all checks passed" in out

    def test_verify_json_document(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "findings.json"
        assert main(["verify", "--all-protocols", "--no-lint",
                     "--oracle", "dsl", "--json", str(out_path)]) == 0
        capsys.readouterr()
        document = json.loads(out_path.read_text())
        assert document["ok"] is True
        assert sorted(document["protocols"]) == [
            "bedrock", "berkeley", "dragon", "firefly", "mesi", "moesi",
            "synapse", "write-once", "write-through"]
        entry = document["protocols"]["firefly"]
        assert entry["guard_findings"] == []
        assert entry["model"]["ok"] is True
        assert entry["model"]["oracle"] == "dsl"
        assert entry["model"]["counterexample"] is None

    def test_verify_json_is_byte_stable(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert main(["verify", "--protocol", "bedrock", "--no-lint",
                         "--oracle", "dsl", "--json", str(path)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_verify_json_refuses_overwrite_without_force(self, tmp_path,
                                                         capsys):
        out_path = tmp_path / "findings.json"
        out_path.write_text("{}")
        assert main(["verify", "--protocol", "mesi", "--no-lint",
                     "--oracle", "dsl", "--json", str(out_path)]) == 1
        err = capsys.readouterr().err
        assert "--force" in err
        assert out_path.read_text() == "{}"
        assert main(["verify", "--protocol", "mesi", "--no-lint",
                     "--oracle", "dsl", "--json", str(out_path),
                     "--force"]) == 0
        capsys.readouterr()

    def test_verify_lint_findings_land_in_the_document(self, tmp_path,
                                                       capsys):
        import json
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        out_path = tmp_path / "findings.json"
        assert main(["verify", "--lint-only", "--lint-path", str(bad),
                     "--json", str(out_path)]) == 1
        capsys.readouterr()
        document = json.loads(out_path.read_text())
        assert document["ok"] is False
        assert document["lint"][0]["rule"] == "V101"
