"""Tests of the fault-injection and graceful-degradation subsystem.

Covers the determinism contract (one seed, one fault timeline, one
report) and every recovery path: bus parity retry and exhaustion,
SECDED correction / uncorrectable detection / frame retirement, snoop
drops caught by the I1-I4 audit and repaired, CPU-board offlining via
both the machine and the Topaz kernel, and QBus device degradation.
"""

from __future__ import annotations

import json

import pytest

from repro.bus.mbus import MBus
from repro.common.errors import (
    BusTransferError,
    ConfigurationError,
    DeadlockError,
    UncorrectableMemoryError,
)
from repro.common.events import Simulator
from repro.common.rng import StreamFactory
from repro.common.types import MBUS_OP_CYCLES
from repro.faults import (
    BusFaultModel,
    FaultInjector,
    FaultKind,
    FaultPlan,
    QBusFaultModel,
    run_campaign,
)
from repro.faults.plan import spec
from repro.io.disk import WORDS_PER_BLOCK, DiskController, DiskParams
from repro.system import FireflyConfig, FireflyMachine
from repro.system.checker import CoherenceChecker
from repro.workloads.threads_exerciser import ExerciserParams, build_exerciser

from tests.conftest import MiniRig

pytestmark = pytest.mark.faults


def _stream(seed: int = 1):
    return StreamFactory(seed).stream("faults")


def _sample_plan() -> FaultPlan:
    return FaultPlan([
        spec(FaultKind.BUS_CORRUPT, count=2, window=(0.1, 0.4), burst=2),
        spec(FaultKind.MEMORY_FLIP, count=3, window=(0.2, 0.8), bits=1),
        spec(FaultKind.SNOOP_DROP, window=(0.5, 0.9), drops=2),
    ])


# ---------------------------------------------------------------------------
# fault plans: seeded schedules


class TestFaultPlan:
    def test_same_seed_same_timeline(self):
        plan = _sample_plan()
        first = plan.schedule(_stream(7), 1_000, 50_000)
        second = plan.schedule(_stream(7), 1_000, 50_000)
        assert first == second
        assert [f.fault_id for f in first] == [
            f"F{i + 1}" for i in range(len(first))]

    def test_timeline_sorted_and_inside_windows(self):
        plan = _sample_plan()
        schedule = plan.schedule(_stream(3), 2_000, 40_000)
        times = [fault.time for fault in schedule]
        assert times == sorted(times)
        for fault in schedule:
            lo, hi = fault.spec.window
            assert 2_000 + int(lo * 40_000) <= fault.time
            assert fault.time <= 2_000 + int(hi * 40_000)

    def test_different_seeds_differ(self):
        plan = _sample_plan()
        assert (plan.schedule(_stream(1), 0, 100_000)
                != plan.schedule(_stream(2), 0, 100_000))

    def test_counts_and_describe(self):
        plan = _sample_plan()
        assert plan.counts() == {"bus-corrupt": 2, "memory-flip": 3,
                                 "snoop-drop": 1}
        fault = plan.schedule(_stream(5), 0, 10_000)[0]
        assert fault.fault_id in fault.describe()
        assert f"t={fault.time}" in fault.describe()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([])
        with pytest.raises(ConfigurationError):
            spec(FaultKind.BUS_CORRUPT, count=0)
        with pytest.raises(ConfigurationError):
            spec(FaultKind.BUS_CORRUPT, window=(0.8, 0.2))
        with pytest.raises(ConfigurationError):
            spec(FaultKind.BUS_CORRUPT, window=(0.0, 1.5))
        with pytest.raises(ConfigurationError):
            _sample_plan().schedule(_stream(1), 0, 0)

    def test_param_lookup(self):
        entry = spec(FaultKind.MEMORY_FLIP, bits=2)
        assert entry.param("bits", 1) == 2
        assert entry.param("missing", 9) == 9


# ---------------------------------------------------------------------------
# fault models: arming and validation


class TestFaultModels:
    def test_bus_model_validation(self):
        with pytest.raises(ConfigurationError):
            BusFaultModel(max_retries=-1)
        with pytest.raises(ConfigurationError):
            BusFaultModel(base_backoff_cycles=0)
        model = BusFaultModel()
        with pytest.raises(ConfigurationError):
            model.arm_corruption(0)
        with pytest.raises(ConfigurationError):
            model.arm_snoop_drops(0, drops=0)

    def test_bus_model_idle_tracking(self):
        model = BusFaultModel()
        assert model.idle
        model.arm_corruption(1)
        assert not model.idle

    def test_backoff_is_exponential(self):
        model = BusFaultModel(base_backoff_cycles=8)
        assert [model.backoff_cycles(n) for n in (1, 2, 3)] == [8, 16, 32]

    def test_qbus_model_validation(self):
        with pytest.raises(ConfigurationError):
            QBusFaultModel(timeout_cycles=0)
        with pytest.raises(ConfigurationError):
            QBusFaultModel(max_retries=0)
        with pytest.raises(ConfigurationError):
            QBusFaultModel(degraded_penalty_cycles=-1)
        model = QBusFaultModel()
        with pytest.raises(ConfigurationError):
            model.arm_timeouts(0)
        assert model.idle
        model.arm_timeouts(2)
        assert model.times_out() and model.times_out()
        assert not model.times_out()
        assert model.idle


# ---------------------------------------------------------------------------
# MBus parity corruption: bounded retry with backoff


class TestBusParityRecovery:
    def test_retry_recovers_and_counts(self, rig):
        events = []
        model = BusFaultModel(
            on_event=lambda name, **info: events.append(name))
        rig.mbus.faults = model
        model.arm_corruption(2)
        start = rig.sim.now
        rig.write(0, 0x40, 0xC0FFEE)
        assert rig.read(1, 0x40) == 0xC0FFEE
        assert rig.mbus.stats["parity.errors"].total == 2
        assert rig.mbus.stats["parity.recovered"].total >= 1
        assert events.count("bus_corrupted") == 2
        assert "bus_recovered" in events
        # Two voided tenures plus exponential backoff cost real cycles.
        assert rig.sim.now - start >= 3 * MBUS_OP_CYCLES + 8 + 16

    def test_retry_exhaustion_raises(self, rig):
        events = []
        model = BusFaultModel(
            max_retries=2,
            on_event=lambda name, **info: events.append(name))
        rig.mbus.faults = model
        model.arm_corruption(10)
        with pytest.raises(BusTransferError) as excinfo:
            rig.read(0, 0x80)
        assert excinfo.value.attempts == 3
        assert rig.mbus.stats["parity.errors"].total == 3
        assert "bus_exhausted" in events


# ---------------------------------------------------------------------------
# SECDED main memory: correction, detection, scrubbing


class TestEccRecovery:
    def test_single_bit_corrected_on_demand_read(self, rig):
        ecc_events = []
        # Stage via poke so no cache holds a copy: the demand read must
        # come from memory and pass through the SECDED check.
        rig.memory.poke(0x10, 1234)
        rig.memory.on_ecc = lambda *args: ecc_events.append(args)
        rig.memory.inject_bit_flips(0x10, 1)
        assert rig.memory.latent_errors == 1
        assert rig.read(1, 0x10) == 1234
        assert rig.memory.stats["ecc.corrected"].total == 1
        assert rig.memory.latent_errors == 0
        assert ecc_events == [(0x10, 1, "corrected")]

    def test_double_bit_poisons_until_rewrite(self, rig):
        rig.memory.poke(0x20, 77)
        rig.memory.inject_bit_flips(0x20, 2)
        with pytest.raises(UncorrectableMemoryError):
            rig.memory.read_line(0x20)
        # The frame stays poisoned: reads keep failing...
        with pytest.raises(UncorrectableMemoryError):
            rig.memory.read_line(0x20)
        assert rig.memory.stats["ecc.uncorrectable"].total >= 1
        # ...until fresh data (with fresh check bits) overwrites it.
        rig.memory.poke(0x20, 88)
        assert rig.memory.latent_errors == 0
        assert rig.read(1, 0x20) == 88

    def test_uncorrectable_error_propagates_to_the_reader(self, rig):
        rig.memory.poke(0x30, 9)
        rig.memory.inject_bit_flips(0x30, 2)
        with pytest.raises(UncorrectableMemoryError) as excinfo:
            rig.read(0, 0x30)
        assert excinfo.value.word_address == 0x30

    def test_scrub_pass_corrects_and_poisons(self, rig):
        rig.memory.inject_bit_flips(0x100, 1)
        rig.memory.inject_bit_flips(0x104, 1)
        rig.memory.inject_bit_flips(0x108, 3)
        assert rig.memory.scrub() == (2, 1)
        # The multi-bit word is poisoned, not silently dropped.
        assert rig.memory.latent_errors == 1
        rig.memory.poke(0x108, 0)
        assert rig.memory.latent_errors == 0


# ---------------------------------------------------------------------------
# snoop drops: detection by the I1-I4 audit, then repair


class _MachineShim:
    """The checker/injector view of a MiniRig (caches/memory/protocol)."""

    def __init__(self, rig: MiniRig) -> None:
        self.caches = rig.caches
        self.memory = rig.memory
        self.protocol = rig.protocol


class TestSnoopDropAudit:
    def test_irrelevant_probes_do_not_consume_the_fault(self, rig):
        model = BusFaultModel()
        rig.mbus.faults = model
        rig.read(1, 0x40)                  # cache1 now holds 0x40
        model.arm_snoop_drops(1, drops=1)
        rig.write(0, 0x80, 5)              # cache1 holds nothing at 0x80
        assert rig.mbus.stats["snoop.dropped"].total == 0
        assert not model.idle              # still armed, waiting

    def test_drop_detected_by_audit_and_repaired(self, rig):
        model = BusFaultModel()
        rig.mbus.faults = model
        rig.read(1, 0x40)                  # cache1 caches the line
        model.arm_snoop_drops(1, drops=1)
        rig.write(0, 0x40, 0xBEEF)         # cache1's probe is swallowed
        assert rig.mbus.stats["snoop.dropped"].total == 1

        shim = _MachineShim(rig)
        violations = CoherenceChecker(shim).violations()
        assert violations, "dropped snoop left no audit-visible damage"
        assert any(v.address == 0x40 for v in violations)

        injector = FaultInjector(shim, _sample_plan(), rng=_stream(1))
        assert injector.repair_coherence(violations) >= 1
        assert CoherenceChecker(shim).violations() == []
        assert rig.read(1, 0x40) == 0xBEEF


# ---------------------------------------------------------------------------
# CPU-board failure: graceful offlining


class TestCpuOffline:
    def test_machine_offline_flushes_and_work_continues(self):
        machine = FireflyMachine(FireflyConfig(processors=3, seed=3))
        sim = machine.sim
        machine.start()
        sim.run_until(4_000)
        proc = machine.offline_cpu(1)
        sim.run_until(10_000)
        assert proc.done
        assert proc.result >= 0          # dirty lines written back
        assert machine.failed_cpus == (1,)
        assert 1 not in [s.snooper_id for s in machine.mbus.snoopers]
        before = [cpu.stats["instructions"].total
                  for cpu in machine.online_cpus]
        sim.run_until(14_000)
        after = [cpu.stats["instructions"].total
                 for cpu in machine.online_cpus]
        assert any(b > a for a, b in zip(before, after))
        dead = machine.cpus[1].stats["instructions"].total
        sim.run_until(16_000)
        assert machine.cpus[1].stats["instructions"].total == dead

    def test_offline_validation(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=3))
        machine.start()
        machine.sim.run_until(1_000)
        with pytest.raises(ConfigurationError):
            machine.offline_cpu(0)       # the boot CPU cannot die
        with pytest.raises(ConfigurationError):
            machine.offline_cpu(7)
        machine.offline_cpu(1)
        with pytest.raises(ConfigurationError):
            machine.offline_cpu(1)       # already failed

    def test_kernel_offline_requeues_threads(self):
        kernel = build_exerciser(2, ExerciserParams(threads=6), seed=11)
        machine = kernel.machine
        machine.start()
        machine.sim.run_until(4_000)
        proc = kernel.offline_cpu(1)
        machine.sim.run_until(16_000)
        assert proc.done
        assert machine.failed_cpus == (1,)
        assert kernel.stats["offline_requeues"].total >= 1
        assert machine.cpus[0].stats["instructions"].total > 0


# ---------------------------------------------------------------------------
# QBus device timeouts: retry, then the degraded slow path


def _io_machine(seed: int = 3):
    machine = FireflyMachine(FireflyConfig(processors=2, io_enabled=True,
                                           seed=seed))
    disk = DiskController(
        machine.sim, machine.qbus,
        DiskParams(average_seek_cycles=500, max_seek_cycles=1_000,
                   half_rotation_cycles=250, cycles_per_word=4,
                   blocks=64, pio_cycles=8))
    machine.qbus.map.map_region(0, 1 << 19, WORDS_PER_BLOCK)
    return machine, disk


class TestDeviceDegradation:
    def test_timeouts_retry_then_degrade(self):
        machine, disk = _io_machine()
        events = []
        model = QBusFaultModel(
            timeout_cycles=16, max_retries=2, degraded_penalty_cycles=5,
            on_event=lambda name, **info: events.append((name, info)))
        machine.qbus.faults = model

        def one_write():
            yield from disk.write_blocks(0, 1, 0)

        model.arm_timeouts(1)
        proc = machine.sim.process(one_write(), name="io-1")
        machine.sim.run_until(100_000)
        assert proc.done
        assert not machine.qbus.degraded
        assert machine.qbus.stats["dma.timeouts"].total == 1
        assert ("qbus_timeouts", {"attempts": 1, "degraded": False}) \
            in events

        model.arm_timeouts(5)            # exceeds the retry budget
        proc = machine.sim.process(one_write(), name="io-2")
        machine.sim.run_until(300_000)
        assert proc.done
        assert machine.qbus.degraded
        assert machine.qbus.stats["dma.timeouts"].total == 6
        assert machine.qbus.stats["dma.degraded_words"].total > 0
        assert any(info.get("degraded") for _, info in events)


# ---------------------------------------------------------------------------
# the injector: determinism and the ledger


class TestFaultInjector:
    def _armed_machine(self, seed: int):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=seed))
        injector = FaultInjector(machine, _sample_plan())
        machine.start()
        machine.sim.run_until(2_000)
        injector.arm(8_000)
        machine.sim.run_until(machine.sim.now + 8_000)
        machine.memory.scrub()           # settle latent flips
        return injector

    def test_identical_seeds_identical_ledgers(self):
        first = self._armed_machine(5)
        second = self._armed_machine(5)
        assert first.schedule == second.schedule
        assert ([r.to_dict() for r in first.records]
                == [r.to_dict() for r in second.records])

    def test_arm_twice_or_in_the_past_rejected(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=1))
        machine.sim.run_until(100)
        injector = FaultInjector(machine, _sample_plan())
        with pytest.raises(ConfigurationError):
            injector.arm(1_000, start=50)
        injector = FaultInjector(
            machine, _sample_plan(),
            rng=StreamFactory(1).stream("faults2"))
        injector.arm(1_000)
        with pytest.raises(ConfigurationError):
            injector.arm(1_000)

    def test_single_bit_flip_corrected(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=9))
        plan = FaultPlan([spec(FaultKind.MEMORY_FLIP,
                               window=(0.0, 0.0), bits=1)])
        injector = FaultInjector(machine, plan)
        machine.start()
        machine.sim.run_until(1_000)
        injector.arm(500)
        machine.sim.run_until(1_100)
        machine.memory.scrub()
        record = injector.records[0]
        assert record.outcome == "corrected"
        assert record.detection_latency is not None
        assert record.recovery_time is not None
        assert machine.memory.latent_errors == 0

    def test_uncorrectable_flip_retires_the_frame(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=9))
        plan = FaultPlan([spec(FaultKind.MEMORY_FLIP,
                               window=(0.0, 0.0), bits=2)])
        injector = FaultInjector(machine, plan)
        machine.start()
        machine.sim.run_until(1_000)
        injector.arm(500)
        machine.sim.run_until(1_100)
        machine.memory.scrub()
        record = injector.records[0]
        assert record.outcome == "uncorrectable"
        assert "retired" in record.detail
        # Frame retirement cleared the poison: no latent error remains.
        assert machine.memory.latent_errors == 0

    def test_disarm_detaches_hooks(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=2))
        injector = FaultInjector(machine, _sample_plan())
        injector.arm(1_000)
        assert machine.mbus.faults is injector.bus_model
        assert machine.memory.on_ecc is not None
        injector.disarm()
        assert machine.mbus.faults is None
        assert machine.memory.on_ecc is None
        machine.start()
        machine.sim.run_until(2_000)
        assert all(r.outcome == "disarmed" for r in injector.records)

    def test_outcomes_rollup(self):
        injector = self._armed_machine(5)
        totals = injector.outcomes()
        assert sum(totals.values()) == len(injector.records)
        assert list(totals) == sorted(totals)


# ---------------------------------------------------------------------------
# zero perturbation: a fault-free run is untouched by the subsystem


class TestZeroPerturbation:
    def test_unarmed_injector_changes_nothing(self):
        def build():
            return FireflyMachine(FireflyConfig(processors=2, seed=42))

        plain = build()
        shadowed = build()
        FaultInjector(shadowed, _sample_plan())   # built, never armed
        a = plain.run(warmup_cycles=2_000, measure_cycles=6_000)
        b = shadowed.run(warmup_cycles=2_000, measure_cycles=6_000)
        assert a.bus_load == b.bus_load
        assert a.mean_tpi == b.mean_tpi
        assert a.mean_miss_rate == b.mean_miss_rate
        assert (plain.mbus.stats["ops"].total
                == shadowed.mbus.stats["ops"].total)


# ---------------------------------------------------------------------------
# satellite behaviours: deadlock reporting, arbitration validation, IPIs


class _PrioritySnooper:
    def __init__(self, snooper_id: int, priority: int) -> None:
        self.snooper_id = snooper_id
        self.priority = priority

    def snoop(self, op, line_address, data):  # pragma: no cover
        raise AssertionError("never probed in these tests")


class TestSatellites:
    def test_deadlock_error_reports_time_and_kinds(self):
        sim = Simulator()

        def waiter():
            yield sim.event("doom")

        sim.process(waiter(), name="stuck-proc")
        sim.run_until(25)
        sim.process(waiter(), name="later-proc")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_deadlock=True)
        message = str(excinfo.value)
        assert "t=25" in message
        assert "stuck-proc waiting on event:doom" in message
        assert excinfo.value.now == 25
        assert len(excinfo.value.blocked) == 2

    def test_negative_priority_rejected_at_attach(self, sim):
        mbus = MBus(sim)
        with pytest.raises(ConfigurationError):
            mbus.attach_snooper(_PrioritySnooper(0, priority=-1))

    def test_duplicate_priority_rejected_at_attach(self, sim):
        mbus = MBus(sim)
        mbus.attach_snooper(_PrioritySnooper(0, priority=2))
        with pytest.raises(ConfigurationError):
            mbus.attach_snooper(_PrioritySnooper(1, priority=2))
        mbus.attach_snooper(_PrioritySnooper(1, priority=3))
        with pytest.raises(ConfigurationError):
            mbus.attach_snooper(_PrioritySnooper(1, priority=4))

    def test_detach_snooper(self, sim):
        mbus = MBus(sim)
        mbus.attach_snooper(_PrioritySnooper(0, priority=0))
        mbus.detach_snooper(0)
        assert mbus.snoopers == ()
        with pytest.raises(ConfigurationError):
            mbus.detach_snooper(0)

    def test_ipi_to_unregistered_target_rejected(self, sim):
        mbus = MBus(sim)
        with pytest.raises(ConfigurationError):
            mbus.send_interrupt(target=3, sender=0)
        received = []
        mbus.register_interrupt_handler(3, received.append)
        mbus.send_interrupt(target=3, sender=0)
        assert received == [0]
        assert mbus.stats["ipi"].total == 1


# ---------------------------------------------------------------------------
# chaos campaigns: the CLI-visible surface


class TestChaosCampaign:
    def test_campaign_is_deterministic_and_json_safe(self):
        first = run_campaign(seed=2026, quick=True, scenarios=["bus-parity"])
        second = run_campaign(seed=2026, quick=True,
                              scenarios=["bus-parity"])
        assert first.to_dict() == second.to_dict()
        assert first.ok
        encoded = json.dumps(first.to_dict(), sort_keys=True)
        assert json.loads(encoded)["schema"] == "firefly-chaos/1"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(quick=True, scenarios=["no-such-chaos"])

    def test_cli_chaos_output_is_byte_identical(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--quick", "--seed", "7",
                     "--scenario", "bus-parity"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--quick", "--seed", "7",
                     "--scenario", "bus-parity"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "chaos: OK" in first

    def test_cli_chaos_list(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bus-parity" in out
        assert "device-degrade" in out
