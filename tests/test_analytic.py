"""The analytic model against Table 1, plus structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.queueing import (
    AnalyticParameters,
    FireflyAnalyticModel,
    PAPER_TABLE_1,
)
from repro.common.errors import ConfigurationError


@pytest.fixture
def model():
    return FireflyAnalyticModel()


class TestPaperConstants:
    def test_sm_coefficient(self, model):
        """SM = 1.065/(1-L)."""
        assert model.stall_misses(0.0) == pytest.approx(1.065)
        assert model.stall_misses(0.5) == pytest.approx(2.13)

    def test_sw_coefficient(self, model):
        """SW = .08/(1-L)."""
        assert model.stall_write_through(0.0) == pytest.approx(0.08)

    def test_sp_coefficient(self, model):
        """SP = .85L (the paper rounds 0.852)."""
        assert model.stall_probes(1.0 - 1e-12) == pytest.approx(0.852)

    def test_np_denominator(self, model):
        """NP = L*TPI/1.145."""
        assert model.params.np_denominator == pytest.approx(1.145)

    def test_tpi_at_zero_load(self, model):
        assert model.tpi(0.0) == pytest.approx(11.9 + 1.065 + 0.08)


class TestTable1:
    @pytest.mark.parametrize("processors", [2, 4, 6, 8, 10, 12])
    def test_against_paper(self, model, processors):
        point = model.operating_point(processors)
        paper = PAPER_TABLE_1[processors]
        assert point.load == pytest.approx(paper.load, abs=0.006)
        assert point.tpi == pytest.approx(paper.tpi, abs=0.06)
        # The paper prints RP truncated to two decimals (e.g. 11.9/13.89
        # = 0.857 printed as .85), so the tolerance is a full cent.
        assert point.relative_performance == pytest.approx(
            paper.relative_performance, abs=0.01)
        assert point.total_performance == pytest.approx(
            paper.total_performance, abs=0.011)

    def test_table1_row_set(self, model):
        table = model.table1()
        assert [p.processors for p in table] == [2, 4, 6, 8, 10, 12]

    def test_standard_five_processor_claims(self, model):
        """'The standard five-processor configuration delivers somewhat
        more than four times the performance of a single processor ...
        The average bus load on the standard machine is 0.4 and each
        processor runs at about 85% of a no-wait-state system.'"""
        point = model.operating_point(5)
        assert 4.0 < point.total_performance < 4.4
        assert 0.38 < point.load < 0.42
        assert 0.83 < point.relative_performance < 0.87

    def test_knee_is_about_nine_processors(self, model):
        """'the Firefly MBus can support perhaps nine processors'."""
        assert model.knee_processors() in (8, 9, 10)


class TestInversion:
    def test_round_trip(self, model):
        for load in (0.1, 0.3, 0.5, 0.7, 0.9):
            processors = model.processors_for_load(load)
            assert model.load_for_processors(processors) == pytest.approx(
                load, abs=1e-6)

    def test_monotonicity(self, model):
        loads = [model.load_for_processors(n) for n in range(1, 14)]
        assert loads == sorted(loads)
        rps = [model.operating_point(n).relative_performance
               for n in range(1, 14)]
        assert rps == sorted(rps, reverse=True)

    def test_total_performance_increases_with_diminishing_returns(
            self, model):
        tps = [model.operating_point(n).total_performance
               for n in range(1, 14)]
        gains = [b - a for a, b in zip(tps, tps[1:])]
        assert all(g > 0 for g in gains)
        assert gains == sorted(gains, reverse=True)

    def test_non_positive_processor_count_rejected(self, model):
        # (Any positive count is nominally reachable in the *open*
        # queueing model — NP(L) diverges as L -> 1 — which is exactly
        # why the paper calls it inaccurate at high loads.)
        with pytest.raises(ConfigurationError):
            model.load_for_processors(0)
        with pytest.raises(ConfigurationError):
            model.load_for_processors(-3)


class TestParameterSensitivity:
    def test_lower_miss_rate_supports_more_processors(self):
        base = FireflyAnalyticModel()
        better = FireflyAnalyticModel(AnalyticParameters(miss_rate=0.1))
        assert better.load_for_processors(8) < base.load_for_processors(8)
        assert (better.operating_point(8).total_performance
                > base.operating_point(8).total_performance)

    def test_more_sharing_costs_performance(self):
        base = FireflyAnalyticModel()
        sharing = FireflyAnalyticModel(
            AnalyticParameters(shared_write_fraction=0.33))
        assert (sharing.operating_point(5).total_performance
                < base.operating_point(5).total_performance)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnalyticParameters(miss_rate=0.0)
        with pytest.raises(ConfigurationError):
            AnalyticParameters(dirty_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AnalyticParameters(base_tpi=0)
        model = FireflyAnalyticModel()
        with pytest.raises(ConfigurationError):
            model.tpi(1.0)
        with pytest.raises(ConfigurationError):
            model.knee_processors(marginal_gain=1.5)

    @given(load=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_property_tp_below_np(self, load):
        """Total performance can never exceed the processor count."""
        model = FireflyAnalyticModel()
        np = model.processors_for_load(load)
        assert model.total_performance(load) <= np + 1e-9

    @given(load=st.floats(min_value=0.01, max_value=0.9),
           miss=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_property_tpi_increases_with_load_and_miss(self, load, miss):
        model = FireflyAnalyticModel(AnalyticParameters(miss_rate=miss))
        assert model.tpi(load) > model.tpi(load * 0.5)
        worse = FireflyAnalyticModel(
            AnalyticParameters(miss_rate=min(0.9, miss * 1.5)))
        assert worse.tpi(load) > model.tpi(load)
