"""The baseline protocols: state machines and traffic character."""

import pytest

from repro.cache.fsm import transition_map
from repro.cache.line import LineState
from repro.cache.protocols import available_protocols, protocol_by_name
from tests.conftest import MiniRig, make_rig

ALL_PROTOCOLS = ("firefly", "write-through", "berkeley", "dragon",
                 "mesi", "synapse", "write-once", "moesi", "bedrock")


class TestRegistry:
    def test_all_protocols_registered(self):
        assert set(available_protocols()) == set(ALL_PROTOCOLS)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            protocol_by_name("goodman-2")

    def test_instances_have_names(self):
        for name in ALL_PROTOCOLS:
            assert protocol_by_name(name).name == name


class TestUniversalBehaviour:
    """Every protocol must deliver coherent data on these sequences."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_read_your_own_write(self, protocol):
        rig = make_rig(protocol)
        rig.write(0, 40, 7)
        assert rig.read(0, 40) == 7
        rig.check_coherence()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_other_cpu_sees_write(self, protocol):
        rig = make_rig(protocol)
        rig.write(0, 40, 7)
        assert rig.read(1, 40) == 7
        rig.check_coherence()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_write_after_shared_read(self, protocol):
        rig = make_rig(protocol)
        rig.read(0, 40)
        rig.read(1, 40)
        rig.write(0, 40, 9)
        assert rig.read(1, 40) == 9
        rig.check_coherence()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_ping_pong_writes(self, protocol):
        rig = make_rig(protocol, caches=3)
        for round_number in range(6):
            writer = round_number % 3
            rig.write(writer, 40, round_number)
            for reader in range(3):
                assert rig.read(reader, 40) == round_number
        rig.check_coherence()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_eviction_preserves_data(self, protocol):
        rig = make_rig(protocol, lines=16)
        rig.write(0, 5, 123)
        rig.read(0, 5 + 16)   # maybe evicts (same index)
        rig.write(0, 5 + 32, 9)
        assert rig.read(1, 5) == 123
        rig.check_coherence()


class TestWriteThroughInvalidate:
    def test_every_write_reaches_the_bus(self):
        """The paper's critique: 'substantial write traffic'."""
        rig = make_rig("write-through")
        rig.read(0, 10)
        before = rig.mbus.stats["ops"].total
        for value in range(5):
            rig.write(0, 10, value)
        assert rig.mbus.stats["op.MWrite"].total >= 5
        assert rig.mbus.stats["ops"].total - before == 5

    def test_snooped_write_invalidates(self):
        """'extra misses will be required to reload invalidated lines'"""
        rig = make_rig("write-through")
        rig.read(0, 10)
        rig.read(1, 10)
        rig.write(0, 10, 5)
        assert not rig.caches[1].present(10)
        misses_before = rig.caches[1].stats["dread.miss"].total
        assert rig.read(1, 10) == 5
        assert rig.caches[1].stats["dread.miss"].total == misses_before + 1

    def test_never_dirty_no_victim_writes(self):
        rig = make_rig("write-through", lines=8)
        for i in range(20):
            rig.write(0, i, i)
            rig.read(0, i + 64)
        assert rig.mbus.stats.totals().get("write.victim", 0) == 0

    def test_no_write_allocate(self):
        rig = make_rig("write-through")
        rig.write(0, 10, 1)
        assert not rig.caches[0].present(10)

    def test_fsm(self):
        fsm = transition_map("write-through")
        assert fsm[("I", "P-read-miss", False)] == "V"
        assert fsm[("I", "P-write-miss", False)] == "I"   # no allocate
        assert fsm[("V", "P-write", False)] == "V"
        assert fsm[("V", "M-write", False)] == "I"        # invalidation
        assert fsm[("V", "M-read", False)] == "V"


class TestBerkeley:
    def test_write_requires_ownership_bus_op(self):
        rig = make_rig("berkeley")
        rig.read(0, 20)
        before = rig.mbus.stats["ops"].total
        rig.write(0, 20, 1)   # VALID -> must invalidate to own
        assert rig.mbus.stats["op.MInvalidate"].total == 1
        # Second write is silent (OWNED).
        rig.write(0, 20, 2)
        assert rig.mbus.stats["ops"].total == before + 1
        assert rig.caches[0].state_of(20) is LineState.OWNED

    def test_owner_supplies_without_memory_update(self):
        rig = make_rig("berkeley")
        rig.write(0, 20, 9)
        assert rig.read(1, 20) == 9
        assert rig.caches[0].state_of(20) is LineState.OWNED_SHARED
        assert rig.memory.peek(20) != 9   # memory not updated

    def test_owner_writes_back_on_eviction(self):
        rig = make_rig("berkeley", lines=16)
        rig.write(0, 20, 9)
        rig.read(1, 20)
        rig.read(0, 20 + 16)  # evict the owned line
        assert rig.memory.peek(20) == 9
        assert rig.mbus.stats["write.victim"].total == 1

    def test_sharing_ping_pong_costs_invalidations(self):
        """The ownership-protocol cost under true sharing."""
        rig = make_rig("berkeley")
        rig.write(0, 20, 0)
        for i in range(1, 5):
            writer = i % 2
            rig.write(writer, 20, i)
            rig.read(1 - writer, 20)
        # Every write by a non-owner forces an ownership transfer.
        transfers = (rig.mbus.stats.totals().get("op.MInvalidate", 0)
                     + rig.mbus.stats.totals().get("op.MReadEx", 0))
        assert transfers >= 4

    def test_fsm(self):
        fsm = transition_map("berkeley")
        assert fsm[("I", "P-read-miss", False)] == "V"
        assert fsm[("I", "P-write-miss", False)] == "O"
        assert fsm[("V", "P-write", False)] == "O"
        assert fsm[("O", "M-read", False)] == "OS"
        assert fsm[("OS", "P-write", False)] == "O"
        assert fsm[("O", "P-write", False)] == "O"


class TestSynapse:
    def test_write_acquires_ownership_via_read_exclusive(self):
        rig = make_rig("synapse")
        rig.read(0, 50)
        rig.write(0, 50, 1)   # VALID hit still costs an MReadEx
        assert rig.mbus.stats["op.MReadEx"].total == 1
        assert rig.caches[0].state_of(50) is LineState.DIRTY
        before = rig.mbus.stats["ops"].total
        rig.write(0, 50, 2)   # DIRTY hit is silent
        assert rig.mbus.stats["ops"].total == before

    def test_dirty_holder_surrenders_on_bus_read(self):
        """The survey's Synapse signature: no shared-dirty demotion."""
        rig = make_rig("synapse")
        rig.write(0, 50, 9)
        assert rig.read(1, 50) == 9
        # The previous owner invalidated entirely (not demoted), and
        # the data was snarfed into memory by the same transaction.
        assert rig.caches[0].state_of(50) is LineState.INVALID
        assert rig.memory.peek(50) == 9
        rig.check_coherence()

    def test_reload_penalty_after_surrender(self):
        """'Behaves like Berkeley with extra misses.'"""
        rig = make_rig("synapse")
        rig.write(0, 50, 9)
        rig.read(1, 50)       # forces cache 0's surrender
        misses_before = rig.caches[0].stats["dread.miss"].total
        assert rig.read(0, 50) == 9
        assert rig.caches[0].stats["dread.miss"].total == misses_before + 1

    def test_fsm(self):
        fsm = transition_map("synapse")
        assert fsm[("I", "P-read-miss", False)] == "V"
        assert fsm[("I", "P-write-miss", False)] == "D"
        assert fsm[("V", "P-write", False)] == "D"
        assert fsm[("D", "M-read", False)] == "I"   # total surrender
        assert fsm[("V", "M-write", False)] == "I"
        assert fsm[("D", "P-write", False)] == "D"


class TestDragon:
    def test_update_not_invalidate(self):
        rig = make_rig("dragon")
        rig.read(0, 30)
        rig.read(1, 30)
        rig.write(0, 30, 5)
        assert rig.caches[1].present(30)
        assert rig.caches[1].peek(30) == 5

    def test_shared_write_leaves_memory_stale(self):
        """Dragon's difference from the Firefly (DESIGN.md)."""
        rig = make_rig("dragon")
        rig.read(0, 30)
        rig.read(1, 30)
        rig.write(0, 30, 5)
        assert rig.memory.peek(30) != 5
        assert rig.caches[0].state_of(30) is LineState.SHARED_DIRTY

    def test_owner_victim_write_updates_memory(self):
        rig = make_rig("dragon", lines=16)
        rig.read(0, 30)
        rig.read(1, 30)
        rig.write(0, 30, 5)   # Sm in cache 0
        rig.read(0, 30 + 16)  # evict Sm
        assert rig.memory.peek(30) == 5

    def test_revert_to_modified_when_sharers_vanish(self):
        rig = make_rig("dragon", lines=16)
        rig.read(0, 30)
        rig.read(1, 30)
        rig.read(1, 30 + 16)  # cache 1 silently drops its copy
        rig.write(0, 30, 5)   # update sees no MShared
        assert rig.caches[0].state_of(30) is LineState.DIRTY

    def test_fsm(self):
        fsm = transition_map("dragon")
        assert fsm[("V", "P-write", False)] == "D"
        assert fsm[("S", "P-write", True)] == "SD"   # Sm: owner
        assert fsm[("S", "P-write", False)] == "D"
        assert fsm[("D", "M-read", False)] == "SD"
        assert fsm[("SD", "M-write", False)] == "S"


class TestMesi:
    def test_exclusive_clean_write_is_silent(self):
        rig = make_rig("mesi")
        rig.read(0, 35)       # E (no sharers)
        before = rig.mbus.stats["ops"].total
        rig.write(0, 35, 1)   # E -> M silently
        assert rig.mbus.stats["ops"].total == before
        assert rig.caches[0].state_of(35) is LineState.DIRTY

    def test_shared_write_invalidates(self):
        rig = make_rig("mesi")
        rig.read(0, 35)
        rig.read(1, 35)
        rig.write(0, 35, 1)
        assert not rig.caches[1].present(35)
        assert rig.mbus.stats["op.MInvalidate"].total == 1

    def test_modified_supplier_snarfs_to_memory(self):
        """Illinois reflection: memory is updated during the supply."""
        rig = make_rig("mesi")
        rig.read(0, 35)
        rig.write(0, 35, 9)   # M; memory stale
        assert rig.read(1, 35) == 9
        assert rig.memory.peek(35) == 9
        assert rig.caches[0].state_of(35) is LineState.SHARED

    def test_write_miss_uses_read_exclusive(self):
        rig = make_rig("mesi")
        rig.read(1, 35)
        rig.write(0, 35, 1)
        assert rig.mbus.stats["op.MReadEx"].total == 1
        assert not rig.caches[1].present(35)

    def test_fsm(self):
        fsm = transition_map("mesi")
        assert fsm[("I", "P-read-miss", False)] == "V"   # E
        assert fsm[("I", "P-read-miss", True)] == "S"
        assert fsm[("I", "P-write-miss", False)] == "D"  # M
        assert fsm[("V", "P-write", False)] == "D"
        assert fsm[("S", "P-write", False)] == "D"
        assert fsm[("D", "M-read", False)] == "S"


class TestWriteOnce:
    def test_first_write_goes_through_second_stays_local(self):
        rig = make_rig("write-once")
        rig.read(0, 45)
        rig.write(0, 45, 1)   # the once
        assert rig.caches[0].state_of(45) is LineState.RESERVED
        assert rig.memory.peek(45) == 1
        before = rig.mbus.stats["ops"].total
        rig.write(0, 45, 2)   # local
        assert rig.mbus.stats["ops"].total == before
        assert rig.caches[0].state_of(45) is LineState.DIRTY
        assert rig.memory.peek(45) == 1   # not yet written back

    def test_write_through_invalidates_copies(self):
        rig = make_rig("write-once")
        rig.read(0, 45)
        rig.read(1, 45)
        rig.write(0, 45, 1)
        assert not rig.caches[1].present(45)

    def test_dirty_supplier_snarfs(self):
        rig = make_rig("write-once")
        rig.read(0, 45)
        rig.write(0, 45, 1)
        rig.write(0, 45, 2)   # DIRTY; memory holds 1
        assert rig.read(1, 45) == 2
        assert rig.memory.peek(45) == 2

    def test_fsm(self):
        fsm = transition_map("write-once")
        assert fsm[("V", "P-write", False)] == "R"
        assert fsm[("R", "P-write", False)] == "D"
        assert fsm[("D", "P-write", False)] == "D"
        assert fsm[("R", "M-read", False)] == "V"
        assert fsm[("D", "M-read", False)] == "V"
        assert fsm[("V", "M-write", False)] == "I"


class TestTrafficComparison:
    def test_firefly_beats_invalidation_on_heavy_sharing(self):
        """The design rationale: update protocols win when sharing is
        real (producer/consumer), because invalidated copies must be
        reloaded with full misses."""
        def producer_consumer(protocol):
            rig = make_rig(protocol)
            for i in range(20):
                rig.write(0, 55, i)
                assert rig.read(1, 55) == i
            return rig.mbus.stats["ops"].total

        firefly_ops = producer_consumer("firefly")
        berkeley_ops = producer_consumer("berkeley")
        mesi_ops = producer_consumer("mesi")
        assert firefly_ops < berkeley_ops
        assert firefly_ops < mesi_ops

    def test_write_back_beats_write_through_on_private_data(self):
        def private_writer(protocol):
            rig = make_rig(protocol)
            for i in range(20):
                rig.write(0, 55, i)
            return rig.mbus.stats["ops"].total

        assert private_writer("firefly") < private_writer("write-through")
