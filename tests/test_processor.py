"""Unit tests for the processor timing model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.rng import RandomStream
from repro.common.types import AccessKind, MemRef
from repro.processor.cpu import InstructionBundle, PrefetchConfig, Processor
from repro.processor.mix import VAX_MIX, ReferenceMix
from repro.processor.onchip import OnChipICache
from repro.processor.timing import CVAX_TIMING, MICROVAX_TIMING, ProcessorTiming
from tests.conftest import MiniRig


class ScriptedSource:
    """Feeds a fixed list of bundles, then halts the CPU."""

    def __init__(self, bundles):
        self.bundles = list(bundles)
        self._cursor = 0

    def next_instruction(self, cpu):
        if self._cursor >= len(self.bundles):
            return None
        bundle = self.bundles[self._cursor]
        self._cursor += 1
        return bundle


def build_cpu(rig, bundles, timing=MICROVAX_TIMING, prefetch=None,
              cpu_index=0):
    source = ScriptedSource(bundles)
    rng = RandomStream(1, "prefetch") if (prefetch and prefetch.enabled) \
        else None
    cpu = Processor(rig.sim, cpu_index, timing, rig.caches[cpu_index],
                    source, prefetch=prefetch, rng=rng)
    return cpu


def run_cpu(rig, cpu):
    """Start the CPU and return its *elapsed* execution time (warm-up
    operations may already have advanced the rig's clock)."""
    started = rig.sim.now
    cpu.start()
    rig.sim.run()
    return rig.sim.now - started


def bundle(refs=(), jump=False, base_cycles=None):
    return InstructionBundle(refs=tuple(refs), is_jump=jump,
                             base_cycles=base_cycles)


class TestTimingConstants:
    def test_microvax_parameters(self):
        assert MICROVAX_TIMING.base_tpi == pytest.approx(11.9)
        assert MICROVAX_TIMING.tick_cycles == 2
        assert MICROVAX_TIMING.instructions_per_second_nowait == \
            pytest.approx(420_168, rel=1e-3)

    def test_cvax_parameters(self):
        assert CVAX_TIMING.has_onchip_icache
        assert CVAX_TIMING.miss_overhead_cycles == 2
        # ~2.6x the MicroVAX raw issue rate.
        ratio = (CVAX_TIMING.instructions_per_second_nowait
                 / MICROVAX_TIMING.instructions_per_second_nowait)
        assert 2.5 < ratio < 2.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorTiming("bad", tick_cycles=0,
                            base_cycles_per_instruction=10)
        with pytest.raises(ConfigurationError):
            ProcessorTiming("bad", tick_cycles=4,
                            base_cycles_per_instruction=2)
        with pytest.raises(ConfigurationError):
            ProcessorTiming("bad", tick_cycles=2,
                            base_cycles_per_instruction=10,
                            has_onchip_icache=True)


class TestBaseCost:
    def test_refless_instruction_costs_base(self):
        rig = MiniRig()
        cpu = build_cpu(rig, [bundle(base_cycles=24)])
        assert run_cpu(rig, cpu) == 24

    def test_accumulator_base_converges(self):
        rig = MiniRig()
        cpu = build_cpu(rig, [bundle() for _ in range(100)])
        elapsed = run_cpu(rig, cpu)
        # 100 instructions at 23.8 cycles each.
        assert abs(elapsed - 2380) <= 2

    def test_bundle_override(self):
        rig = MiniRig()
        cpu = build_cpu(rig, [bundle(base_cycles=10),
                              bundle(base_cycles=30)])
        assert run_cpu(rig, cpu) == 40


class TestMissAccounting:
    def test_hit_costs_nothing_extra(self):
        rig = MiniRig()
        rig.read(0, 5)  # warm the line
        ref = MemRef(5, AccessKind.DATA_READ)
        cpu = build_cpu(rig, [bundle([ref], base_cycles=24)])
        assert run_cpu(rig, cpu) == 24

    def test_miss_adds_one_tick_on_free_bus(self):
        """Paper: 'misses add only one cycle to a MicroVAX CPU access'
        (one 200 ns tick: the 4-cycle bus op minus the 2-cycle hit)."""
        rig = MiniRig()
        ref = MemRef(5, AccessKind.DATA_READ)
        cpu = build_cpu(rig, [bundle([ref], base_cycles=24)])
        assert run_cpu(rig, cpu) == 26

    def test_dirty_victim_adds_two_more_ticks(self):
        """'plus two ticks for every dirty victim write'."""
        rig = MiniRig(lines=16)
        rig.read(0, 5)
        rig.write(0, 5, 1)   # dirty at index 5
        ref = MemRef(5 + 16, AccessKind.DATA_READ)  # conflict miss
        cpu = build_cpu(rig, [bundle([ref], base_cycles=24)])
        assert run_cpu(rig, cpu) == 24 + 2 + 4  # +1 tick miss +2 ticks victim

    def test_shared_write_through_stalls_one_tick(self):
        rig = MiniRig()
        rig.read(0, 5)
        rig.read(1, 5)   # shared now
        ref = MemRef(5, AccessKind.DATA_WRITE)
        cpu = build_cpu(rig, [bundle([ref], base_cycles=24)])
        assert run_cpu(rig, cpu) == 26

    def test_cvax_miss_overhead(self):
        """CVAX: 'cache misses add four CVAX cycles' (hit 2 + 4 = 6)."""
        rig = MiniRig()
        ref = MemRef(5, AccessKind.DATA_READ)
        cpu = build_cpu(rig, [bundle([ref], base_cycles=9)],
                        timing=CVAX_TIMING)
        # base 9 cycles; the access's budgeted 2 are spent during the
        # 4-cycle bus op, plus 2 overhead: 9 - 2 + 4 + 2 = 13.
        assert run_cpu(rig, cpu) == 13

    def test_bus_contention_stalls_accumulate(self):
        rig = MiniRig()
        ref_a = MemRef(5, AccessKind.DATA_READ)
        ref_b = MemRef(6, AccessKind.DATA_READ)
        cpu0 = build_cpu(rig, [bundle([ref_a], base_cycles=24)], cpu_index=0)
        cpu1 = build_cpu(rig, [bundle([ref_b], base_cycles=24)], cpu_index=1)
        cpu0.start()
        cpu1.start()
        rig.sim.run()
        # One of the two waited a full bus tenure.
        assert rig.mbus.queue_wait_cycles == 4
        assert cpu1.stats["bus_stall_cycles"].total >= 8


class TestTagContention:
    def test_sp_stall_when_snooped(self):
        rig = MiniRig()
        rig.read(0, 5)  # cache 0 holds line 5
        # CPU 1 misses on address 5 concurrently with CPU 0 hitting it:
        probe_ref = MemRef(5, AccessKind.DATA_READ)
        hit_ref = MemRef(5, AccessKind.DATA_READ)
        cpu1 = build_cpu(rig, [bundle([probe_ref], base_cycles=24)],
                         cpu_index=1)

        def cpu0_hitter():
            # Wait until cpu1's transaction has probed our tags.
            yield rig.sim.timeout(1)
            started = rig.sim.now
            if rig.caches[0].tag_contention_stall(rig.sim.now):
                yield rig.sim.timeout(2)
            value = yield from rig.caches[0].cpu_read(hit_ref)
            return rig.sim.now - started

        cpu1.start()
        proc = rig.sim.process(cpu0_hitter(), "hitter")
        rig.sim.run()
        assert proc.result == 2  # stalled one tick by the probe


class TestPrefetch:
    def test_prefetch_requires_rng(self):
        rig = MiniRig()
        with pytest.raises(ConfigurationError):
            Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0],
                      ScriptedSource([]),
                      prefetch=PrefetchConfig(enabled=True))

    def test_covered_sequential_fetch_refunds_cycles(self):
        rig = MiniRig()
        rig.read(0, 100, kind=AccessKind.INSTRUCTION_READ)  # warm
        ref = MemRef(100, AccessKind.INSTRUCTION_READ)
        prefetch = PrefetchConfig(enabled=True, refund_cycles=3,
                                  wasted_per_jump=0.0)
        cpu = build_cpu(rig, [bundle([ref], base_cycles=24)],
                        prefetch=prefetch)
        assert run_cpu(rig, cpu) == 21  # 24 - 3 refund
        assert cpu.stats["prefetch_covered"].total == 1

    def test_jump_fetches_not_refunded(self):
        rig = MiniRig()
        rig.read(0, 100, kind=AccessKind.INSTRUCTION_READ)
        ref = MemRef(100, AccessKind.INSTRUCTION_READ)
        prefetch = PrefetchConfig(enabled=True, refund_cycles=3,
                                  wasted_per_jump=0.0)
        cpu = build_cpu(rig, [InstructionBundle(refs=(ref,), is_jump=True,
                                                base_cycles=24)],
                        prefetch=prefetch)
        assert run_cpu(rig, cpu) == 24

    def test_wasted_prefetches_add_reference_traffic(self):
        rig = MiniRig()
        prefetch = PrefetchConfig(enabled=True, refund_cycles=0,
                                  wasted_per_jump=2.0)
        jump = InstructionBundle(refs=(), is_jump=True,
                                 prefetch_addresses=(300, 301, 302),
                                 base_cycles=24)
        cpu = build_cpu(rig, [jump], prefetch=prefetch)
        run_cpu(rig, cpu)
        assert cpu.stats["wasted_prefetches"].total == 2
        assert cpu.stats["refs.ifetch"].total == 2

    def test_wasted_prefetch_deferred_when_bus_busy(self):
        rig = MiniRig()
        prefetch = PrefetchConfig(enabled=True, refund_cycles=0,
                                  wasted_per_jump=1.0)
        jump = InstructionBundle(refs=(), is_jump=True,
                                 prefetch_addresses=(300,), base_cycles=24)
        cpu = build_cpu(rig, [jump], prefetch=prefetch, cpu_index=0)

        def hog():
            # Keep the bus busy over the jump window.
            ref = yield from rig.caches[1].cpu_read(
                MemRef(900, AccessKind.DATA_READ))

        rig.sim.process(hog(), "hog")
        cpu.start()
        rig.sim.run()
        assert cpu.stats.totals().get("wasted_prefetches", 0) == 0
        assert cpu.stats["prefetch_deferred"].total == 1


class TestOnChipICache:
    def test_hit_after_allocate(self):
        onchip = OnChipICache(64)
        assert not onchip.access(10)
        assert onchip.access(10)
        assert onchip.hit_rate == 0.5

    def test_conflict_eviction(self):
        onchip = OnChipICache(64)
        onchip.access(10)
        onchip.access(10 + 64)
        assert not onchip.access(10)

    def test_invalidate_line(self):
        onchip = OnChipICache(64)
        onchip.access(10)
        onchip.invalidate_line(10)
        assert not onchip.access(10)
        assert onchip.stats["invalidated"].total == 1

    def test_flush(self):
        onchip = OnChipICache(64)
        for address in range(10):
            onchip.access(address)
        onchip.flush()
        assert not onchip.access(3)

    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            OnChipICache(100)

    def test_snooped_write_invalidates_onchip_copy(self):
        """Another CPU rewriting code must drop the on-chip copy, or
        the CVAX would execute stale instructions."""
        rig = MiniRig()
        iref = MemRef(40, AccessKind.INSTRUCTION_READ)
        cpu = build_cpu(rig, [bundle([iref], base_cycles=9),
                              bundle([iref], base_cycles=9)],
                        timing=CVAX_TIMING)

        def code_patcher():
            # CPU 1 rewrites the instruction word mid-run.
            yield rig.sim.timeout(6)
            yield from rig.caches[1].cpu_write(
                MemRef(40, AccessKind.DATA_WRITE), 0xBEEF)

        cpu.start()
        rig.sim.process(code_patcher(), "patcher")
        rig.sim.run()
        # The second fetch could not be an on-chip hit: the write-
        # through invalidated the on-chip line.
        assert cpu.onchip.stats["invalidated"].total >= 1
        assert cpu.onchip.stats.totals().get("hit", 0) == 0

    def test_cvax_cpu_uses_onchip_for_instructions_only(self):
        rig = MiniRig()
        iref = MemRef(40, AccessKind.INSTRUCTION_READ)
        dref = MemRef(41, AccessKind.DATA_READ)
        cpu = build_cpu(rig, [bundle([iref], base_cycles=9),
                              bundle([iref], base_cycles=9),
                              bundle([dref], base_cycles=9),
                              bundle([dref], base_cycles=9)],
                        timing=CVAX_TIMING)
        run_cpu(rig, cpu)
        # Second ifetch hits on-chip: off-chip cache sees only one.
        assert cpu.onchip.stats["hit"].total == 1
        assert rig.caches[0].stats["ifetch.miss"].total == 1
        # Data reads always go off-chip.
        assert rig.caches[0].stats["dread.miss"].total \
            + rig.caches[0].stats["dread.hit"].total == 2


class TestLifecycle:
    def test_source_none_halts(self):
        rig = MiniRig()
        cpu = build_cpu(rig, [bundle(base_cycles=10)])
        run_cpu(rig, cpu)
        assert cpu.stats["instructions"].total == 1
        assert "halted_at" in cpu.stats

    def test_idle_event_counts_idle_cycles(self):
        rig = MiniRig()

        class IdleOnce:
            def __init__(self, sim):
                self.sim = sim
                self.state = 0

            def next_instruction(self, cpu):
                self.state += 1
                if self.state == 1:
                    event = self.sim.event("wake")
                    self.sim.call_at(50, event.succeed)
                    return event
                return None

        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0],
                        IdleOnce(rig.sim))
        cpu.start()
        rig.sim.run()
        assert cpu.stats["idle_cycles"].total == 50

    def test_measurement_window(self):
        rig = MiniRig()
        bundles = [bundle(base_cycles=20) for _ in range(10)]
        cpu = build_cpu(rig, bundles)
        cpu.start()
        rig.sim.run_until(100)   # 5 instructions
        cpu.mark_window()
        rig.sim.run_until(200)   # 5 more
        assert cpu.stats["instructions"].windowed == 5
        assert cpu.measured_tpi() == pytest.approx(10.0)  # 20 cy = 10 ticks

    def test_write_tokens_are_unique_per_cpu(self):
        rig = MiniRig()
        ref = MemRef(5, AccessKind.DATA_WRITE)
        cpu0 = build_cpu(rig, [bundle([ref], base_cycles=24)], cpu_index=0)
        run_cpu(rig, cpu0)
        first = rig.memory.peek(5)
        assert first != 0
