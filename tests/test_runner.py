"""The deterministic parallel trial executor (repro.observatory.runner).

The load-bearing claim: ``jobs=N`` is a pure fan-out — same results,
same order, same bytes in every serialised document — and a trial that
fails (or a worker process that dies) surfaces as one clean
:class:`TrialFailure` naming the trial, never a hang or a raw child
traceback.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.faults.chaos import run_campaign
from repro.observatory.bench import run_suite
from repro.observatory.runner import (
    TrialFailure,
    run_ordered,
    run_sweep,
    sweep_point,
)

pytestmark = pytest.mark.observatory


# Module-level so they pickle by reference into worker processes.
def _square(spec):
    return spec * spec


def _fail_on_three(spec):
    if spec == 3:
        raise ValueError("three is right out")
    return spec


def _die_on_two(spec):
    if spec == 2:
        os._exit(13)  # simulates a segfaulting / killed worker
    return spec


def _slow_square(spec):
    time.sleep(20)
    return spec * spec


class TestRunOrdered:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_in_spec_order(self, jobs):
        specs = list(range(10))
        assert run_ordered(specs, _square, jobs=jobs) \
            == [n * n for n in specs]

    def test_empty_specs(self):
        assert run_ordered([], _square, jobs=4) == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_names_the_trial(self, jobs):
        with pytest.raises(TrialFailure) as exc:
            run_ordered([1, 2, 3, 4], _fail_on_three, jobs=jobs,
                        describe=lambda s: f"(scenario-x, seed {s})")
        message = str(exc.value)
        assert "(scenario-x, seed 3)" in message
        assert "ValueError" in message
        assert "three is right out" in message

    def test_dead_worker_surfaces_cleanly(self):
        """A worker process that exits hard must not hang the parent;
        the failure names the trial whose result never arrived."""
        with pytest.raises(TrialFailure) as exc:
            run_ordered([1, 2, 4], _die_on_two, jobs=2,
                        describe=lambda s: f"(chaos-y, seed {s})")
        assert "seed" in str(exc.value)
        assert "worker process died" in str(exc.value)


class TestOnResult:
    """The ``on_result`` streaming callback: delivered in spec order on
    both paths, and every completed-before-the-failure trial is seen
    even when a later trial raises — the hook the campaign ledger's
    resume guarantee stands on."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_callback_runs_in_spec_order(self, jobs):
        seen = []
        results = run_ordered(
            list(range(8)), _square, jobs=jobs,
            on_result=lambda spec, result: seen.append((spec, result)))
        assert seen == [(n, n * n) for n in range(8)]
        assert results == [n * n for n in range(8)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_completed_trials_delivered_before_failure(self, jobs):
        seen = []
        with pytest.raises(TrialFailure):
            run_ordered([1, 2, 3, 4], _fail_on_three, jobs=jobs,
                        on_result=lambda spec, result:
                        seen.append(spec))
        assert seen == [1, 2]

    def test_callback_exception_propagates(self):
        def boom(spec, result):
            raise RuntimeError("ledger disk full")

        with pytest.raises(RuntimeError, match="ledger disk full"):
            run_ordered([1, 2], _square, jobs=1, on_result=boom)


class TestKeyboardInterrupt:
    def test_ctrl_c_terminates_workers(self):
        """Ctrl-C mid-campaign must kill the worker pool, not leak
        processes that keep simulating (the pre-fix behaviour:
        ``shutdown(cancel_futures=True)`` cancels *queued* futures but
        lets running workers finish their 20-second trials).

        The timer delivers a real SIGINT to this process while four
        workers are mid-trial; the assertions are that KeyboardInterrupt
        propagates (no swallowing) and every child is reaped within a
        bounded, much-shorter-than-a-trial window.
        """
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("active_children introspection needs fork")
        before = set(multiprocessing.active_children())
        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                run_ordered(list(range(8)), _slow_square, jobs=4)
        finally:
            timer.cancel()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = [child
                      for child in multiprocessing.active_children()
                      if child not in before and child.is_alive()]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked workers: {leaked}"


SWEEP_KW = dict(processor_counts=[1, 2], seeds=[1987, 1988],
                warmup=1_000, measure=4_000)


class TestByteIdentity:
    def test_sweep_jobs4_byte_identical_to_serial(self):
        serial = run_sweep(jobs=1, **SWEEP_KW)
        parallel = run_sweep(jobs=4, **SWEEP_KW)
        assert json.dumps(serial, indent=2, sort_keys=True) \
            == json.dumps(parallel, indent=2, sort_keys=True)

    def test_sweep_point_grid_order(self):
        document = run_sweep(jobs=2, **SWEEP_KW)
        assert [(p["processors"], p["seed"])
                for p in document["points"]] \
            == [(1, 1987), (1, 1988), (2, 1987), (2, 1988)]

    @pytest.mark.slow
    def test_chaos_report_byte_identical_across_jobs(self):
        kw = dict(quick=True, scenarios=["bus-parity", "cpu-offline"])
        serial = run_campaign(jobs=1, **kw)
        parallel = run_campaign(jobs=2, **kw)
        assert json.dumps(serial.to_dict(), indent=2, sort_keys=True) \
            == json.dumps(parallel.to_dict(), indent=2, sort_keys=True)
        assert serial.render() == parallel.render()

    def test_bench_simulated_content_identical_across_jobs(self):
        """BENCH documents byte-compare after dropping the wall-clock
        measurement fields — those describe the host, and a host
        running N workers is a different host."""
        kw = dict(quick=True, trials=2, scenarios=["exerciser-1cpu"],
                  skip_overhead=True)
        serial = self._normalised(run_suite(jobs=1, **kw))
        parallel = self._normalised(run_suite(jobs=2, **kw))
        assert serial == parallel

    @staticmethod
    def _normalised(document):
        document = json.loads(json.dumps(document, sort_keys=True))
        document.pop("host", None)
        for entry in document["scenarios"].values():
            entry.pop("median_ticks_per_second", None)
            entry.pop("noise", None)
            for trial in entry["trials"]:
                trial.pop("wall_seconds", None)
                trial.pop("ticks_per_second", None)
        return json.dumps(document, sort_keys=True)


class TestSweepValidation:
    def test_rejects_empty_grid(self):
        with pytest.raises(Exception):
            run_sweep(processor_counts=[], seeds=[1987])
        with pytest.raises(Exception):
            run_sweep(processor_counts=[1], seeds=[])

    def test_rejects_bad_processor_count(self):
        with pytest.raises(Exception):
            run_sweep(processor_counts=[0], seeds=[1987])

    def test_sweep_point_worker_is_self_contained(self):
        point = sweep_point((1, "firefly", "microvax", 1987, 1_000, 4_000))
        assert point["processors"] == 1
        assert point["seed"] == 1987
        assert 0.0 < point["bus_load"] <= 1.0
