"""The generated oracles vs the legacy classes vs the live simulator.

Three layers of differential testing pin the DSL pipeline:

1. **Table equivalence** — for every pre-DSL protocol, the measured
   transition table of the DSL-compiled class equals the measured
   table of the frozen legacy class (:mod:`tests.legacy_protocols`)
   *and* the purely generated :func:`repro.protodsl.oracle.line_table`.
2. **Fuzz** — seeded random stimulus walks drive a legacy rig and a
   DSL rig in lockstep; every read value, line state and statistics
   counter must match at every step.
3. **Model-checker cross-validation** — BFS with the pure ``dsl``
   oracle reaches exactly the state set the simulator-backed ``sim``
   oracle reaches, for every registered protocol.
"""

import pytest

from repro.cache.fsm import full_transition_table
from repro.cache.line import LineState
from repro.cache.protocols import PROTOCOL_DEFINITIONS, protocol_by_name
from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream
from repro.protodsl.oracle import line_table
from repro.verify.model import ModelChecker, verify_protocol
from tests.conftest import MiniRig
from tests.legacy_protocols import (
    LegacyBerkeleyProtocol,
    LegacyDragonProtocol,
    LegacyFireflyProtocol,
    LegacyMesiProtocol,
    LegacySynapseProtocol,
    LegacyWriteOnceProtocol,
    LegacyWriteThroughInvalidateProtocol,
)

LEGACY = {
    "firefly": LegacyFireflyProtocol,
    "dragon": LegacyDragonProtocol,
    "mesi": LegacyMesiProtocol,
    "berkeley": LegacyBerkeleyProtocol,
    "synapse": LegacySynapseProtocol,
    "write-once": LegacyWriteOnceProtocol,
    "write-through": LegacyWriteThroughInvalidateProtocol,
}

SEVEN = sorted(LEGACY)
NINE = sorted(PROTOCOL_DEFINITIONS)


class TestTableEquivalence:
    @pytest.mark.parametrize("name", SEVEN)
    def test_dsl_measures_identically_to_legacy(self, name):
        dsl = full_transition_table(name)
        legacy = full_transition_table(name, protocol=LEGACY[name]())
        assert set(dsl) == set(legacy)
        for cell in sorted(dsl, key=str):
            assert dsl[cell] == legacy[cell], f"{name} {cell}"

    @pytest.mark.parametrize("name", NINE)
    def test_generated_line_table_matches_measurement(self, name):
        generated = line_table(PROTOCOL_DEFINITIONS[name])
        measured = full_transition_table(name)
        assert set(generated) == set(measured)
        for cell in sorted(generated, key=str):
            assert generated[cell] == measured[cell], f"{name} {cell}"


def _twin_rigs(name):
    dsl = MiniRig(protocol=name, caches=3, lines=4)
    legacy = MiniRig(protocol=name, caches=3, lines=4)
    legacy.protocol = LEGACY[name]()
    for cache in legacy.caches:
        cache.protocol = legacy.protocol
    return dsl, legacy


def _observable(rig, addresses):
    view = []
    for address in addresses:
        for cache in rig.caches:
            view.append((cache.state_of(address), cache.peek(address)))
        view.append(rig.memory.peek(address))
    for cache in rig.caches:
        view.append(sorted((key, counter.total)
                           for key, counter in cache.stats.items()))
    return view


class TestFuzzLegacyVsDsl:
    """Seeded random walks: bit-identical twins at every step.

    DMA stimuli are exercised for every protocol except write-through:
    its legacy class inherited the base-class DMA result state
    (``SHARED``), which is outside its own vocabulary — the DSL
    definition deliberately normalises that to ``VALID`` (documented
    in docs/PROTOCOL_DSL.md); nothing metric-visible changes.
    """

    @pytest.mark.parametrize("name", SEVEN)
    def test_random_walk_is_bit_identical(self, name):
        rng = RandomStream(1987, f"protodsl-fuzz-{name}")
        dsl, legacy = _twin_rigs(name)
        addresses = (0, 8, 64, 72)  # two indexes, two tags each
        with_dma = name != "write-through"
        for step in range(300):
            address = addresses[rng.randint(0, len(addresses) - 1)]
            cache = rng.randint(0, 2)
            kind = rng.randint(0, 7 if with_dma else 5)
            if kind < 3:
                got = dsl.read(cache, address)
                want = legacy.read(cache, address)
                assert got == want, f"{name} step {step} read"
            elif kind < 6:
                value = 10_000 + step
                partial = rng.randint(0, 3) == 0  # exercise both guards
                dsl.write(cache, address, value, partial=partial)
                legacy.write(cache, address, value, partial=partial)
            elif kind == 6:
                def gen(rig):
                    return rig.caches[0].dma_read(address)
                assert dsl.run(gen(dsl)) == legacy.run(gen(legacy))
            else:
                value = 20_000 + step
                dsl.run(dsl.caches[0].dma_write(address, value))
                legacy.run(legacy.caches[0].dma_write(address, value))
            assert _observable(dsl, addresses) == \
                _observable(legacy, addresses), f"{name} step {step}"
            dsl.check_coherence()


class TestModelCheckerOracles:
    @pytest.mark.parametrize("name", NINE)
    def test_dsl_oracle_reaches_the_sim_oracle_state_set(self, name):
        sim = ModelChecker(name, caches=3, include_dma=True)
        sim_report = sim.explore()
        dsl = ModelChecker(name, caches=3, include_dma=True, oracle="dsl")
        dsl_report = dsl.explore()
        assert sim_report.ok and dsl_report.ok
        assert sim.reachable == dsl.reachable
        assert sim_report.states_explored == dsl_report.states_explored

    def test_dsl_oracle_refuses_non_dsl_protocols(self):
        with pytest.raises(ConfigurationError):
            ModelChecker("firefly", protocol=LegacyFireflyProtocol(),
                         oracle="dsl")

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelChecker("firefly", oracle="tea-leaves")

    @pytest.mark.parametrize("name", ("moesi", "bedrock"))
    def test_new_protocols_verify_clean(self, name):
        report = verify_protocol(name, caches=3, include_dma=True,
                                 oracle="dsl")
        assert report.ok


class TestMoesiBehaviour:
    """Dirty sharing without a memory update (the O state)."""

    def test_owner_supplies_and_memory_stays_stale(self):
        rig = MiniRig(protocol="moesi", caches=2)
        rig.write(0, 40, 7)      # M (silent after RFO)
        assert rig.read(1, 40) == 7
        assert rig.caches[0].state_of(40) is LineState.SHARED_DIRTY
        assert rig.caches[1].state_of(40) is LineState.SHARED
        assert rig.memory.peek(40) != 7  # owner, not memory, holds it
        rig.check_coherence()

    def test_write_to_shared_invalidates_the_owner(self):
        rig = MiniRig(protocol="moesi", caches=2)
        rig.write(0, 40, 7)
        rig.read(1, 40)          # cache0 O, cache1 S
        rig.write(1, 40, 9)      # upgrade invalidates the owner
        assert rig.caches[0].state_of(40) is LineState.INVALID
        assert rig.caches[1].state_of(40) is LineState.DIRTY
        assert rig.read(0, 40) == 9
        rig.check_coherence()


class TestBedrockBehaviour:
    """Directory-style MSI: S-grants and downgrade-with-writeback."""

    def test_read_fill_is_shared_even_without_sharers(self):
        rig = MiniRig(protocol="bedrock", caches=2)
        rig.read(0, 40)
        assert rig.caches[0].state_of(40) is LineState.SHARED

    def test_dirty_reader_downgrade_updates_home_node(self):
        rig = MiniRig(protocol="bedrock", caches=2)
        rig.write(0, 40, 7)      # M after the RFO
        assert rig.caches[0].state_of(40) is LineState.DIRTY
        assert rig.read(1, 40) == 7
        assert rig.caches[0].state_of(40) is LineState.SHARED
        assert rig.memory.peek(40) == 7  # write_back snarfed the data
        rig.check_coherence()

    def test_upgrade_from_shared(self):
        rig = MiniRig(protocol="bedrock", caches=2)
        rig.read(0, 40)
        rig.read(1, 40)
        rig.write(0, 40, 5)
        assert rig.caches[0].stats["invalidations_sent"].total == 1
        assert rig.caches[1].state_of(40) is LineState.INVALID
        assert rig.read(1, 40) == 5
        rig.check_coherence()
