"""Property-based fuzzing of CPU + DMA interleavings.

Random programs mixing per-CPU sequential accesses with DMA block
transfers through the I/O processor's cache.  Invariants checked: the
machine-level coherence invariants, DMA reads observing only values
that were actually written, and final memory agreeing with the last
serialised writer per word.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.qbus import QBus
from repro.common.types import AccessKind, MemRef
from tests.conftest import MiniRig

WORDS = list(range(4096, 4096 + 12))
CPUS = 2

cpu_op = st.tuples(st.integers(min_value=0, max_value=CPUS - 1),
                   st.sampled_from(["read", "write"]),
                   st.sampled_from(WORDS))
dma_op = st.tuples(st.sampled_from(["dma_read", "dma_write"]),
                   st.integers(min_value=0, max_value=len(WORDS) - 4),
                   st.integers(min_value=1, max_value=4))


@given(cpu_program=st.lists(cpu_op, min_size=1, max_size=25),
       dma_program=st.lists(dma_op, min_size=1, max_size=8),
       protocol=st.sampled_from(["firefly", "mesi", "write-through"]))
@settings(max_examples=60, deadline=None)
def test_cpu_and_dma_interleavings_stay_coherent(cpu_program, dma_program,
                                                 protocol):
    rig = MiniRig(protocol=protocol, caches=CPUS, lines=8)
    qbus = QBus(rig.sim, rig.caches[0])
    qbus.map.map_region(0, 4096, words=1024)
    written = {0}
    token_box = [1000]

    per_cpu = {i: [] for i in range(CPUS)}
    for cpu, op, address in cpu_program:
        per_cpu[cpu].append((op, address))

    observed = []

    def cpu_body(cpu, steps):
        def gen():
            for op, address in steps:
                if op == "read":
                    value = yield from rig.caches[cpu].cpu_read(
                        MemRef(address, AccessKind.DATA_READ))
                    observed.append(value)
                else:
                    token_box[0] += 1
                    written.add(token_box[0])
                    yield from rig.caches[cpu].cpu_write(
                        MemRef(address, AccessKind.DATA_WRITE),
                        token_box[0])
        return gen()

    def dma_body():
        for op, offset, nwords in dma_program:
            if op == "dma_read":
                values = yield from qbus.dma_read_block(offset, nwords)
                observed.extend(values)
            else:
                tokens = []
                for _ in range(nwords):
                    token_box[0] += 1
                    written.add(token_box[0])
                    tokens.append(token_box[0])
                yield from qbus.dma_write_block(offset, tokens)

    for cpu, steps in per_cpu.items():
        if steps:
            rig.sim.process(cpu_body(cpu, steps), f"cpu{cpu}")
    rig.sim.process(dma_body(), "dma")
    rig.sim.run()

    rig.check_coherence()
    for value in observed:
        assert value in written
