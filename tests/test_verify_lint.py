"""The simulation-safety linter: every rule, pragma, and exemption."""

import textwrap
from pathlib import Path

from repro.verify.lint import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_in(source: str, path: str = "module.py"):
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


class TestV100Syntax:
    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert [f.rule for f in findings] == ["V100"]
        assert findings[0].line == 1
        assert "syntax error" in findings[0].message


class TestV101UnseededRandom:
    def test_import_random(self):
        assert rules_in("import random\n") == ["V101"]

    def test_import_random_submodule_and_alias(self):
        assert rules_in("import random.shuffle as sh\n") == ["V101"]
        assert rules_in("import numpy.random\n") == ["V101"]

    def test_from_random_import(self):
        assert rules_in("from random import shuffle\n") == ["V101"]

    def test_seeded_rng_module_is_fine(self):
        assert rules_in("from repro.common.rng import RandomStream\n") == []

    def test_rng_module_itself_is_exempt(self):
        assert rules_in("import random\n",
                        "src/repro/common/rng.py") == []


class TestV102WallClock:
    def test_time_time(self):
        assert rules_in("import time\nt = time.time()\n") == ["V102"]

    def test_monotonic_and_perf_counter(self):
        assert rules_in("stamp = time.monotonic()\n") == ["V102"]
        assert rules_in("stamp = time.perf_counter_ns()\n") == ["V102"]

    def test_datetime_now(self):
        assert rules_in("when = datetime.now()\n") == ["V102"]
        assert rules_in("when = datetime.datetime.utcnow()\n") == ["V102"]

    def test_sim_clock_is_fine(self):
        assert rules_in("now = sim.now\n") == []


class TestV103UnorderedIteration:
    def test_for_over_set_display(self):
        assert rules_in("for x in {1, 2, 3}:\n    pass\n") == ["V103"]

    def test_for_over_set_call(self):
        assert rules_in("for x in set(items):\n    pass\n") == ["V103"]
        assert rules_in("for x in frozenset(items):\n    pass\n") == ["V103"]

    def test_comprehension_over_set_union(self):
        source = "out = [x for x in {1} | other]\n"
        assert rules_in(source) == ["V103"]

    def test_sorted_set_is_fine(self):
        assert rules_in("for x in sorted({1, 2}):\n    pass\n") == []

    def test_list_iteration_is_fine(self):
        assert rules_in("for x in [1, 2]:\n    pass\n") == []
        # Arithmetic BinOps are not sets even though Sub matches the op.
        assert rules_in("for x in range(n - 1):\n    pass\n") == []


class TestV104StateBypass:
    def test_direct_line_state_assignment(self):
        source = "line.state = LineState.DIRTY\n"
        assert rules_in(source) == ["V104"]

    def test_unrelated_state_attribute_is_fine(self):
        # Thread/RPC subsystems have their own .state; only values that
        # mention LineState are cache-line transitions.
        assert rules_in("thread.state = ThreadState.READY\n") == []

    def test_cache_layer_is_exempt(self):
        source = "line.state = LineState.DIRTY\n"
        assert lint_source(source, "src/repro/cache/protocols/mesi.py") == []


class TestV105HandWrittenProtocol:
    def test_hand_written_handler_is_flagged(self):
        source = """
        class MyProtocol(CoherenceProtocol):
            def write_hit(self, cache, line, index, offset, value):
                pass
        """
        assert rules_in(source) == ["V105"]

    def test_handler_override_under_dsl_subclass_is_flagged(self):
        source = """
        class Tampered(FireflyProtocol):
            def snoop(self, cache, line, line_address, op, data):
                pass
        """
        assert rules_in(source) == ["V105"]

    def test_finding_names_the_handlers(self):
        source = ("class P(CoherenceProtocol):\n"
                  "    def snoop(self): pass\n"
                  "    def write_miss(self): pass\n")
        findings = lint_source(source, "module.py")
        assert [f.rule for f in findings] == ["V105"]
        assert "snoop, write_miss" in findings[0].message

    def test_dsl_definition_class_is_fine(self):
        source = """
        class FireflyProtocol(DSLProtocol):
            definition = FIREFLY
        """
        assert rules_in(source) == []

    def test_typing_protocol_is_not_flagged(self):
        source = """
        class Snoopable(Protocol):
            def snoop(self, op): ...
        class Other(typing.Protocol):
            def write_hit(self): ...
        """
        assert rules_in(source) == []

    def test_non_handler_methods_are_fine(self):
        source = """
        class MyProtocol(CoherenceProtocol):
            def helper(self):
                pass
        """
        assert rules_in(source) == []

    def test_pragma_escape_on_the_class_line(self):
        source = """
        class Mutant(FireflyProtocol):  # lint: allow(V105)
            def read_miss(self, *a):
                pass
        """
        assert rules_in(source) == []


class TestPragmas:
    def test_allow_pragma_suppresses_on_its_line(self):
        source = "import random  # lint: allow(V101)\n"
        assert rules_in(source) == []

    def test_pragma_lists_multiple_rules(self):
        source = ("line.state = LineState.DIRTY"
                  "  # lint: allow(V101, V104)\n")
        assert rules_in(source) == []

    def test_pragma_only_covers_named_rule(self):
        source = "import random  # lint: allow(V102)\n"
        assert rules_in(source) == ["V101"]

    def test_pragma_only_covers_its_line(self):
        source = "import random  # lint: allow(V101)\nimport random\n"
        findings = lint_source(source, "module.py")
        assert [(f.rule, f.line) for f in findings] == [("V101", 2)]


class TestLintPaths:
    def test_findings_carry_location_and_sort_stably(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\n")
        (tmp_path / "a.py").write_text("t = time.time()\nimport random\n")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert [(f.path, f.line, f.rule) for f in findings] == [
            ("a.py", 1, "V102"), ("a.py", 2, "V101"), ("b.py", 1, "V101")]
        assert "a.py:1:" in str(findings[0])

    def test_pycache_is_skipped(self, tmp_path):
        bad = tmp_path / "__pycache__"
        bad.mkdir()
        (bad / "stale.py").write_text("import random\n")
        assert lint_paths([tmp_path]) == []

    def test_simulator_sources_are_clean(self):
        """The enforced gate: ``src/`` must lint clean."""
        src = REPO_ROOT / "src"
        findings = lint_paths([src], root=REPO_ROOT)
        assert findings == [], "\n".join(str(f) for f in findings)
