"""The shared I1–I4 invariant predicates, across all seven protocols.

These predicates are the single definition both checkers consume
(runtime ``CoherenceChecker`` and static ``ModelChecker``), so they are
tested directly: for every protocol's own state vocabulary, each
invariant must accept the legal configurations and reject the planted
violation — including the stale-Shared allowance in I4 and a
deliberately broken protocol fixture.
"""

import pytest

from repro.cache.fsm import PROTOCOL_STATES
from repro.cache.line import LineState
from repro.cache.protocols import available_protocols, protocol_by_name
from repro.common.errors import CoherenceViolation
from repro.verify.invariants import (
    INVARIANTS,
    check_word,
    i1_single_writer,
    i2_copy_agreement,
    i3_memory_currency,
    i4_no_silent_sharing,
    iter_violations,
)
from tests.conftest import MiniRig

ALL = sorted(available_protocols())


def states_of(protocol):
    return PROTOCOL_STATES[protocol]


def dirty_states_of(protocol):
    return [s for s in states_of(protocol) if s.is_dirty]


def clean_states_of(protocol):
    return [s for s in states_of(protocol) if not s.is_dirty]


class TestI1SingleWriter:
    @pytest.mark.parametrize("protocol", ALL)
    def test_one_dirty_holder_is_legal(self, protocol):
        for dirty in dirty_states_of(protocol):
            copies = [(0, dirty, 7)]
            assert i1_single_writer(copies) is None

    @pytest.mark.parametrize("protocol", ALL)
    def test_two_dirty_holders_rejected(self, protocol):
        dirty = dirty_states_of(protocol)
        if not dirty:
            pytest.skip(f"{protocol} has no dirty state (write-through)")
        copies = [(0, dirty[0], 7), (1, dirty[-1], 7)]
        assert "dirty" in i1_single_writer(copies)

    @pytest.mark.parametrize("protocol", ALL)
    def test_clean_sharers_are_legal(self, protocol):
        clean = clean_states_of(protocol)
        copies = [(i, clean[0], 7) for i in range(3)]
        assert i1_single_writer(copies) is None


class TestI2CopyAgreement:
    @pytest.mark.parametrize("protocol", ALL)
    def test_agreeing_copies_pass(self, protocol):
        clean = clean_states_of(protocol)[0]
        copies = [(0, clean, 42), (1, clean, 42)]
        assert i2_copy_agreement(copies) is None

    @pytest.mark.parametrize("protocol", ALL)
    def test_disagreeing_copies_rejected(self, protocol):
        clean = clean_states_of(protocol)[0]
        copies = [(0, clean, 42), (1, clean, 43)]
        assert "disagree" in i2_copy_agreement(copies)


class TestI3MemoryCurrency:
    @pytest.mark.parametrize("protocol", ALL)
    def test_clean_copy_matching_memory_passes(self, protocol):
        clean = clean_states_of(protocol)[0]
        assert i3_memory_currency([(0, clean, 5)], 5) is None

    @pytest.mark.parametrize("protocol", ALL)
    def test_clean_copy_diverging_from_memory_rejected(self, protocol):
        clean = clean_states_of(protocol)[0]
        assert "memory" in i3_memory_currency([(0, clean, 5)], 6)

    @pytest.mark.parametrize("protocol", ALL)
    def test_dirty_copy_may_diverge_from_memory(self, protocol):
        dirty = dirty_states_of(protocol)
        if not dirty:
            pytest.skip(f"{protocol} has no dirty state")
        assert i3_memory_currency([(0, dirty[0], 5)], 6) is None

    def test_no_copies_is_vacuously_current(self):
        assert i3_memory_currency([], 6) is None


class TestI4SilentSharing:
    @pytest.mark.parametrize("protocol", ALL)
    def test_silent_state_alone_is_legal(self, protocol):
        silent = sorted(protocol_by_name(protocol).silent_write_states,
                        key=lambda s: s.value)
        for state in silent:
            assert i4_no_silent_sharing(
                [(0, state, 7)],
                protocol_by_name(protocol).silent_write_states) is None

    @pytest.mark.parametrize("protocol", ALL)
    def test_silent_state_with_other_holder_rejected(self, protocol):
        instance = protocol_by_name(protocol)
        silent = sorted(instance.silent_write_states,
                        key=lambda s: s.value)
        if not silent:
            pytest.skip(f"{protocol} has no silent-write state")
        other = clean_states_of(protocol)[0]
        detail = i4_no_silent_sharing(
            [(0, silent[0], 7), (1, other, 7)], instance.silent_write_states)
        assert "silent-write" in detail

    def test_stale_shared_allowance(self):
        """A lone SHARED tag may be stale-true — I4's explicit carve-out.

        The Firefly pays at most one redundant write-through for it, so
        a single holder in SHARED (a non-silent state) must pass even
        though no other cache holds the line.
        """
        firefly = protocol_by_name("firefly")
        copies = [(0, LineState.SHARED, 7)]
        assert i4_no_silent_sharing(copies,
                                    firefly.silent_write_states) is None
        assert check_word(0, copies, 7, firefly.silent_write_states) is None


class TestCheckWord:
    def test_reports_first_invariant_in_order(self):
        firefly = protocol_by_name("firefly")
        # Breaks I1 (two dirty), I2 (disagree) and I4 (silent sharing)
        # simultaneously; I1 must win, matching the runtime checker's
        # historical reporting order.
        copies = [(0, LineState.DIRTY, 1), (1, LineState.DIRTY, 2)]
        violation = check_word(0x40, copies, 0, firefly.silent_write_states)
        assert violation.invariant == "I1"
        assert violation.address == 0x40
        assert "0x40" in str(violation)

    def test_iter_violations_lists_every_breakage(self):
        firefly = protocol_by_name("firefly")
        copies = [(0, LineState.DIRTY, 1), (1, LineState.DIRTY, 2)]
        broken = [inv for inv, _ in iter_violations(
            copies, 0, firefly.silent_write_states)]
        assert broken == ["I1", "I2", "I4"]

    def test_invariant_registry(self):
        assert INVARIANTS == ("I1", "I2", "I3", "I4")


class _CorruptingFirefly:
    """Deliberately broken fixture: plants one violation per invariant.

    Each method drives a healthy rig into a state breaking exactly the
    named invariant, behind the protocol's back — the runtime checker
    (which consumes the shared predicates) must reject all four.
    """

    @staticmethod
    def break_i1(rig):
        rig.read(0, 10)
        rig.read(1, 10)
        for i in (0, 1):
            line, _, _, _ = rig.caches[i].lookup(10)
            line.state = LineState.DIRTY  # lint: allow(V104)

    @staticmethod
    def break_i2(rig):
        rig.read(0, 10)
        rig.read(1, 10)
        line, _, _, offset = rig.caches[1].lookup(10)
        line.data[offset] = 999

    @staticmethod
    def break_i3(rig):
        rig.read(0, 10)
        rig.memory.poke(10, 777)

    @staticmethod
    def break_i4(rig):
        rig.read(0, 10)
        rig.read(1, 10)
        line, _, _, _ = rig.caches[0].lookup(10)
        line.state = LineState.VALID  # lint: allow(V104)


class TestBrokenFixtureRejected:
    @pytest.mark.parametrize("invariant", ["i1", "i2", "i3", "i4"])
    def test_each_planted_violation_is_caught(self, invariant):
        rig = MiniRig()
        getattr(_CorruptingFirefly, f"break_{invariant}")(rig)
        with pytest.raises(CoherenceViolation):
            rig.check_coherence()

    def test_unbroken_rig_passes(self):
        rig = MiniRig()
        rig.write(0, 10, 5)
        rig.read(1, 10)
        rig.check_coherence()
