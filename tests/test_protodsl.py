"""The protocol DSL: guard checker rules, mutations, and the compiler.

The mutation tests are the headline: each one corrupts a known-good
definition in a specific way (drop a guard, overlap two guards, orphan
a state, lie about a fact) and asserts the guard checker names the
**exact (state, stimulus) cell** of the defect — not merely "something
is wrong".
"""

import dataclasses

import pytest

from repro.cache.line import LineState
from repro.cache.protocols import (
    PROTOCOL_DEFINITIONS,
    ProtocolDefinitionError,
    definition_of,
    protocol_by_name,
)
from repro.cache.protocols.dsl import DSLProtocol
from repro.cache.protocols.firefly import FIREFLY
from repro.cache.protocols.mesi import MESI
from repro.common.errors import ConfigurationError
from repro.common.types import BusOp
from repro.protodsl import (
    GUARD_ALWAYS,
    AcquireThenWrite,
    SilentWrite,
    SnoopRule,
    Stay,
    WriteHitRule,
    WriteMissRule,
    WriteThrough,
    check_guards,
)

V = LineState.VALID
D = LineState.DIRTY
S = LineState.SHARED
SD = LineState.SHARED_DIRTY


def findings_of(defn):
    return [(f.rule, f.state, f.stimulus) for f in check_guards(defn)]


class TestCleanDefinitions:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_DEFINITIONS))
    def test_every_registered_definition_is_clean(self, name):
        assert check_guards(PROTOCOL_DEFINITIONS[name]) == []

    def test_registry_covers_nine_protocols(self):
        assert len(PROTOCOL_DEFINITIONS) == 9
        assert {"moesi", "bedrock"} <= set(PROTOCOL_DEFINITIONS)


class TestMutationDropGuard:
    """Deleting a rule must name the exact uncovered cell (V200)."""

    def test_dropped_write_hit_rule(self):
        mutant = dataclasses.replace(
            FIREFLY,
            write_hit=tuple(rule for rule in FIREFLY.write_hit
                            if S not in rule.states))
        findings = findings_of(mutant)
        assert ("V200", "S", "P-write hit") in findings
        assert ("V200", "SD", "P-write hit") in findings
        # The surviving {V, D} rule's cells stay clean.
        assert ("V200", "V", "P-write hit") not in findings

    def test_dropped_snoop_rule(self):
        mutant = dataclasses.replace(
            FIREFLY,
            snoop=tuple(rule for rule in FIREFLY.snoop
                        if not (rule.op is BusOp.MREAD
                                and rule.states == frozenset({D}))))
        findings = findings_of(mutant)
        assert ("V200", "D", "M-read") in findings
        assert all(state == "D" for rule, state, stim in findings
                   if rule == "V200")

    def test_dropped_write_miss_guard(self):
        mutant = dataclasses.replace(
            FIREFLY,
            write_miss=tuple(
                rule for rule in FIREFLY.write_miss
                if rule.guard == "aligned-longword"))
        findings = check_guards(mutant)
        cells = [(f.rule, f.state, f.stimulus) for f in findings]
        assert ("V200", "I", "P-write miss") in cells
        # The counterexample names the guard-variable assignment.
        assert any("aligned_longword=False" in f.message for f in findings)


class TestMutationOverlapGuards:
    """Two rules covering one cell must be flagged there (V201)."""

    def test_overlapping_write_hit_rules(self):
        extra = WriteHitRule(frozenset({V}), SilentWrite(next_state=D))
        mutant = dataclasses.replace(FIREFLY,
                                     write_hit=FIREFLY.write_hit + (extra,))
        findings = findings_of(mutant)
        assert ("V201", "V", "P-write hit") in findings
        assert ("V201", "D", "P-write hit") not in findings

    def test_overlapping_snoop_rules(self):
        extra = SnoopRule(BusOp.MREAD, frozenset({V}), Stay())
        mutant = dataclasses.replace(FIREFLY, snoop=FIREFLY.snoop + (extra,))
        findings = findings_of(mutant)
        assert ("V201", "V", "M-read") in findings

    def test_overlapping_write_miss_guards(self):
        extra = WriteMissRule(GUARD_ALWAYS,
                              FIREFLY.write_miss[0].action)
        mutant = dataclasses.replace(FIREFLY,
                                     write_miss=FIREFLY.write_miss + (extra,))
        findings = check_guards(mutant)
        assert any(f.rule == "V201" and f.stimulus == "P-write miss"
                   and "aligned_longword=True" in f.message
                   for f in findings)


class TestMutationOrphanState:
    """A declared state no rule can reach is dead vocabulary (V202)."""

    def test_orphaned_state(self):
        # Declare SHARED_DIRTY in MESI's vocabulary and give it rules,
        # but let nothing transition *into* it.
        mutant = dataclasses.replace(
            MESI,
            states=MESI.states + (SD,),
            write_hit=MESI.write_hit + (
                WriteHitRule(frozenset({SD}), SilentWrite()),),
            snoop=tuple(
                dataclasses.replace(rule, states=rule.states | {SD})
                for rule in MESI.snoop),
        )
        findings = findings_of(mutant)
        assert ("V202", "SD", None) in findings
        # Every *other* finding (if any) also points at the orphan; the
        # original states stay clean.
        assert all(state == "SD" for _, state, _ in findings)


class TestMutationFactDrift:
    """Declared facts that contradict the rules are V203 cells."""

    def test_undeclared_silent_state(self):
        mutant = dataclasses.replace(
            FIREFLY, silent_write_states=frozenset({V}))
        findings = findings_of(mutant)
        # DIRTY hits are silent by rule but missing from the fact.
        assert ("V203", "D", "P-write hit") in findings

    def test_silent_fact_on_a_bus_writing_state(self):
        mutant = dataclasses.replace(
            FIREFLY, silent_write_states=frozenset({V, D, S}))
        findings = check_guards(mutant)
        assert any(f.rule == "V203" and f.state == "S"
                   and "WriteThrough" in f.message for f in findings)

    def test_silent_result_disagreement(self):
        mutant = dataclasses.replace(FIREFLY, silent_write_result=V)
        findings = check_guards(mutant)
        assert any(f.rule == "V203" and f.state == "V"
                   and "fast path would diverge" in f.message
                   for f in findings)

    def test_dma_leak_bug_class(self):
        # A silent-writable dma_shared_state reintroduces the PR-2 DMA
        # leak: sharers survive the DMA write, then a local write skips
        # the bus.
        mutant = dataclasses.replace(FIREFLY, dma_shared_state=D)
        findings = check_guards(mutant)
        dma = [f for f in findings
               if f.rule == "V203" and f.stimulus == "DMA-write"]
        assert any(f.state == "D" and "DMA-leak" in f.message for f in dma)


class TestMutationVocabulary:
    def test_undeclared_state_reference(self):
        extra = SnoopRule(BusOp.MREAD_EX, frozenset({SD}), Stay())
        mutant = dataclasses.replace(MESI, snoop=MESI.snoop + (extra,))
        findings = findings_of(mutant)
        assert ("V204", "SD", "M-read-ex") in findings

    def test_declaring_invalid_is_rejected(self):
        mutant = dataclasses.replace(MESI,
                                     states=MESI.states + (LineState.INVALID,))
        findings = findings_of(mutant)
        assert ("V204", "I", None) in findings


class TestFindingFormat:
    def test_str_names_protocol_cell_and_rule(self):
        mutant = dataclasses.replace(
            FIREFLY,
            write_hit=tuple(rule for rule in FIREFLY.write_hit
                            if S not in rule.states))
        finding = check_guards(mutant)[0]
        text = str(finding)
        assert text.startswith("firefly (state S, P-write hit): V200")

    def test_findings_are_sorted_and_stable(self):
        mutant = dataclasses.replace(FIREFLY, write_hit=(), snoop=())
        first = check_guards(mutant)
        second = check_guards(mutant)
        assert first == second
        keys = [f.sort_key() for f in first]
        assert keys == sorted(keys)


class TestCompiler:
    """__init_subclass__ refuses defective definitions outright."""

    def test_defective_definition_fails_class_creation(self):
        mutant = dataclasses.replace(
            FIREFLY, name="firefly-broken",
            write_hit=FIREFLY.write_hit[:1])
        with pytest.raises(ProtocolDefinitionError) as excinfo:
            class Broken(DSLProtocol):
                definition = mutant
        assert excinfo.value.findings
        assert "P-write hit" in str(excinfo.value)

    def test_error_is_a_configuration_error(self):
        assert issubclass(ProtocolDefinitionError, ConfigurationError)

    def test_compiled_class_carries_generated_facts(self):
        protocol = protocol_by_name("firefly")
        facts = protocol.facts
        assert facts.silent_write_states == frozenset({V, D})
        assert facts.silent_write_result is D
        assert protocol.silent_write_states == facts.silent_write_states
        assert protocol.resident_after_dma_write(True) is S
        assert protocol.resident_after_dma_write(False) is V

    def test_definition_of_rejects_non_dsl_protocols(self):
        from tests.legacy_protocols import LegacyFireflyProtocol
        with pytest.raises(ConfigurationError):
            definition_of(LegacyFireflyProtocol())

    def test_definition_of_rejects_handler_overrides(self):
        from repro.cache.protocols import FireflyProtocol

        class Tampered(FireflyProtocol):
            def snoop(self, *args, **kwargs):  # lint: allow(V105)
                return super().snoop(*args, **kwargs)

        with pytest.raises(ConfigurationError):
            definition_of(Tampered())

    def test_definition_of_accepts_registry_protocols(self):
        for name in sorted(PROTOCOL_DEFINITIONS):
            assert definition_of(protocol_by_name(name)) is \
                PROTOCOL_DEFINITIONS[name]


class TestMetricPins:
    """The DSL rewrite must not drift a single counter (spot check;
    the full pins live in test_fastpath.py and test_fsm.py)."""

    def test_write_through_counters_survive(self):
        from tests.conftest import make_rig
        rig = make_rig("firefly")
        rig.read(0, 40)
        rig.read(1, 40)       # now shared
        rig.write(0, 40, 9)   # shared hit -> write-through
        stats = rig.caches[0].stats
        assert stats["write_throughs"].total == 1
