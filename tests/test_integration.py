"""End-to-end integration: whole machines under combined load."""

import pytest

from repro.io import DisplayCommand, IoSubsystem
from repro.system import (
    CoherenceChecker,
    FireflyConfig,
    FireflyMachine,
    Generation,
)
from repro.topaz import Compute, DeviceCall, Fork, Join, Lock, Unlock, Write
from repro.topaz.kernel import TopazKernel


class TestCpuPlusDma:
    def test_cpus_and_dma_stay_coherent(self):
        """Synthetic CPUs running while DMA hammers overlapping memory."""
        machine = FireflyMachine(FireflyConfig(processors=3,
                                               io_enabled=True))
        io = IoSubsystem(machine)
        base, qbus_addr = io.alloc(256, "dma target")

        def dma_hammer():
            for round_number in range(20):
                values = [round_number * 100 + i for i in range(16)]
                yield from machine.qbus.dma_write_block(qbus_addr, values)
                got = yield from machine.qbus.dma_read_block(qbus_addr, 16)
                assert got == values

        machine.start()
        proc = machine.sim.process(dma_hammer(), "dma")
        machine.sim.run_until(400_000)
        assert proc.done
        CoherenceChecker(machine).check()

    def test_display_runs_under_cpu_load(self):
        machine = FireflyMachine(FireflyConfig(processors=3,
                                               io_enabled=True))
        io = IoSubsystem(machine)
        for i in range(8):
            io.mdc_queue.enqueue_direct(machine.memory,
                                        DisplayCommand.FILL_RECT,
                                        (i * 64, 0, 64, 64))
        io.start()
        machine.start()
        machine.sim.run_until(500_000)
        assert io.mdc.stats["fills"].total == 8
        CoherenceChecker(machine).check()


class TestTopazWithIo:
    def test_threads_doing_disk_io_and_locks(self):
        kernel = TopazKernel.build(processors=3, threads_hint=12,
                                   io_enabled=True, seed=41)
        io = IoSubsystem(kernel.machine)
        mutex = kernel.mutex("disk_lock")
        progress = kernel.alloc_shared(1, "progress")
        _, buffer_qbus = io.alloc(256, "buf")

        def io_worker(lbn):
            for round_number in range(3):
                yield Lock(mutex)
                yield DeviceCall(io.disk.write_blocks(lbn, 1, buffer_qbus),
                                 label="write")
                yield Unlock(mutex)
                yield Compute(50)
            return lbn

        def main():
            kids = []
            for i in range(4):
                kid = yield Fork(io_worker, 100 + i * 10)
                kids.append(kid)
            done = 0
            for kid in kids:
                yield Join(kid)
                done += 1
                yield Write(progress, done)
            return done

        root = kernel.fork(main)
        io.start()
        kernel.machine.start()
        deadline = 60_000_000
        while kernel.sim.now < deadline and not root.done:
            kernel.sim.run_until(kernel.sim.now + 100_000)
        assert root.result == 4
        assert kernel._coherent_value(progress) == 4
        CoherenceChecker(kernel.machine).check()


class TestSymmetricNetworkAbstraction:
    def test_any_cpu_can_drive_the_ethernet(self):
        """Paper §3 footnote 2: 'Any processor can enqueue work for the
        network and then initiate the transfer by a specialized
        interprocessor interrupt to the I/O processor.'  A thread that
        the scheduler keeps away from CPU 0 still transmits frames —
        and the wake path delivers IPIs over the sideband wires."""
        kernel = TopazKernel.build(processors=3, threads_hint=8,
                                   io_enabled=True, seed=71)
        io = IoSubsystem(kernel.machine)
        _, buffer_qbus = io.alloc(512, "net buffer")

        def hog():
            # Pin CPU-0-ish work so the sender lands elsewhere.
            while True:
                yield Compute(500)

        def sender():
            for _ in range(3):
                yield Compute(50)
                yield DeviceCall(
                    io.ethernet.transmit_from(buffer_qbus, 800),
                    label="net-tx")
            return "sent"

        kernel.fork(hog, name="hog")
        sender_thread = kernel.fork(sender, name="sender")
        kernel.machine.start()
        deadline = 10_000_000
        while kernel.sim.now < deadline and not sender_thread.done:
            kernel.sim.run_until(kernel.sim.now + 50_000)
        assert sender_thread.result == "sent"
        assert io.ethernet.stats["tx_frames"].total == 3
        assert kernel.machine.mbus.stats.totals().get("ipi", 0) > 0
        CoherenceChecker(kernel.machine).check()


class TestDeterminism:
    def test_exerciser_is_bit_deterministic(self):
        from repro.workloads.threads_exerciser import build_exerciser

        def run():
            kernel = build_exerciser(3, seed=1987)
            metrics = kernel.run(warmup_cycles=50_000,
                                 measure_cycles=100_000)
            return (metrics.bus_ops, metrics.bus_writes_mshared,
                    kernel.total_migrations,
                    tuple(c.instructions for c in metrics.cpus))

        assert run() == run()


class TestGenerations:
    def test_cvax_faster_than_microvax_same_workload(self):
        """Ablation A1's core claim, smoke-sized: the CVAX machine
        executes more instructions in the same simulated time."""
        def instructions(generation):
            machine = FireflyMachine(FireflyConfig(
                processors=2, generation=generation, seed=5))
            metrics = machine.run(warmup_cycles=50_000,
                                  measure_cycles=200_000)
            return sum(c.instructions for c in metrics.cpus)

        micro = instructions(Generation.MICROVAX)
        cvax = instructions(Generation.CVAX)
        assert 1.8 < cvax / micro < 2.9

    def test_seven_processor_machine(self):
        """'We have built a few seven-processor systems.'"""
        machine = FireflyMachine(FireflyConfig(processors=7))
        metrics = machine.run(warmup_cycles=50_000, measure_cycles=100_000)
        assert metrics.processors == 7
        assert metrics.bus_load > 0.3
        CoherenceChecker(machine).check()

    def test_full_128mb_cvax_machine(self):
        machine = FireflyMachine(FireflyConfig(
            generation=Generation.CVAX, processors=4,
            memory_megabytes=128))
        assert machine.memory.total_megabytes == pytest.approx(128)
        machine.run(warmup_cycles=20_000, measure_cycles=50_000)
        CoherenceChecker(machine).check()


class TestLongRunStability:
    def test_extended_run_remains_coherent_and_live(self):
        machine = FireflyMachine(FireflyConfig(processors=4, seed=99))
        machine.start()
        for slice_end in range(200_000, 1_200_001, 200_000):
            machine.sim.run_until(slice_end)
            CoherenceChecker(machine).check()
        for cpu in machine.cpus:
            assert cpu.stats["instructions"].total > 10_000
