"""The engine contract: wheel and heap are indistinguishable in-sim.

The event wheel exists purely for host throughput.  These tests pin
the contract from docs/PERFORMANCE.md: for any schedule — adversarial
ones included — the wheel dispatches events in exactly the heap's
``(time, seq)`` order, so every simulated metric and every telemetry
event is identical; and the bench/campaign plumbing that selects an
engine never changes a simulated byte at any job count.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import (ENGINES, WHEEL_SIZE, Simulator,
                                 default_engine, set_default_engine)
from repro.system import FireflyConfig, FireflyMachine
from repro.telemetry import telemetry_for_machine

#: Adversarial delay palette: same-tick ties (0 twice), dense small
#: delays, the wheel-size boundary itself, and far-future overflow.
DELAYS = (0, 0, 1, 1, 2, 3, 7, 64, 1023, 1024, 1500, 4096)

SEEDS = range(1987, 2002)


def _schedule_log(engine: str, seed: int, wheel_size=None,
                  until=None) -> list:
    """Dispatch log of one randomized adversarial schedule.

    The schedule is generated *outside* the simulation from ``seed``,
    so both engines replay the identical script: worker processes
    cycling through pre-drawn delay plans (including zero-delay
    self-reschedules and same-tick ties) plus bare callback chains
    whose offsets cross the wheel's horizon repeatedly.
    """
    kwargs = {"engine": engine}
    if wheel_size is not None:
        kwargs["wheel_size"] = wheel_size
    sim = Simulator(**kwargs)
    rng = random.Random(seed)
    plans = [[rng.choice(DELAYS) for _ in range(30)] for _ in range(12)]
    chains = [[rng.choice(DELAYS) for _ in range(10)] for _ in range(6)]
    log = []

    def worker(wid, plan):
        for delay in plan:
            yield sim.timeout(delay)
            log.append(("proc", wid, sim.now))

    for wid, plan in enumerate(plans):
        sim.process(worker(wid, plan), name=f"w{wid}")

    def start_chain(cid, offsets):
        pending = iter(offsets)

        def fire():
            log.append(("call", cid, sim.now))
            nxt = next(pending, None)
            if nxt is not None:
                sim.call_at(nxt, fire)

        sim.call_at(next(pending), fire)

    for cid, offsets in enumerate(chains):
        start_chain(cid, offsets)

    if until is None:
        sim.run()
    else:
        sim.run_until(until)
        log.append(("peek", sim.peek(), sim.now))
        sim.run()
    return log


class TestPopOrderEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_wheel_matches_heap(self, seed):
        assert _schedule_log("wheel", seed) == _schedule_log("heap", seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tiny_wheel_forces_overflow_churn(self, seed):
        """wheel_size=4 pushes almost every delay through the overflow
        heap and its migration path; order must still be exact."""
        assert (_schedule_log("wheel", seed, wheel_size=4)
                == _schedule_log("heap", seed))

    @pytest.mark.parametrize("seed", (1987, 1993))
    def test_run_until_then_run(self, seed):
        """Partial drains and peek() agree mid-schedule too."""
        assert (_schedule_log("wheel", seed, until=900)
                == _schedule_log("heap", seed, until=900))

    def test_zero_delay_storm(self):
        """Zero-delay self-reschedules dispatch in schedule order
        within one tick, identically on both engines."""
        logs = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            log = []

            def storm(wid, sim=sim, log=log):
                for hop in range(50):
                    yield sim.timeout(0)
                    log.append((wid, hop, sim.now))

            for wid in range(8):
                sim.process(storm(wid), name=f"s{wid}")
            sim.run()
            logs[engine] = log
        assert logs["wheel"] == logs["heap"]
        assert all(entry[2] == 0 for entry in logs["wheel"])

    def test_lone_far_future_sleeper_skips_rotation(self):
        """An empty wheel jumps straight to the overflow head."""
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            fired = []
            sim.call_at(10 * WHEEL_SIZE, lambda: fired.append(sim.now))
            sim.run()
            assert fired == [10 * WHEEL_SIZE]
            assert sim.now == 10 * WHEEL_SIZE


def _run_machine(engine: str, seed: int = 1987,
                 with_telemetry: bool = False):
    previous = set_default_engine(engine)
    try:
        machine = FireflyMachine(FireflyConfig(processors=2, seed=seed))
        assert machine.sim.engine == engine
        hub = None
        if with_telemetry:
            hub, sampler = telemetry_for_machine(machine)
            sampler.start()
        metrics = machine.run(warmup_cycles=2_000, measure_cycles=10_000)
    finally:
        set_default_engine(previous)
    return metrics.to_dict(), (hub.emitted if hub is not None else None)


class TestModelEquivalence:
    def test_exerciser_metrics_identical(self):
        wheel, _ = _run_machine("wheel")
        heap, _ = _run_machine("heap")
        assert wheel == heap

    def test_telemetry_event_counts_identical(self):
        wheel_metrics, wheel_events = _run_machine("wheel",
                                                   with_telemetry=True)
        heap_metrics, heap_events = _run_machine("heap",
                                                 with_telemetry=True)
        assert wheel_metrics == heap_metrics
        assert wheel_events == heap_events
        assert wheel_events > 0

    def test_core_microbench_metrics_identical(self):
        from repro.observatory.bench import SCENARIOS

        scenario = next(s for s in SCENARIOS
                        if s.name == "core-microbench")
        results = {}
        for engine in ENGINES:
            previous = set_default_engine(engine)
            try:
                results[engine] = scenario.runner(
                    scenario, scenario.quick, 1987)
            finally:
                set_default_engine(previous)
        assert results["wheel"] == results["heap"]
        cycles, metrics = results["wheel"]
        assert cycles == scenario.quick.total
        assert metrics["events_scheduled"] > 0
        assert metrics["grants"] > 0


def _simulated_view(document):
    """A BENCH document with every host/wall-clock field stripped."""
    return {
        name: {
            "metrics": entry["metrics"],
            "trials": [(t["seed"], t["cycles"]) for t in entry["trials"]],
        }
        for name, entry in document["scenarios"].items()
    }


class TestBenchEngineAxis:
    def test_engine_and_jobs_never_change_simulated_fields(self):
        """wheel@jobs=1 vs heap@jobs=4: identical simulated content."""
        from repro.observatory.bench import run_suite

        serial = run_suite(quick=True, trials=2,
                           scenarios=["core-microbench"],
                           skip_overhead=True, jobs=1, engine="wheel")
        fanned = run_suite(quick=True, trials=2,
                           scenarios=["core-microbench"],
                           skip_overhead=True, jobs=4, engine="heap")
        assert serial["engine"] == "wheel"
        assert fanned["engine"] == "heap"
        assert _simulated_view(serial) == _simulated_view(fanned)

    def test_run_suite_restores_ambient_default(self):
        from repro.observatory.bench import run_suite

        before = default_engine()
        run_suite(quick=True, trials=1, scenarios=["core-microbench"],
                  skip_overhead=True, engine="heap")
        assert default_engine() == before


class TestEngineConfiguration:
    def test_default_is_wheel(self):
        assert default_engine() == "wheel"
        assert Simulator().engine == "wheel"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event engine"):
            Simulator(engine="splay")
        with pytest.raises(ConfigurationError, match="unknown event engine"):
            set_default_engine("splay")

    def test_set_default_returns_previous(self):
        previous = set_default_engine("heap")
        try:
            assert previous == "wheel"
            assert Simulator().engine == "heap"
        finally:
            set_default_engine(previous)

    def test_wheel_size_must_be_power_of_two(self):
        for bad in (0, 1, 3, 1000):
            with pytest.raises(ConfigurationError, match="power of two"):
                Simulator(engine="wheel", wheel_size=bad)


class TestSchedulingErrorContext:
    def test_negative_timeout_names_process_and_now(self):
        sim = Simulator()

        def offender():
            yield sim.timeout(5)
            yield sim.timeout(-3)

        sim.process(offender(), name="culprit")
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "-3" in message
        assert "now=5" in message
        assert "'culprit'" in message

    def test_negative_call_at_names_delay_and_now(self):
        sim = Simulator()
        sim.call_at(7, lambda: None)
        sim.run()
        with pytest.raises(SimulationError) as excinfo:
            sim.call_at(-2, lambda: None)
        message = str(excinfo.value)
        assert "-2" in message
        assert "now=7" in message
