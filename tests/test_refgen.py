"""Unit tests for the synthetic reference generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream
from repro.common.types import AccessKind
from repro.processor.cpu import InstructionBundle
from repro.processor.mix import VAX_MIX, ReferenceMix
from repro.processor.refgen import (
    RegionLayout,
    SharedRegion,
    SyntheticReferenceSource,
    WorkloadShape,
    default_layout,
)


def make_source(seed=1, shape=None, shared=None, mix=VAX_MIX, limit=None):
    return SyntheticReferenceSource(
        rng=RandomStream(seed, "src"),
        layout=default_layout(0),
        shared=shared,
        shape=shape or WorkloadShape(shared_write_fraction=0.0,
                                     shared_read_fraction=0.0),
        mix=mix,
        instruction_limit=limit)


def collect(source, n):
    bundles = []
    for _ in range(n):
        item = source.next_instruction(None)
        if item is None:
            break
        bundles.append(item)
    return bundles


class TestMixRates:
    def test_reference_mix_is_exact(self):
        """The long-run mix must be the paper's 0.95/0.78/0.40."""
        source = make_source()
        counts = {kind: 0 for kind in AccessKind}
        n = 2000
        for bundle in collect(source, n):
            for ref in bundle.refs:
                counts[ref.kind] += 1
        assert abs(counts[AccessKind.INSTRUCTION_READ] - 0.95 * n) <= 2
        assert abs(counts[AccessKind.DATA_READ] - 0.78 * n) <= 2
        assert abs(counts[AccessKind.DATA_WRITE] - 0.40 * n) <= 2

    def test_custom_mix(self):
        mix = ReferenceMix(1.0, 0.5, 0.25)
        source = make_source(mix=mix)
        total = sum(len(b.refs) for b in collect(source, 1000))
        assert abs(total - 1750) <= 3

    def test_mix_properties(self):
        assert VAX_MIX.total == pytest.approx(2.13)
        assert VAX_MIX.read_write_ratio == pytest.approx(4.325)
        with pytest.raises(ConfigurationError):
            ReferenceMix(-0.1, 0, 0)


class TestInstructionStream:
    def test_code_addresses_stay_in_region(self):
        source = make_source()
        layout = source.layout
        for bundle in collect(source, 500):
            for ref in bundle.refs:
                if ref.kind is AccessKind.INSTRUCTION_READ:
                    assert layout.code_base <= ref.address \
                        < layout.code_base + layout.code_words

    def test_loops_reuse_addresses(self):
        """A loop-structured stream revisits instruction words."""
        source = make_source()
        seen = set()
        revisits = 0
        for bundle in collect(source, 500):
            for ref in bundle.refs:
                if ref.kind is AccessKind.INSTRUCTION_READ:
                    if ref.address in seen:
                        revisits += 1
                    seen.add(ref.address)
        assert revisits > 200  # most fetches are loop re-walks

    def test_jumps_marked(self):
        source = make_source()
        jumps = sum(1 for b in collect(source, 500) if b.is_jump)
        # One jump per loop_length=40 instructions, roughly.
        assert 5 <= jumps <= 30

    def test_prefetch_addresses_follow_pc(self):
        source = make_source()
        bundle = source.next_instruction(None)
        assert len(bundle.prefetch_addresses) == 3


class TestDataStreams:
    def test_data_addresses_stay_in_heap(self):
        source = make_source()
        layout = source.layout
        for bundle in collect(source, 500):
            for ref in bundle.refs:
                if ref.kind is not AccessKind.INSTRUCTION_READ:
                    assert layout.heap_base <= ref.address \
                        < layout.heap_base + layout.heap_words

    def test_partial_write_fraction(self):
        shape = WorkloadShape(shared_write_fraction=0.0,
                              shared_read_fraction=0.0,
                              partial_write_fraction=0.5)
        source = make_source(shape=shape)
        writes = partials = 0
        for bundle in collect(source, 2000):
            for ref in bundle.refs:
                if ref.kind is AccessKind.DATA_WRITE:
                    writes += 1
                    partials += ref.partial
        assert 0.4 < partials / writes < 0.6

    def test_shared_fractions(self):
        shared = SharedRegion(10_000_000, 128)
        shape = WorkloadShape(shared_write_fraction=0.25,
                              shared_read_fraction=0.10)
        source = make_source(shape=shape, shared=shared)
        writes = shared_writes = reads = shared_reads = 0
        for bundle in collect(source, 4000):
            for ref in bundle.refs:
                if ref.kind is AccessKind.DATA_WRITE:
                    writes += 1
                    shared_writes += shared.contains(ref.address)
                elif ref.kind is AccessKind.DATA_READ:
                    reads += 1
                    shared_reads += shared.contains(ref.address)
        assert 0.20 < shared_writes / writes < 0.30
        assert 0.06 < shared_reads / reads < 0.14

    def test_shared_shape_without_region_rejected(self):
        with pytest.raises(ConfigurationError):
            make_source(shape=WorkloadShape())  # defaults want sharing


class TestLimitsAndDeterminism:
    def test_instruction_limit(self):
        source = make_source(limit=10)
        assert len(collect(source, 100)) == 10

    def test_same_seed_same_stream(self):
        a = collect(make_source(seed=5), 50)
        b = collect(make_source(seed=5), 50)
        assert [x.refs for x in a] == [y.refs for y in b]

    def test_different_seed_differs(self):
        a = collect(make_source(seed=5), 50)
        b = collect(make_source(seed=6), 50)
        assert [x.refs for x in a] != [y.refs for y in b]


class TestValidation:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadShape(loop_length=0)
        with pytest.raises(ConfigurationError):
            WorkloadShape(data_reuse=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadShape(shared_write_fraction=0.7,
                          partial_write_fraction=0.5)

    def test_layout_validation(self):
        with pytest.raises(ConfigurationError):
            RegionLayout(code_base=0, code_words=100,
                         heap_base=50, heap_words=100)
        with pytest.raises(ConfigurationError):
            default_layout(0, code_words=200_000, heap_words=200_000)

    def test_shared_region_validation(self):
        with pytest.raises(ConfigurationError):
            SharedRegion(0, 0)
        region = SharedRegion(100, 10)
        assert region.contains(105)
        assert not region.contains(110)
