"""Postmortems: the pinned deadlock, crash reports and the CLI.

The headline assertion is the golden digest: `run_pinned_deadlock()`
is fully deterministic (simulated time only, counter-allocated ids,
sorted-key JSON), so the same seed must produce a byte-identical
firefly-crash/1 report forever.  If an intentional change to the
kernel, scheduler or crash schema moves the digest, re-pin it here
and in docs/CAUSAL.md in the same commit.
"""

from __future__ import annotations

import json

import pytest

from repro.causal import (PINNED_DEADLOCK_SEED, capture_crash,
                          extract_crash, find_cycle, render_crash_report,
                          report_digest, run_pinned_deadlock)
from repro.cli import main

pytestmark = pytest.mark.causal

PINNED_DIGEST = "3979a83b9eadd4da"


# ---------------------------------------------------------------------------
# cycle finding


class TestFindCycle:
    def test_simple_cycle(self):
        edges = [("a", "lock:x", "b"), ("b", "lock:y", "a")]
        cycle = find_cycle(edges)
        assert [e["waiter"] for e in cycle] == ["a", "b"]
        assert cycle[0] == {"waiter": "a", "resource": "lock:x",
                            "holder": "b"}

    def test_acyclic_graph_is_empty(self):
        edges = [("a", "lock:x", "b"), ("b", "lock:y", "c")]
        assert find_cycle(edges) == []

    def test_rotation_is_deterministic(self):
        # Same cycle listed from different starting points: the result
        # always starts at the lexicographically smallest waiter.
        forward = [("b", "r1", "c"), ("c", "r2", "a"), ("a", "r3", "b")]
        shuffled = list(reversed(forward))
        assert find_cycle(forward) == find_cycle(shuffled)
        assert find_cycle(forward)[0]["waiter"] == "a"

    def test_waiter_without_holder_is_ignored(self):
        assert find_cycle([("a", "event:strobe", "")]) == []


# ---------------------------------------------------------------------------
# the pinned scenario


class TestPinnedDeadlock:
    def test_report_is_deterministic_and_pinned(self):
        first = run_pinned_deadlock()
        second = run_pinned_deadlock()
        assert first == second
        assert report_digest(first) == PINNED_DIGEST

    def test_report_shape(self):
        report = run_pinned_deadlock()
        assert report["schema"] == "firefly-crash/1"
        assert report["error"]["type"] == "DeadlockError"
        cycle = report["wait_for"]["cycle"]
        assert {e["waiter"] for e in cycle} == {"left-fork", "right-fork"}
        assert report["recorder"]["recorded"] > 0
        names = {event["name"] for event in report["recent_events"]}
        assert any(name.startswith("sched.") for name in names)

    def test_other_seed_differs(self):
        other = run_pinned_deadlock(seed=PINNED_DEADLOCK_SEED + 1)
        assert report_digest(other) != PINNED_DIGEST

    def test_render_names_the_cycle(self):
        text = render_crash_report(run_pinned_deadlock())
        assert "wait-for cycle (2 threads):" in text
        assert "left-fork waits on lock:fork-b held by right-fork" in text
        assert "right-fork waits on lock:fork-a held by left-fork" in text
        assert f"report digest: {PINNED_DIGEST}" in text


# ---------------------------------------------------------------------------
# crash capture / extraction plumbing


class TestCaptureAndExtract:
    def test_capture_without_subject_still_reports_error(self):
        report = capture_crash(ValueError("boom"))
        assert report["error"] == {"type": "ValueError",
                                   "message": "boom"}
        assert report["schema"] == "firefly-crash/1"

    def test_extract_bare_report(self):
        report = run_pinned_deadlock()
        assert extract_crash(report) is report

    def test_extract_from_chaos_document(self):
        report = run_pinned_deadlock()
        wrapper = {"scenarios": [{"name": "ok", "crash": None},
                                 {"name": "bad", "crash": report}]}
        assert extract_crash(wrapper) == report

    def test_extract_missing_returns_none(self):
        assert extract_crash({"scenarios": [{"crash": None}]}) is None
        assert extract_crash({"unrelated": 1}) is None


# ---------------------------------------------------------------------------
# the CLI subcommand


class TestPostmortemCli:
    def test_scenario_writes_json_and_renders(self, tmp_path, capsys):
        out = tmp_path / "crash.json"
        rc = main(["postmortem", "--scenario", "deadlock",
                   "--json", str(out)])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "wait-for cycle" in captured
        assert "left-fork" in captured and "right-fork" in captured
        assert f"report digest: {PINNED_DIGEST}" in captured
        report = json.loads(out.read_text())
        assert report_digest(report) == PINNED_DIGEST

    def test_render_from_file(self, tmp_path, capsys):
        path = tmp_path / "crash.json"
        path.write_text(json.dumps(run_pinned_deadlock()))
        rc = main(["postmortem", str(path)])
        assert rc == 0
        assert "wait-for cycle" in capsys.readouterr().out

    def test_no_input_is_an_error(self, capsys):
        rc = main(["postmortem"])
        assert rc != 0

    def test_file_without_crash_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        path.write_text(json.dumps({"scenarios": [{"crash": None}]}))
        rc = main(["postmortem", str(path)])
        assert rc != 0
