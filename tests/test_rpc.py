"""The RPC transport: shape of the paper's 4.6 Mbit/s claim."""

import pytest

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.topaz import Compute
from repro.topaz.kernel import TopazKernel
from repro.topaz.rpc import RpcParams, RpcTransport
from repro.workloads.rpc_server import RpcWorkload, sweep_client_threads


def make_transport(processors=2, params=None):
    kernel = TopazKernel.build(processors=processors, threads_hint=8,
                               seed=17, io_enabled=True)
    io = IoSubsystem(kernel.machine)
    _, buffer_qbus = io.alloc(512, "rpc buffer")
    transport = RpcTransport(kernel, io.ethernet, buffer_qbus,
                             params=params)
    return kernel, io, transport


class TestCallMechanics:
    def test_one_call_completes_and_counts(self):
        kernel, io, transport = make_transport()

        def client():
            yield from transport.call()
            return "ok"

        thread = kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        assert thread.result == "ok"
        assert transport.stats["calls"].total == 1
        assert io.ethernet.stats["tx_frames"].total == \
            transport.params.packets_per_call
        assert io.ethernet.stats["rx_frames"].total == 1

    def test_call_duration_bounded_below_by_wire_time(self):
        kernel, io, transport = make_transport()
        durations = []

        def client():
            start = kernel.sim.now
            yield from transport.call()
            durations.append(kernel.sim.now - start)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        p = transport.params
        wire_floor = p.packets_per_call * io.ethernet.params.frame_bits(
            p.payload_bytes)
        assert durations[0] > wire_floor

    def test_local_call_costs_reschedules(self):
        kernel, io, transport = make_transport(processors=1)

        def client():
            yield from transport.local_call()
            yield Compute(1)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert transport.stats["local_calls"].total == 1
        assert kernel.stats["yields"].total >= 2

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            RpcParams(payload_bytes=0)
        with pytest.raises(ConfigurationError):
            RpcParams(reply_bytes=0)
        assert RpcParams().data_bits_per_call == 1400 * 4 * 8

    def test_params_errors_name_field_and_value(self):
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.payload_bytes must be "
                                 r"positive, got 0"):
            RpcParams(payload_bytes=0)
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.packets_per_call must be "
                                 r"positive, got -3"):
            RpcParams(packets_per_call=-3)
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.reply_bytes must be "
                                 r"positive, got -1"):
            RpcParams(reply_bytes=-1)
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.marshal_instructions must "
                                 r"be >= 0, got -5"):
            RpcParams(marshal_instructions=-5)
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.unmarshal_instructions must "
                                 r"be >= 0, got -2"):
            RpcParams(unmarshal_instructions=-2)
        with pytest.raises(ConfigurationError,
                           match=r"RpcParams\.server_turnaround_cycles "
                                 r"must be >= 0, got -7"):
            RpcParams(server_turnaround_cycles=-7)


class TestThroughputShape:
    def test_saturation_near_paper_figure(self):
        """'4.6 megabits per second using an average of three
        concurrent threads' — we assert the shape: saturated goodput in
        [4.0, 5.2] Mbit/s, reached at about three threads, with one
        thread clearly below saturation."""
        results = sweep_client_threads([1, 3, 6],
                                       measure_cycles=2_000_000)
        one, three, six = (results[k].goodput_mbit for k in (1, 3, 6))
        assert 4.0 < three < 5.2
        assert one < 0.85 * three
        assert abs(six - three) < 0.6 * three * 0.2 + 0.6

    def test_throughput_monotone_to_saturation(self):
        results = sweep_client_threads([1, 2, 3],
                                       measure_cycles=1_500_000)
        assert results[1].goodput_mbit <= results[2].goodput_mbit + 0.3
        assert results[2].goodput_mbit <= results[3].goodput_mbit + 0.3

    def test_goodput_never_exceeds_wire_rate(self):
        result = RpcWorkload(client_threads=8).run(
            measure_cycles=1_000_000)
        assert result.goodput_mbit < 10.0
        assert result.wire_utilization <= 1.0
