"""Odds-and-ends property tests: reporting, MDC geometry, topaz ops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.io import DisplayCommand, IoSubsystem
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine
from repro.topaz import ops


class TestTextTableProperties:
    @given(rows=st.lists(st.tuples(
        st.integers(min_value=-10**9, max_value=10**9),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
        min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_rows_align(self, rows):
        table = TextTable([Column("a", "d"), Column("b", ".2f")])
        for a, b in rows:
            table.add_row(a, b)
        lines = table.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1          # perfectly rectangular
        assert len(lines) == len(rows) + 1

    @given(text=st.text(alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd")), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_string_cells_survive(self, text):
        table = TextTable([Column("s", "s", align_left=True)])
        table.add_row(text)
        assert text in table.render()


class TestMdcFillProperty:
    @given(x=st.integers(min_value=-200, max_value=1200),
           y=st.integers(min_value=-200, max_value=900),
           w=st.integers(min_value=0, max_value=600),
           h=st.integers(min_value=0, max_value=600))
    @settings(max_examples=30, deadline=None)
    def test_property_fill_paints_exactly_the_clipped_area(self, x, y, w, h):
        machine = FireflyMachine(FireflyConfig(processors=1,
                                               io_enabled=True))
        io = IoSubsystem(machine)
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.FILL_RECT, (x, y, w, h))
        io.start()
        machine.sim.run_until(600_000)
        expected_w = max(0, min(1024, x + w) - max(0, x))
        expected_h = max(0, min(768, y + h) - max(0, y))
        assert io.mdc.lit_pixels() == expected_w * expected_h


class TestOpsValidation:
    def test_compute_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ops.Compute(-1)

    def test_fork_captures_args(self):
        def fn(a, b):
            yield ops.Compute(1)

        fork = ops.Fork(fn, 1, 2, name="x")
        assert fork.args == (1, 2)
        assert fork.name == "x"

    def test_device_call_holds_generator(self):
        def gen():
            yield

        call = ops.DeviceCall(gen(), label="disk")
        assert call.label == "disk"
