"""Unit tests for the metrics layer."""

import pytest

from repro.system.metrics import CpuMetrics, MachineMetrics


def cpu(cpu_id=0, **overrides):
    defaults = dict(cpu_id=cpu_id, instructions=1000, ifetches=950,
                    data_reads=780, data_writes=400, read_krate=690.0,
                    write_krate=160.0, miss_rate=0.2, tpi=12.5,
                    idle_fraction=0.0)
    defaults.update(overrides)
    return CpuMetrics(**defaults)


def machine(cpus=None, **overrides):
    defaults = dict(window_cycles=400_000,
                    cpus=[cpu(0), cpu(1)] if cpus is None else cpus,
                    bus_load=0.4, bus_ops=20_000,
                    bus_reads_memory=9_000, bus_reads_cache=1_000,
                    bus_writes_mshared=3_000, bus_writes_not_mshared=5_000,
                    bus_victim_writes=2_000, dirty_fraction=0.25)
    defaults.update(overrides)
    return MachineMetrics(**defaults)


class TestCpuMetrics:
    def test_totals(self):
        c = cpu()
        assert c.references == 2130
        assert c.total_krate == pytest.approx(850.0)
        assert c.read_write_ratio == pytest.approx(690 / 160)

    def test_zero_write_ratio(self):
        c = cpu(write_krate=0.0)
        assert c.read_write_ratio == 0.0  # safe ratio default


class TestMachineMetrics:
    def test_window_seconds(self):
        m = machine()
        assert m.window_seconds == pytest.approx(0.04)

    def test_bus_aggregates(self):
        m = machine()
        assert m.bus_reads == 10_000
        assert m.bus_writes == 10_000
        assert m.bus_krate == pytest.approx(20_000 / 0.04 / 1e3)

    def test_cpu_means(self):
        m = machine(cpus=[cpu(0, read_krate=600.0),
                          cpu(1, read_krate=800.0)])
        assert m.mean_read_krate == pytest.approx(700.0)
        assert m.processors == 2

    def test_mean_tpi_skips_fully_idle(self):
        m = machine(cpus=[cpu(0, tpi=12.0), cpu(1, tpi=0.0)])
        assert m.mean_tpi == pytest.approx(12.0)

    def test_empty_cpu_list_is_safe(self):
        m = machine(cpus=[])
        assert m.mean_cpu_krate == 0.0
        assert m.mean_miss_rate == 0.0
        assert m.mean_tpi == 0.0

    def test_total_instruction_krate(self):
        m = machine()
        assert m.total_instruction_krate == pytest.approx(2000 / 0.04 / 1e3)

    def test_summary_contains_key_rows(self):
        text = machine().summary()
        assert "bus load L = 0.400" in text
        assert "victims 2000" in text
        assert "cpu0" in text and "cpu1" in text
