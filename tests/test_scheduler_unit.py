"""Unit tests for the Topaz scheduler policy in isolation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.topaz.scheduler import Scheduler
from repro.topaz.thread import ThreadState


class FakeThread:
    """Just enough of a thread for the scheduler: name + last_cpu."""

    def __init__(self, name, last_cpu=None):
        self.name = name
        self.last_cpu = last_cpu
        self.state = ThreadState.BLOCKED

    def __repr__(self):
        return f"<{self.name}>"


class TestFifoPolicy:
    def test_fifo_order_without_affinity(self):
        sched = Scheduler(avoid_migration=False)
        a, b, c = FakeThread("a"), FakeThread("b"), FakeThread("c")
        for t in (a, b, c):
            sched.enqueue(t)
        assert sched.pick(0) is a
        assert sched.pick(1) is b
        assert sched.pick(0) is c
        assert sched.pick(0) is None

    def test_enqueue_sets_ready(self):
        sched = Scheduler()
        t = FakeThread("t")
        sched.enqueue(t)
        assert t.state is ThreadState.READY


class TestAffinityPolicy:
    def test_prefers_own_thread_within_window(self):
        sched = Scheduler(avoid_migration=True, affinity_window=4)
        other = FakeThread("other", last_cpu=1)
        mine = FakeThread("mine", last_cpu=0)
        sched.enqueue(other)
        sched.enqueue(mine)
        assert sched.pick(0) is mine       # skipped the head
        assert sched.pick(0) is other      # work conservation

    def test_fresh_threads_count_as_affine(self):
        sched = Scheduler(avoid_migration=True)
        fresh = FakeThread("fresh", last_cpu=None)
        sched.enqueue(fresh)
        assert sched.pick(3) is fresh
        assert sched.affinity_hits == 1

    def test_window_limits_the_search(self):
        sched = Scheduler(avoid_migration=True, affinity_window=2)
        others = [FakeThread(f"o{i}", last_cpu=1) for i in range(3)]
        mine = FakeThread("mine", last_cpu=0)
        for t in others:
            sched.enqueue(t)
        sched.enqueue(mine)   # position 3, outside the window of 2
        # CPU 0 must take the head (no affine thread within window).
        assert sched.pick(0) is others[0]

    def test_work_conservation_never_idles_with_ready_work(self):
        """A runnable thread is never left waiting for an idle CPU."""
        sched = Scheduler(avoid_migration=True, affinity_window=8)
        foreign = FakeThread("foreign", last_cpu=5)
        sched.enqueue(foreign)
        assert sched.pick(0) is foreign    # stolen rather than idling

    def test_counters(self):
        sched = Scheduler(avoid_migration=True)
        t = FakeThread("t", last_cpu=0)
        sched.enqueue(t)
        sched.pick(0)
        assert sched.enqueues == 1
        assert sched.picks == 1
        assert sched.affinity_hits == 1
        assert sched.ready_count == 0

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            Scheduler(affinity_window=0)
