"""The static protocol verifier: model checker + structural checks.

The positive half is the PR's acceptance gate — every shipped protocol
explores its full 3-cache reachable space with zero violations.  The
negative half injects deliberately broken protocol subclasses through
the checker's ``protocol=`` hook and demands that each class of defect
is caught: an invariant violation with a minimal counterexample trace,
hidden mutable state, an unreachable state, and a dead-end state.
"""

import pytest

from repro.bus.mbus import SnoopResult
from repro.cache.line import LineState
from repro.cache.protocols import available_protocols
from repro.cache.protocols.firefly import FireflyProtocol
from repro.cache.protocols.write_through import WriteThroughInvalidateProtocol
from repro.common.errors import ConfigurationError
from repro.common.types import BusOp
from repro.verify import (
    ModelChecker,
    check_structure,
    verify_protocol,
)
from repro.verify.model import format_state

ALL = sorted(available_protocols())


class TestShippedProtocolsVerify:
    """Acceptance: all seven protocols are statically clean."""

    @pytest.mark.parametrize("protocol", ALL)
    def test_three_cache_space_has_no_violations(self, protocol):
        report = verify_protocol(protocol, caches=3)
        assert report.ok, report.render()
        assert report.states_explored > 1
        assert report.transitions_taken >= 6 * report.states_explored - 6
        assert report.render().startswith(f"[OK] {protocol}:")

    @pytest.mark.parametrize("protocol", ALL)
    def test_dma_stimuli_stay_clean(self, protocol):
        report = verify_protocol(protocol, caches=2, include_dma=True)
        assert report.ok, report.render()

    def test_reachable_set_is_exposed_for_cross_validation(self):
        checker = ModelChecker("firefly", caches=2)
        report = checker.explore()
        assert report.ok
        assert len(checker.reachable) == report.states_explored
        initial = ((("I", None), ("I", None)), 0)
        assert initial in checker.reachable

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ConfigurationError):
            ModelChecker("no-such-protocol")
        with pytest.raises(ConfigurationError):
            ModelChecker("firefly", caches=1)
        with pytest.raises(ConfigurationError):
            ModelChecker("firefly", caches=3).explore(max_states=3)


class _LeakyFirefly(FireflyProtocol):
    """Mutated transition table: a read miss ignores MShared.

    The filled line claims exclusivity (VALID, a silent-write state)
    even when another cache answered the read — the classic bug the
    Firefly's MShared wire exists to prevent.  The next local write
    would skip the bus and leave the other holder stale.
    """

    def read_miss(self, cache, line, index, tag, offset):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.VALID,       # the mutation
            exclusive_state=LineState.VALID)
        return data[offset]


class TestCounterexampleGeneration:
    """Acceptance: a mutated table demonstrably yields a counterexample."""

    def test_mutated_firefly_produces_counterexample(self):
        report = verify_protocol("firefly", caches=3,
                                 protocol=_LeakyFirefly())
        assert not report.ok
        assert report.counterexample is not None
        violation = report.counterexample.violation
        assert violation.invariant == "I4"
        assert "silent-write" in violation.detail

    def test_counterexample_trace_is_minimal(self):
        # Two reads of the same word from different caches suffice: the
        # second fills VALID next to the first holder.  BFS guarantees
        # no shorter trace exists, and depth 1 (a single stimulus from
        # all-invalid) cannot create two holders.
        report = verify_protocol("firefly", caches=3,
                                 protocol=_LeakyFirefly())
        trace = report.counterexample.trace
        assert len(trace) == 2
        kinds = [stimulus[0] for stimulus, _ in trace]
        assert all(kind in ("P-read", "P-write") for kind in kinds)
        caches_touched = {stimulus[1] for stimulus, _ in trace}
        assert len(caches_touched) == 2, "one cache alone cannot race"

    def test_counterexample_renders_replayable_steps(self):
        report = verify_protocol("firefly", caches=3,
                                 protocol=_LeakyFirefly())
        text = report.counterexample.render()
        assert "counterexample for protocol 'firefly'" in text
        assert "1." in text and "2." in text
        assert "violated: " in text
        assert "[FAIL] firefly" in report.render()

    def test_structural_shadow_also_fires(self):
        # The same mutation is visible in the transition table itself:
        # INVALID --P-read (peer holds)--> VALID is a silent capture.
        findings = check_structure("firefly", protocol=_LeakyFirefly())
        assert any(f.check == "silent-capture" for f in findings)


class _StatefulFirefly(FireflyProtocol):
    """Hidden mutable state: behaviour changes after the first miss."""

    def __init__(self):
        self._misses = 0

    def read_miss(self, cache, line, index, tag, offset):
        self._misses += 1
        if self._misses > 1:
            data = yield from self.fill_from_read(
                cache, line, index, tag,
                shared_state=LineState.SHARED,
                exclusive_state=LineState.SHARED)
            return data[offset]
        return (yield from super().read_miss(cache, line, index, tag,
                                             offset))


class _NoSharedDirtyFirefly(FireflyProtocol):
    """A dirty snooper never admits sharing: SHARED_DIRTY is dead code."""

    def snoop(self, cache, line, line_address, op, data):
        if op is BusOp.MREAD and line.state is LineState.DIRTY:
            return SnoopResult(shared=True, data=line.snapshot())
        return super().snoop(cache, line, line_address, op, data)


class _StickyWriteThrough(WriteThroughInvalidateProtocol):
    """Snooped writes update instead of invalidating: VALID is a trap."""

    def snoop(self, cache, line, line_address, op, data):
        if op is BusOp.MWRITE:
            line.data[:] = data
            return SnoopResult(shared=True)
        return super().snoop(cache, line, line_address, op, data)


class TestStructuralChecks:
    @pytest.mark.parametrize("protocol", ALL)
    def test_shipped_tables_are_structurally_sound(self, protocol):
        assert check_structure(protocol) == []

    def test_hidden_state_caught_as_nondeterminism(self):
        findings = check_structure("firefly", protocol=_StatefulFirefly())
        assert any(f.check == "determinism" for f in findings), findings

    def test_unreachable_state_caught(self):
        findings = check_structure("firefly",
                                   protocol=_NoSharedDirtyFirefly())
        reach = [f for f in findings if f.check == "reachability"]
        assert reach and "SD" in reach[0].detail

    def test_dead_end_state_caught(self):
        findings = check_structure("write-through",
                                   protocol=_StickyWriteThrough())
        dead = [f for f in findings if f.check == "dead-end"]
        assert dead and "V" in dead[0].detail

    def test_findings_render_with_check_and_protocol(self):
        findings = check_structure("write-through",
                                   protocol=_StickyWriteThrough())
        assert str(findings[0]).startswith("[")
        assert "write-through" in str(findings[0])


class TestStateFormatting:
    def test_format_state(self):
        state = ((("D", 1), ("I", None), ("S", 0)), 0)
        assert format_state(state) == "caches[D:v1, I, S:v0] mem=v0"
