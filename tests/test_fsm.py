"""The FSM enumeration machinery itself."""

import pytest

from repro.cache.fsm import (
    PEER_COSTATE,
    PROTOCOL_STATES,
    Transition,
    enumerate_transitions,
    transition_map,
)
from repro.cache.line import LineState
from repro.common.errors import ConfigurationError


class TestEnumeration:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_transitions("nonexistent")

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_STATES))
    def test_covers_every_state(self, protocol):
        transitions = enumerate_transitions(protocol)
        starts = {t.start for t in transitions}
        assert starts == set(PROTOCOL_STATES[protocol]) | {LineState.INVALID}

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_STATES))
    def test_every_end_state_is_legal(self, protocol):
        legal = set(PROTOCOL_STATES[protocol]) | {LineState.INVALID}
        for t in enumerate_transitions(protocol):
            assert t.end in legal, t.label()

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_STATES))
    def test_processor_arcs_never_leave_invalid(self, protocol):
        """After a processor read, the line is present (or, for
        no-allocate write policies, the write completed safely)."""
        for t in enumerate_transitions(protocol):
            if t.stimulus == "P-read":
                assert t.end is not LineState.INVALID, t.label()

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_STATES))
    def test_snoop_side_adds_no_bus_operations(self, protocol):
        """An M-arc's recorded ops are exactly the stimulus transaction
        itself — snooping must never *initiate* bus work."""
        stimulus_op = {"M-read": "MRead", "M-write": "MWrite"}
        for t in enumerate_transitions(protocol):
            if t.stimulus in stimulus_op:
                assert t.bus_ops == (stimulus_op[t.stimulus],), t.label()

    def test_transition_map_keys(self):
        fsm = transition_map("firefly")
        assert ("V", "P-write", False) in fsm
        assert all(len(k) == 3 for k in fsm)

    def test_label_rendering(self):
        t = Transition(start=LineState.SHARED, stimulus="P-write",
                       peer_holds=True, end=LineState.SHARED,
                       bus_ops=("MWrite",))
        label = t.label()
        assert "S --P-write (MShared)--> S [MWrite]" in label

    def test_peer_costates_defined_for_all(self):
        assert set(PEER_COSTATE) == set(PROTOCOL_STATES)


class TestDeterminism:
    def test_enumeration_is_stable(self):
        a = enumerate_transitions("firefly")
        b = enumerate_transitions("firefly")
        assert a == b
