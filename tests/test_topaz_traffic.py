"""Topaz kernel traffic: scheduling and sync generate real bus activity."""

import pytest

from repro.common.errors import SimulationError
from repro.topaz import (
    Compute,
    DeviceCall,
    Lock,
    TopazKernel,
    Unlock,
    Write,
    YieldCpu,
)


def kernel_with(processors=2, **kw):
    return TopazKernel.build(processors=processors, threads_hint=16,
                             seed=29, **kw)


class TestSchedulerTraffic:
    def test_context_switches_touch_shared_words(self):
        """Dispatch on different CPUs must write-through the ready-queue
        words — the mechanism behind Table 2's MShared write rate."""
        kernel = kernel_with(processors=2)

        def bouncer():
            for _ in range(10):
                yield Compute(5)
                yield YieldCpu()

        kernel.fork(bouncer, name="a")
        kernel.fork(bouncer, name="b")
        kernel.fork(bouncer, name="c")
        kernel.run_until_quiescent(max_cycles=5_000_000)
        bus = kernel.machine.mbus.stats
        assert bus.totals().get("write.mshared", 0) > 0
        assert kernel.stats["context_switches"].total >= 6

    def test_ipis_sent_on_wakeup(self):
        kernel = kernel_with(processors=2)

        def sleeper():
            yield Compute(2000)

        def quick():
            yield Compute(5)

        kernel.fork(sleeper)
        # CPU 1 idles after quick finishes, then gets kicked by forks.
        kernel.fork(quick)
        kernel.fork(quick)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert kernel.machine.mbus.stats.totals().get("ipi", 0) >= 0

    def test_lock_traffic_is_bus_visible(self):
        kernel = kernel_with(processors=2)
        mutex = kernel.mutex("hot")

        def fighter():
            for _ in range(10):
                yield Lock(mutex)
                yield Compute(20)
                yield Unlock(mutex)

        kernel.fork(fighter, name="f0")
        kernel.fork(fighter, name="f1")
        before = kernel.machine.mbus.stats.totals().get("ops", 0)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        after = kernel.machine.mbus.stats["ops"].total
        assert after - before > 20  # test&set + release writes at least


class TestDeviceCalls:
    def test_device_call_blocks_and_returns_value(self):
        kernel = kernel_with(processors=1)
        sim = kernel.sim

        def device_op():
            yield sim.timeout(500)
            return "payload"

        def body():
            started = sim.now
            result = yield DeviceCall(device_op(), label="disk")
            return result, sim.now - started

        thread = kernel.fork(body)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        result, elapsed = thread.result
        assert result == "payload"
        assert elapsed >= 500

    def test_cpu_runs_other_threads_during_device_call(self):
        kernel = kernel_with(processors=1)
        sim = kernel.sim
        progress = []

        def device_op():
            yield sim.timeout(5_000)

        def io_thread():
            yield DeviceCall(device_op(), label="slow")
            progress.append("io-done")

        def compute_thread():
            yield Compute(50)
            progress.append("compute-done")

        kernel.fork(io_thread)
        kernel.fork(compute_thread)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert progress == ["compute-done", "io-done"]

    def test_device_call_failure_propagates(self):
        kernel = kernel_with(processors=1)

        def broken_device():
            raise SimulationError("device exploded")
            yield  # pragma: no cover

        def body():
            yield DeviceCall(broken_device(), label="bad")

        kernel.fork(body)
        with pytest.raises(SimulationError):
            kernel.run_until_quiescent(max_cycles=500_000)


class TestInterruptService:
    def test_device_completions_load_the_io_processor(self):
        """§3 asymmetry: device interrupts are serviced on CPU 0, so an
        I/O-heavy workload shows up as primary-board kernel work."""
        kernel = kernel_with(processors=3)
        sim = kernel.sim

        def device_op():
            yield sim.timeout(2_000)

        def io_heavy():
            for _ in range(25):
                yield DeviceCall(device_op(), label="dev")
            return "done"

        def compute_only():
            for _ in range(200):
                yield Compute(40)
                yield YieldCpu()

        io_thread = kernel.fork(io_heavy, name="io")
        kernel.fork(compute_only, name="cpu-a")
        kernel.fork(compute_only, name="cpu-b")
        kernel.machine.start()
        deadline = 10_000_000
        while sim.now < deadline and not io_thread.done:
            sim.run_until(sim.now + 50_000)
        assert io_thread.result == "done"
        assert kernel.stats["device_interrupts"].total == 25
        # The ISR's instructions executed on CPU 0 and IPIs were sent.
        assert kernel.machine.mbus.stats["ipi"].total >= 25

    def test_interrupt_service_can_be_disabled(self):
        from repro.topaz import TopazParams
        kernel = TopazKernel.build(
            processors=2, threads_hint=4, seed=29,
            params=TopazParams(interrupt_service_instructions=0))
        sim = kernel.sim

        def device_op():
            yield sim.timeout(500)

        def body():
            yield DeviceCall(device_op(), label="dev")
            return "ok"

        thread = kernel.fork(body)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert thread.result == "ok"
        assert kernel.stats.totals().get("device_interrupts", 0) == 0


class TestKernelDataValues:
    def test_explicit_writes_land_in_simulated_memory(self):
        kernel = kernel_with(processors=1)
        slot = kernel.alloc_shared(1, "slot")

        def body():
            yield Write(slot, 424242)

        kernel.fork(body)
        kernel.run_until_quiescent(max_cycles=500_000)
        assert kernel._coherent_value(slot) == 424242

    def test_tcb_words_are_written_during_dispatch(self):
        kernel = kernel_with(processors=1)

        def body():
            yield Compute(5)

        thread = kernel.fork(body)
        kernel.run_until_quiescent(max_cycles=500_000)
        tcb_values = [kernel._coherent_value(thread.tcb_address + i)
                      for i in range(kernel.params.tcb_words)]
        assert any(v != 0 for v in tcb_values)
