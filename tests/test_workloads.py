"""Workload-level tests: exerciser, make, compiler, matrix, pipeline, RPC."""

import pytest

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.system import CoherenceChecker
from repro.topaz.kernel import TopazKernel
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.multiprogramming import BoundedBuffer, MultiprogrammingMix
from repro.workloads.parallel_compiler import CompilerParams, ParallelCompiler
from repro.workloads.parallel_make import MakeJob, ParallelMake, sample_project
from repro.workloads.rpc_server import RpcWorkload
from repro.workloads.semaphore import TopazSemaphore
from repro.workloads.threads_exerciser import (
    ExerciserParams,
    build_exerciser,
    exerciser_expectations,
)


def kernel_with(processors=2, io=False, **kw):
    kernel = TopazKernel.build(processors=processors, threads_hint=24,
                               seed=31, io_enabled=io, **kw)
    return kernel


class TestExerciser:
    def test_builds_and_runs_coherently(self):
        kernel = build_exerciser(2, ExerciserParams(threads=6))
        metrics = kernel.run(warmup_cycles=30_000, measure_cycles=60_000)
        assert metrics.bus_ops > 0
        assert all(c.instructions > 0 for c in metrics.cpus)
        CoherenceChecker(kernel.machine).check()

    def test_counters_protected_by_mutexes_stay_sane(self):
        kernel = build_exerciser(3, ExerciserParams(threads=8))
        kernel.run(warmup_cycles=50_000, measure_cycles=100_000)
        # The exerciser's own checks (AssertionError) did not fire, and
        # the shared counters hold plausible values.
        assert kernel.stats["lock_acquires"].total > 0

    def test_produces_heavy_sharing_on_multiple_cpus(self):
        # The standard Table 2 shape: 16 threads on 5 CPUs, so the
        # ready queue outgrows the affinity window and some migration
        # survives the scheduler's avoidance.
        kernel = build_exerciser(5, ExerciserParams(threads=16))
        metrics = kernel.run(warmup_cycles=100_000, measure_cycles=200_000)
        assert metrics.bus_writes_mshared > 0
        assert kernel.total_migrations > 0

    def test_expectations_match_paper_methodology(self):
        one = exerciser_expectations(1)
        five = exerciser_expectations(5)
        # One CPU: ~850 K refs/sec expected; five: ~752 K.
        assert one["total_krate"] == pytest.approx(849, abs=5)
        assert five["total_krate"] == pytest.approx(752, abs=5)
        assert one["reads_krate"] == pytest.approx(688, abs=5)
        assert five["writes_krate"] == pytest.approx(141, abs=3)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            ExerciserParams(threads=0)
        with pytest.raises(ConfigurationError):
            ExerciserParams(rendezvous_every=0)


class TestSemaphore:
    def test_bounds_concurrency(self):
        kernel = kernel_with(processors=4)
        sem = TopazSemaphore(kernel, 2, "slots")
        inside = kernel.alloc_shared(1, "inside")
        max_seen = []

        from repro.topaz import Compute, Read, Write

        def worker():
            yield from sem.acquire()
            count = yield Read(inside)
            yield Write(inside, count + 1)
            max_seen.append(count + 1)
            yield Compute(100)
            count = yield Read(inside)
            yield Write(inside, count - 1)
            yield from sem.release()

        for i in range(6):
            kernel.fork(worker, name=f"w{i}")
        kernel.run_until_quiescent(max_cycles=10_000_000)
        assert max(max_seen) <= 2

    def test_validation(self):
        kernel = kernel_with(processors=1)
        with pytest.raises(ConfigurationError):
            TopazSemaphore(kernel, -1)


class TestParallelMake:
    def test_build_completes_and_orders_dependencies(self):
        kernel = kernel_with(processors=2, io=True)
        io = IoSubsystem(kernel.machine)
        jobs = [
            MakeJob("a.o", compute_instructions=500),
            MakeJob("b.o", compute_instructions=500),
            MakeJob("prog", compute_instructions=200,
                    dependencies=("a.o", "b.o")),
        ]
        make = ParallelMake(kernel, io, jobs, max_parallel=2)
        span = make.run(max_cycles=50_000_000)
        assert span > 0
        assert all(t.done for t in make._threads.values())
        # The link job finished last.
        CoherenceChecker(kernel.machine).check()

    def test_cycle_detected(self):
        kernel = kernel_with(processors=1, io=True)
        io = IoSubsystem(kernel.machine)
        jobs = [MakeJob("a", dependencies=("b",)),
                MakeJob("b", dependencies=("a",))]
        make = ParallelMake(kernel, io, jobs)
        with pytest.raises(ConfigurationError):
            make.start()

    def test_unknown_dependency_rejected(self):
        kernel = kernel_with(processors=1, io=True)
        io = IoSubsystem(kernel.machine)
        with pytest.raises(ConfigurationError):
            ParallelMake(kernel, io, [MakeJob("a", dependencies=("ghost",))])

    def test_duplicate_names_rejected(self):
        kernel = kernel_with(processors=1, io=True)
        io = IoSubsystem(kernel.machine)
        with pytest.raises(ConfigurationError):
            ParallelMake(kernel, io, [MakeJob("a"), MakeJob("a")])

    def test_sample_project_shape(self):
        jobs = sample_project(4)
        assert len(jobs) == 5
        assert jobs[-1].dependencies == ("mod0.o", "mod1.o",
                                         "mod2.o", "mod3.o")

    def test_more_processors_build_faster(self):
        def build(nproc):
            kernel = kernel_with(processors=nproc, io=True)
            io = IoSubsystem(kernel.machine)
            make = ParallelMake(kernel, io, sample_project(4),
                                max_parallel=nproc)
            return make.run(max_cycles=80_000_000)

        assert build(4) < build(1)


class TestParallelCompiler:
    def test_compiles_and_speeds_up(self):
        def compile_on(nproc):
            kernel = kernel_with(processors=nproc, io=True)
            io = IoSubsystem(kernel.machine)
            compiler = ParallelCompiler(kernel, io, CompilerParams(
                procedures=8))
            return compiler.run(max_cycles=80_000_000)

        serial = compile_on(1)
        parallel = compile_on(4)
        assert parallel < serial
        # Amdahl: far from ideal 4x because parse + I/O are serial.
        assert parallel > serial / 4

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            CompilerParams(procedures=0)


class TestMatrix:
    def test_result_verified_against_numpy(self):
        kernel = kernel_with(processors=3, shared_region_words=4096)
        workload = MatrixWorkload(kernel, n=6, workers=3)
        span = workload.run(max_cycles=50_000_000)
        assert span > 0  # verify() ran inside run()
        CoherenceChecker(kernel.machine).check()

    def test_operands_are_genuinely_shared(self):
        kernel = kernel_with(processors=3, shared_region_words=4096)
        workload = MatrixWorkload(kernel, n=6, workers=3)
        workload.run(max_cycles=50_000_000)
        # B is read column-wise by every worker (A's rows are private
        # to their band), so B's words end up in several caches.
        holders = sum(1 for cache in kernel.machine.caches
                      if cache.present(workload._b_base))
        assert holders >= 2

    def test_workers_capped_at_rows(self):
        kernel = kernel_with(processors=2, shared_region_words=4096)
        workload = MatrixWorkload(kernel, n=3, workers=10)
        assert workload.workers == 3

    def test_validation(self):
        kernel = kernel_with(processors=1, shared_region_words=4096)
        with pytest.raises(ConfigurationError):
            MatrixWorkload(kernel, n=0)


class TestMultiprogramming:
    def test_pipeline_total_is_exact(self):
        kernel = kernel_with(processors=3)
        mix = MultiprogrammingMix(kernel, independent_apps=0,
                                  pipeline_items=15)
        mix.run_pipeline(max_cycles=30_000_000)
        total = kernel._coherent_value(mix.pipeline_out_address)
        assert total == mix.expected_pipeline_total()
        CoherenceChecker(kernel.machine).check()

    def test_apps_progress_concurrently_with_pipeline(self):
        kernel = kernel_with(processors=4)
        mix = MultiprogrammingMix(kernel, independent_apps=3,
                                  pipeline_items=10)
        mix.run_pipeline(max_cycles=30_000_000)
        assert all(p.iterations > 0 for p in mix.progress.values())

    def test_apps_live_in_ultrix_spaces(self):
        kernel = kernel_with(processors=2)
        MultiprogrammingMix(kernel, independent_apps=2)
        ultrix = [s for s in kernel.address_spaces
                  if s.kind.value == "ultrix"]
        assert len(ultrix) == 2

    def test_bounded_buffer_blocks_producer(self):
        kernel = kernel_with(processors=2)
        buffer = BoundedBuffer(kernel, capacity=2, name="b")
        from repro.topaz import Compute
        consumed = []

        def producer():
            for i in range(6):
                yield from buffer.put(i)

        def consumer():
            yield Compute(500)  # let the producer fill and block
            for _ in range(6):
                value = yield from buffer.take()
                consumed.append(value)

        kernel.fork(producer)
        kernel.fork(consumer)
        kernel.run_until_quiescent(max_cycles=10_000_000)
        assert consumed == [0, 1, 2, 3, 4, 5]

    def test_pipeline_requires_items(self):
        kernel = kernel_with(processors=1)
        mix = MultiprogrammingMix(kernel, independent_apps=1,
                                  pipeline_items=0)
        with pytest.raises(ConfigurationError):
            mix.run_pipeline()


class TestRpcWorkload:
    def test_single_point_runs(self):
        workload = RpcWorkload(processors=2, client_threads=2)
        result = workload.run(warmup_cycles=100_000,
                              measure_cycles=400_000)
        assert result.goodput_mbit > 0.5
        assert 0 < result.wire_utilization < 1
        assert result.calls_completed > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RpcWorkload(client_threads=0)
