"""Edge and error paths across the stack."""

import pytest

from repro.bus.mbus import MBus
from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    SimulationError,
)
from repro.common.events import Simulator
from repro.common.types import BusOp
from repro.io import DisplayCommand, IoSubsystem
from repro.processor.cpu import PrefetchConfig
from repro.system import FireflyConfig, FireflyMachine
from repro.topaz.kernel import TopazKernel
from tests.conftest import MiniRig


class TestProtocolDefenses:
    def test_firefly_rejects_foreign_bus_ops(self):
        """A Firefly cache snooping an ownership op is a config bug."""
        rig = MiniRig()
        rig.read(0, 8)   # cache 0 holds the line

        def foreign():
            yield from rig.mbus.transaction(1, BusOp.MREAD_EX, 8,
                                            initiator=1)

        with pytest.raises(ProtocolError):
            rig.run(foreign())

    def test_write_through_rejects_foreign_ops(self):
        rig = MiniRig(protocol="write-through")
        rig.read(0, 8)

        def foreign():
            yield from rig.mbus.transaction(1, BusOp.MINVALIDATE, 8,
                                            initiator=1)

        with pytest.raises(ProtocolError):
            rig.run(foreign())


class TestBusDefenses:
    def test_read_with_no_memory_and_no_sharer(self):
        sim = Simulator()
        bus = MBus(sim)  # no memory attached

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)

        proc = sim.process(gen(), "t")
        with pytest.raises(SimulationError):
            sim.run()

    def test_memory_attach_twice_rejected(self):
        from repro.memory.main_memory import MainMemory, MemoryModule
        sim = Simulator()
        memory = MainMemory([MemoryModule(0, 1024, is_master=True)])
        bus = MBus(sim, memory)
        with pytest.raises(ConfigurationError):
            bus.attach_memory(memory)

    def test_late_memory_attach_works(self):
        from repro.memory.main_memory import MainMemory, MemoryModule
        sim = Simulator()
        bus = MBus(sim)
        memory = MainMemory([MemoryModule(0, 1024, is_master=True)])
        bus.attach_memory(memory)
        assert bus.memory is memory


class TestMachineDefenses:
    def test_oversized_shared_region_rejected(self):
        config = FireflyConfig(processors=5, memory_megabytes=4,
                               shared_region_words=1_000_000)
        with pytest.raises(ConfigurationError):
            FireflyMachine(config)

    def test_kernel_private_allocator_exhaustion(self):
        kernel = TopazKernel.build(processors=1, threads_hint=2, seed=1,
                                   memory_megabytes=4)
        with pytest.raises(ConfigurationError) as excinfo:
            kernel.alloc_private(10 ** 9, "absurd")
        assert "exhausted" in str(excinfo.value)

    def test_prefetch_config_validation(self):
        with pytest.raises(ConfigurationError):
            PrefetchConfig(refund_cycles=-1)
        with pytest.raises(ConfigurationError):
            PrefetchConfig(wasted_per_jump=-0.5)


class TestMdcDefenses:
    def test_unknown_opcode_raises(self):
        machine = FireflyMachine(FireflyConfig(processors=1,
                                               io_enabled=True))
        io = IoSubsystem(machine)
        queue = io.mdc_queue
        head = machine.memory.peek(queue.head_address)
        machine.memory.poke(queue.entry_address(head), 99)  # bad opcode
        machine.memory.poke(queue.head_address,
                            (head + 1) % queue.capacity)
        io.start()
        with pytest.raises(SimulationError):
            machine.sim.run_until(100_000)

    def test_nop_command_is_free(self):
        machine = FireflyMachine(FireflyConfig(processors=1,
                                               io_enabled=True))
        io = IoSubsystem(machine)
        io.mdc_queue.enqueue_direct(machine.memory, DisplayCommand.NOP)
        io.start()
        machine.sim.run_until(100_000)
        assert io.mdc.lit_pixels() == 0


class TestTopazDefenses:
    def test_signal_without_holding_is_permitted(self):
        """Signalling a condition does not require holding a mutex
        (Mesa semantics); it must not corrupt anything."""
        from repro.topaz import Compute, Signal
        kernel = TopazKernel.build(processors=1, threads_hint=2, seed=2)
        condition = kernel.condition("c")

        def body():
            yield Signal(condition)
            yield Compute(1)

        kernel.fork(body)
        kernel.run_until_quiescent(max_cycles=500_000)

    def test_unknown_op_rejected(self):
        kernel = TopazKernel.build(processors=1, threads_hint=2, seed=2)

        def body():
            yield "not an op"

        kernel.fork(body)
        with pytest.raises(SimulationError):
            kernel.run_until_quiescent(max_cycles=500_000)

    def test_quiescent_timeout_names_blockers(self):
        from repro.topaz import Lock
        kernel = TopazKernel.build(processors=1, threads_hint=2, seed=2)
        mutex = kernel.mutex("m")

        def holder():
            yield Lock(mutex)
            while True:
                from repro.topaz import Compute
                yield Compute(1000)

        def blocked():
            yield Lock(mutex)

        kernel.fork(holder, name="holder")
        kernel.fork(blocked, name="blocked-one")
        with pytest.raises(SimulationError) as excinfo:
            kernel.run_until_quiescent(max_cycles=100_000)
        assert "blocked-one" in str(excinfo.value)
