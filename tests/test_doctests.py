"""The docstring examples must actually work."""

import doctest

import pytest

import repro.bus.signals
import repro.cache.protocols
import repro.common.events
import repro.common.rng
import repro.common.stats
import repro.observatory.spans
import repro.reporting.tables
import repro.reporting.timeline
import repro.system.config

MODULES = [
    repro.common.events,
    repro.common.rng,
    repro.common.stats,
    repro.cache.protocols,
    repro.observatory.spans,
    repro.reporting.tables,
    repro.reporting.timeline,
    repro.system.config,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    # Modules in this list are expected to carry at least one example.
    assert results.attempted > 0, f"{module.__name__} has no doctests"
