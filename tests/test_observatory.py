"""The performance observatory: spans, divergence, and its satellites.

The tentpole contracts under test:

- span decomposition is *exact*: a bus span's ``wait + transfer``
  equals its end-to-end latency, and a cache span's three stages sum
  to its duration, for every span of a real multiprocessor run;
- streaming percentiles (p50/p95/p99) come out of the bounded-bucket
  histograms in the right order;
- the divergence monitor reproduces the paper's Table 1 vs Table 2
  story: the analytic model's bus-load prediction is in-band for the
  1-CPU exerciser and flagged as an *underprediction* for the heavily
  sharing 5-CPU exerciser;

plus the satellite fixes: NaN-safe sparklines, NaN-safe trace
reduction, and the ``--telemetry-out`` overwrite guard.
"""

from __future__ import annotations

import math

import pytest

from repro.cli import main
from repro.common.events import Simulator
from repro.observatory import (
    DivergenceBands,
    DivergenceMonitor,
    SpanTracer,
    trace_spans,
)
from repro.observatory.spans import STAGES, CacheSpan
from repro.reporting import sparkline
from repro.system import FireflyConfig, FireflyMachine
from repro.telemetry import TelemetryHub
from repro.trace.format import TraceRecord
from repro.trace.stats import reduce_trace
from repro.workloads.threads_exerciser import ExerciserParams, build_exerciser

pytestmark = pytest.mark.observatory


@pytest.fixture(scope="module")
def traced_run():
    """A 3-CPU exerciser run with spans kept, shared across tests."""
    kernel = build_exerciser(3, ExerciserParams(threads=12), seed=1987)
    hub, tracer = trace_spans(kernel, keep_spans=True)
    kernel.run(warmup_cycles=10_000, measure_cycles=50_000)
    tracer.close()
    return kernel, hub, tracer


# -- span decomposition -------------------------------------------------


class TestSpanDecomposition:
    def test_bus_span_wait_plus_transfer_is_total(self):
        hub = TelemetryHub(Simulator())
        tracer = SpanTracer(hub)
        probe = hub.probe("bus")
        probe.complete("bus.op", "bus", start=20, duration=4, op="MRead",
                       initiator=2, wait=7, cache_supplied=True,
                       victim=False)
        stats = tracer.kind_stats["bus.MRead"]
        assert stats.total.count == 1
        assert stats.total.mean == 11.0  # 7 wait + 4 transfer
        assert stats.wait.mean == 7.0
        assert stats.transfer.mean == 4.0
        assert stats.supply_counts == {"cache": 1}

    def test_every_cache_span_stages_sum_exactly(self, traced_run):
        _, _, tracer = traced_run
        assert tracer.cache_spans, "run produced no cache spans"
        for span in tracer.cache_spans:
            assert sum(span.stages.values()) == span.duration, span
            assert all(span.stages[s] >= 0 for s in STAGES), span

    def test_stage_cycles_aggregate_matches_span_durations(self, traced_run):
        _, _, tracer = traced_run
        for cpu, stats in tracer.cpu_stats.items():
            spans = [s for s in tracer.cache_spans if s.cpu == cpu]
            if not spans:
                continue
            total_stage = sum(stats.stage_cycles.values())
            total_duration = sum(s.duration for s in spans)
            assert total_stage == total_duration
            fractions = stats.stage_fractions()
            assert math.isclose(sum(fractions.values()), 1.0)

    def test_attributed_ops_never_exceed_bus_traffic(self, traced_run):
        kernel, _, tracer = traced_run
        attributed = sum(s.ops for s in tracer.cache_spans)
        bus_ops = kernel.machine.mbus.stats["ops"].total
        assert 0 < attributed <= bus_ops

    def test_dominant_stage_ties_resolve_in_report_order(self):
        span = CacheSpan("cache.Pdread.miss", cpu=0, start=0, duration=0,
                         ops=[])
        assert span.dominant_stage == "arb_wait"

    def test_summary_is_json_shaped(self, traced_run):
        import json
        _, _, tracer = traced_run
        summary = tracer.summary()
        json.dumps(summary)  # must be serialisable as-is
        assert "bus.MRead" in summary["kinds"]
        assert summary["kinds"]["bus.MRead"]["total"]["count"] > 0

    def test_render_mentions_every_kind(self, traced_run):
        _, _, tracer = traced_run
        text = tracer.render()
        for kind in tracer.kind_stats:
            assert kind in text
        assert "critical path" in text


class TestPercentiles:
    def test_streaming_percentiles_are_ordered(self, traced_run):
        _, _, tracer = traced_run
        for stats in tracer.kind_stats.values():
            hist = stats.total
            assert hist.p50 <= hist.p95 <= hist.p99 <= hist.max

    def test_p99_resolves_tail_p95_misses(self):
        from repro.common.stats import Histogram
        hist = Histogram("t", bounds=(0, 1, 2, 4, 8, 16, 32))
        for _ in range(98):
            hist.record(1)
        hist.record(30)
        hist.record(30)
        assert hist.p95 == 1
        assert hist.p99 == 32
        assert hist.to_dict()["p99"] == 32


# -- divergence monitor -------------------------------------------------


class TestDivergenceMonitor:
    @pytest.mark.slow
    def test_one_cpu_bus_load_is_in_band(self):
        kernel = build_exerciser(1, ExerciserParams(threads=8), seed=1987)
        monitor = DivergenceMonitor(kernel, interval=10_000)
        monitor.start()
        kernel.run(warmup_cycles=20_000, measure_cycles=60_000)
        monitor.stop()
        report = monitor.report()
        assert report.windows > 0
        assert report.verdicts["bus_load"].verdict == "in-band"

    @pytest.mark.slow
    def test_five_cpu_heavy_sharing_flags_underprediction(self):
        kernel = build_exerciser(5, ExerciserParams(threads=16), seed=1987)
        monitor = DivergenceMonitor(kernel, interval=10_000)
        monitor.start()
        kernel.run(warmup_cycles=20_000, measure_cycles=60_000)
        monitor.stop()
        report = monitor.report()
        verdict = report.verdicts["bus_load"]
        assert verdict.verdict == "underpredicts"
        assert verdict.mean_residual > report.verdicts["bus_load"].band
        assert not report.ok
        text = report.render()
        assert "underpredicts" in text

    def test_idle_window_is_skipped_not_crashed(self):
        machine = FireflyMachine(FireflyConfig(processors=2, seed=1))
        monitor = DivergenceMonitor(machine, interval=1_000)
        monitor.start()
        # No workload started: time passes, nothing retires.
        machine.sim.run_until(5_000)
        monitor.stop()
        assert monitor.evaluate_window() is None
        assert monitor.skipped_windows >= 1
        report = monitor.report()
        assert report.windows == 0
        assert report.verdicts["bus_load"].verdict == "in-band"

    def test_bands_validate(self):
        from repro.common.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            DivergenceBands(bus_load_abs=0.0)
        with pytest.raises(ConfigurationError):
            DivergenceMonitor(
                FireflyMachine(FireflyConfig(processors=1, seed=1)),
                interval=0)

    def test_out_of_band_emits_divergence_event(self):
        kernel = build_exerciser(5, ExerciserParams(threads=16), seed=1987)
        hub = TelemetryHub(kernel.sim)
        from repro.telemetry import attach_kernel
        attach_kernel(hub, kernel)
        seen = []
        hub.subscribe(seen.append, prefix="model.divergence")
        monitor = DivergenceMonitor(kernel, interval=10_000)
        monitor.start()
        kernel.run(warmup_cycles=10_000, measure_cycles=30_000)
        monitor.stop()
        assert seen, "no divergence event despite out-of-band residuals"
        args = dict(seen[0].args)
        assert "metrics" in args


# -- satellite: NaN-safe sparklines -------------------------------------


class TestSparklinePlaceholders:
    def test_empty_series_renders_empty(self):
        assert sparkline([], width=8) == ""

    def test_constant_series_renders_low_blocks(self):
        assert sparkline([5, 5, 5], width=8) == "▁▁▁"

    def test_nan_point_renders_gap(self):
        assert sparkline([0.0, float("nan"), 1.0], width=4) == "▁·█"

    def test_all_nan_renders_gaps(self):
        assert sparkline([float("nan")] * 3, width=8) == "···"

    def test_inf_renders_gap(self):
        out = sparkline([0.0, float("inf"), 1.0], width=4)
        assert out[1] == "·"

    def test_bucketed_nan_series_stays_finite(self):
        values = [float("nan") if i % 2 else float(i) for i in range(100)]
        out = sparkline(values, width=10)
        assert len(out) == 10
        assert "·" not in out  # every bucket has finite members

    def test_timeline_tables_survive_nan_series(self):
        from repro.reporting import render_series_table
        from repro.telemetry import Sampler
        sim = Simulator()
        sampler = Sampler(sim, interval=10)
        sampler.add("nan_only", lambda: float("nan"))
        sampler.start()
        sim.run_until(50)
        assert "no finite samples" in render_series_table(sampler)


# -- satellite: NaN-safe trace reduction --------------------------------


class TestTraceReductionZeroRefs:
    def test_zero_reference_trace_reduces_to_nan_miss_rate(self):
        records = [TraceRecord(refs=()) for _ in range(4)]
        reduced = reduce_trace(records)
        assert reduced.instructions == 4
        assert reduced.references == 0
        assert math.isnan(reduced.miss_rate)
        assert reduced.dirty_fraction == 0.0
        assert reduced.mix.total == 0.0

    def test_nan_miss_rate_rejected_cleanly_by_model(self):
        from repro.analytic.queueing import AnalyticParameters
        from repro.common.errors import ConfigurationError
        records = [TraceRecord(refs=())]
        reduced = reduce_trace(records)
        with pytest.raises(ConfigurationError):
            AnalyticParameters(miss_rate=reduced.miss_rate)


# -- satellite: --telemetry-out overwrite guard -------------------------


class TestTelemetryOverwriteGuard:
    ARGS = ["exerciser", "--processors", "1", "--threads", "4",
            "--measure-cycles", "2000"]

    def test_refuses_existing_file(self, tmp_path, capsys):
        target = tmp_path / "run.trace.json"
        target.write_text("precious")
        code = main(self.ARGS + ["--telemetry-out", str(target)])
        assert code == 1
        assert "already exists" in capsys.readouterr().err
        assert target.read_text() == "precious"

    def test_force_overwrites(self, tmp_path):
        target = tmp_path / "run.trace.json"
        target.write_text("precious")
        code = main(self.ARGS + ["--telemetry-out", str(target), "--force"])
        assert code == 0
        assert target.read_text() != "precious"

    def test_fresh_file_needs_no_force(self, tmp_path):
        target = tmp_path / "run.trace.json"
        code = main(self.ARGS + ["--telemetry-out", str(target)])
        assert code == 0
        assert target.exists()


# -- CLI flags ----------------------------------------------------------


class TestObservatoryCli:
    def test_spans_and_divergence_flags(self, capsys):
        code = main(["exerciser", "--processors", "2", "--threads", "8",
                     "--measure-cycles", "20000", "--spans",
                     "--divergence"])
        assert code == 0
        out = capsys.readouterr().out
        assert "span latencies" in out
        assert "analytic-model divergence" in out

    def test_simulate_spans_flag(self, capsys):
        code = main(["simulate", "--processors", "2", "--skip-check",
                     "--warmup-cycles", "5000", "--measure-cycles",
                     "20000", "--spans"])
        assert code == 0
        assert "span latencies" in capsys.readouterr().out
