"""Multi-word line geometries (the A7 ablation's substrate).

The real Firefly has one-longword lines; the generalized geometry
exists for the line-size ablation and must be just as coherent —
including the subtle case of concurrent writers to *different words of
the same line*, where grant-time payload merging is what keeps one
writer from clobbering the other.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.qbus import QBus
from repro.common.types import AccessKind, MemRef
from tests.conftest import MiniRig


def make_rig4(protocol="firefly", caches=3):
    return MiniRig(protocol=protocol, caches=caches, lines=16,
                   words_per_line=4)


class TestBasics:
    def test_line_fill_brings_neighbours(self):
        rig = make_rig4()
        for i in range(4):
            rig.memory.poke(8 + i, 100 + i)
        assert rig.read(0, 9) == 101
        # The whole line is now resident: neighbours hit.
        misses = rig.caches[0].stats["dread.miss"].total
        assert rig.read(0, 8) == 100
        assert rig.read(0, 11) == 103
        assert rig.caches[0].stats["dread.miss"].total == misses

    def test_write_updates_one_word_only(self):
        rig = make_rig4()
        for i in range(4):
            rig.memory.poke(8 + i, 100 + i)
        rig.write(0, 9, 999)
        assert rig.read(1, 8) == 100
        assert rig.read(1, 9) == 999
        assert rig.read(1, 10) == 102
        rig.check_coherence()

    def test_victim_write_back_preserves_whole_line(self):
        rig = make_rig4()
        rig.write(0, 8, 1)
        rig.write(0, 9, 2)
        rig.write(0, 10, 3)
        rig.read(0, 8 + 64)   # conflict (16 lines * 4 words)
        assert [rig.memory.peek(8 + i) for i in range(3)] == [1, 2, 3]

    def test_shared_write_through_carries_whole_line(self):
        rig = make_rig4()
        rig.write(0, 8, 1)
        rig.read(1, 8)         # share the line
        rig.write(0, 9, 2)     # write-through of the full line
        assert rig.caches[1].peek(8) == 1
        assert rig.caches[1].peek(9) == 2
        rig.check_coherence()


class TestConcurrentWordMerging:
    def test_concurrent_writers_to_different_words_both_survive(self):
        """The byte-enable merge: two writers queue writes to words 0
        and 1 of the same shared line; both words must survive."""
        rig = make_rig4()
        base = 16
        for i in range(3):
            rig.read(i, base)   # everyone shares the line

        def writer(cache_index, offset, value):
            def gen():
                yield from rig.caches[cache_index].cpu_write(
                    MemRef(base + offset, AccessKind.DATA_WRITE), value)
            return gen()

        rig.sim.process(writer(0, 0, 111), "w0")
        rig.sim.process(writer(1, 1, 222), "w1")
        rig.sim.run()
        rig.check_coherence()
        assert rig.memory.peek(base) == 111
        assert rig.memory.peek(base + 1) == 222
        for i in range(3):
            assert rig.caches[i].peek(base) == 111
            assert rig.caches[i].peek(base + 1) == 222

    @given(offsets=st.lists(st.integers(min_value=0, max_value=3),
                            min_size=2, max_size=3, unique=True),
           protocol=st.sampled_from(["firefly", "dragon"]))
    @settings(max_examples=40, deadline=None)
    def test_property_distinct_word_writes_merge(self, offsets, protocol):
        rig = make_rig4(protocol=protocol, caches=len(offsets))
        base = 32
        for i in range(len(offsets)):
            rig.read(i, base)

        def writer(cache_index, offset):
            def gen():
                yield from rig.caches[cache_index].cpu_write(
                    MemRef(base + offset, AccessKind.DATA_WRITE),
                    1000 + offset)
            return gen()

        for i, offset in enumerate(offsets):
            rig.sim.process(writer(i, offset), f"w{i}")
        rig.sim.run()
        rig.check_coherence()
        for offset in offsets:
            # Under Dragon memory may be stale (owner holds the truth),
            # so check the coherent view, not raw memory.
            holder_values = {c.peek(base + offset) for c in rig.caches
                             if c.peek(base + offset) is not None}
            assert holder_values == {1000 + offset}


class TestDmaMultiword:
    def test_dma_write_miss_read_modify_writes(self):
        rig = make_rig4(caches=2)
        qbus = QBus(rig.sim, rig.caches[0])
        qbus.map.map_region(0, 4096, words=1024)
        for i in range(4):
            rig.memory.poke(4096 + i, 10 + i)

        def gen():
            yield from qbus.dma_write_block(1, [99])

        rig.run(gen())
        # Only the second word changed; neighbours preserved via RMW.
        assert [rig.memory.peek(4096 + i) for i in range(4)] == \
            [10, 99, 12, 13]

    def test_dma_sees_dirty_multiword_lines(self):
        rig = make_rig4(caches=2)
        qbus = QBus(rig.sim, rig.caches[0])
        qbus.map.map_region(0, 4096, words=1024)
        rig.write(1, 4098, 777)   # dirty in CPU 1's cache

        def gen():
            values = yield from qbus.dma_read_block(0, 4)
            return values

        values = rig.run(gen())
        assert values[2] == 777
        rig.check_coherence()


class TestAllProtocolsMultiword:
    @pytest.mark.parametrize("protocol", ["firefly", "write-through",
                                          "berkeley", "dragon", "mesi",
                                          "write-once"])
    def test_sequential_coherence(self, protocol):
        rig = make_rig4(protocol=protocol, caches=3)
        token = 0
        for round_number in range(12):
            writer = round_number % 3
            address = 8 + (round_number % 8)
            token += 1
            rig.write(writer, address, token)
            for reader in range(3):
                assert rig.read(reader, address) == token
        rig.check_coherence()
