"""The telemetry layer: probes, hub, samplers, exporters, renderers.

Covers the four contract points of docs/TELEMETRY.md:

- subscriber fan-out (prefix matching, unsubscribe);
- the disabled path allocates *nothing* (``hub.emitted`` stays 0);
- the Chrome-trace exporter's golden output for the scripted Figure 4
  two-cache sharing scenario;
- the sampler's bus-load trajectory agrees with the windowed
  ``Utilization.load`` ground truth (property test).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.stats import Utilization
from repro.common.types import MBUS_OP_CYCLES
from repro.reporting import render_phase_timeline, sparkline
from repro.telemetry import (
    Sampler,
    TelemetryHub,
    attach_machine,
    chrome_trace,
    delta_gauge,
    jsonl_records,
    telemetry_for_machine,
    write_export,
)

from tests.conftest import MiniRig

pytestmark = pytest.mark.telemetry


def _attach_rig(rig: MiniRig) -> TelemetryHub:
    """Wire a hub into a MiniRig (bus + caches, no machine object)."""
    hub = TelemetryHub(rig.sim)
    rig.mbus.probe = hub.probe("bus")
    for cache in rig.caches:
        cache.probe = hub.probe("cache")
    return hub


# -- hub and probes -----------------------------------------------------


class TestHub:
    def test_subscribe_receives_matching_events(self, rig):
        hub = _attach_rig(rig)
        seen = []
        hub.subscribe(seen.append, prefix="bus.")
        rig.read(0, 0x100)
        assert seen, "subscriber saw no bus events"
        assert all(e.name.startswith("bus.") for e in seen)
        # cache events flowed to the hub but not to this subscriber.
        assert hub.events_named("cache.")
        assert not [e for e in seen if e.name.startswith("cache.")]

    def test_unsubscribe_stops_delivery(self, rig):
        hub = _attach_rig(rig)
        seen = []
        fn = hub.subscribe(seen.append)
        rig.read(0, 0x100)
        count = len(seen)
        assert count > 0
        hub.unsubscribe(fn)
        rig.read(1, 0x200)
        assert len(seen) == count

    def test_disabled_hub_emits_nothing(self, rig):
        hub = _attach_rig(rig)
        hub.enabled = False
        rig.read(0, 0x100)
        rig.write(1, 0x100, 7)
        rig.read(1, 0x300)
        assert hub.emitted == 0
        assert len(hub) == 0
        # Re-enabling flips every handed-out probe live again.
        hub.enabled = True
        rig.read(0, 0x500)
        assert hub.emitted > 0

    def test_null_probe_components_cost_nothing(self, rig):
        # No hub attached at all: the default NULL_PROBE path.
        rig.read(0, 0x100)
        rig.write(0, 0x100, 1)
        assert rig.mbus.stats["ops"].total > 0  # the rig did real work

    def test_buffer_bound_counts_drops(self, rig):
        hub = TelemetryHub(rig.sim, max_events=3)
        rig.mbus.probe = hub.probe("bus")
        for i in range(4):
            rig.read(0, 0x100 * (i + 1))
        assert len(hub) == 3
        assert hub.dropped == hub.emitted - 3 > 0


# -- the golden Figure 4 scenario ---------------------------------------


def figure4_rig():
    """The paper's shared-read-then-write sequence on two caches.

    cache0 read-misses a word (memory supplies), cache1 reads the same
    word (cache0 asserts MShared and supplies), then cache0 writes it —
    a conditional write-through that sees MShared asserted.
    """
    rig = MiniRig(protocol="firefly", caches=2)
    hub = _attach_rig(rig)
    rig.read(0, 0x40)
    rig.read(1, 0x40)
    rig.write(0, 0x40, 99)
    return rig, hub


class TestChromeTraceGolden:
    def test_bus_track_sequence(self):
        _, hub = figure4_rig()
        ops = [(dict(e.args)["op"], dict(e.args)["shared"],
                dict(e.args)["cache_supplied"])
               for e in hub.events_named("bus.op")]
        assert ops == [
            ("MRead", False, False),   # cold miss: memory supplies
            ("MRead", True, True),     # sharer asserts MShared, supplies
            ("MWrite", True, False),   # write-through sees MShared
        ]

    def test_cache_transitions_walk_figure3(self):
        _, hub = figure4_rig()
        arcs = [(e.track, dict(e.args)["stimulus"],
                 dict(e.args)["before"], dict(e.args)["after"])
                for e in hub.events_named("cache.transition")]
        assert ("cache0", "Pdread.miss", "INVALID", "VALID") in arcs
        assert ("cache1", "Pdread.miss", "INVALID", "SHARED") in arcs
        # cache0 was snooped by cache1's read: V -> S.
        assert ("cache0", "MMRead", "VALID", "SHARED") in arcs
        # cache0's write hit a SHARED line: write-through, stays SHARED.
        assert ("cache0", "Pwrite.hit", "SHARED", "SHARED") in arcs
        # cache1 was snooped by the write-through and stays SHARED.
        assert ("cache1", "MMWrite", "SHARED", "SHARED") in arcs

    def test_chrome_trace_structure(self, tmp_path):
        _, hub = figure4_rig()
        path = tmp_path / "fig4.trace.json"
        assert write_export(str(path), hub) == "chrome"
        trace = json.loads(path.read_text())

        events = trace["traceEvents"]
        thread_names = {e["tid"]: e["args"]["name"] for e in events
                        if e["name"] == "thread_name"}
        assert set(thread_names.values()) == {"bus", "cache0", "cache1"}

        by_tid = {tid: name for tid, name in thread_names.items()}
        bus_ops = [e for e in events if e["name"] == "bus.op"]
        assert len(bus_ops) == 3
        for op in bus_ops:
            assert op["ph"] == "X"
            assert by_tid[op["tid"]] == "bus"
            # 4 MBus cycles at 100 ns = 0.4 us.
            assert op["dur"] == pytest.approx(MBUS_OP_CYCLES * 0.1)
        # Timestamps ascend along the bus track.
        times = [e["ts"] for e in bus_ops]
        assert times == sorted(times)

        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        assert trace["otherData"]["dropped"] == 0

    def test_jsonl_round_trips(self):
        _, hub = figure4_rig()
        records = list(jsonl_records(hub))
        assert records[0]["type"] == "meta"
        events = [r for r in records if r["type"] == "event"]
        assert len(events) == len(hub.events)
        assert {e["name"] for e in events} >= {"bus.op", "cache.transition"}
        # Every record is JSON-serialisable as-is.
        for record in records:
            json.loads(json.dumps(record))


# -- samplers -----------------------------------------------------------


class TestSampler:
    def test_sampler_ticks_and_stops(self, sim):
        clock = Sampler(sim, interval=10)
        series = clock.add("t", lambda: sim.now)
        clock.start()
        sim.run_until(55)
        assert clock.ticks == 5
        assert series.values() == [10.0, 20.0, 30.0, 40.0, 50.0]
        clock.stop()
        sim.run_until(200)
        assert clock.ticks == 5  # no further samples
        # and the event heap drained (run() would have terminated).

    def test_duplicate_series_rejected(self, sim):
        sampler = Sampler(sim, interval=10)
        sampler.add("x", lambda: 0)
        with pytest.raises(ConfigurationError):
            sampler.add("x", lambda: 1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 50), st.integers(0, 30)),
                    min_size=1, max_size=30),
           st.integers(7, 40))
    def test_delta_samples_integrate_to_utilization(self, bursts, interval):
        """Σ (sample × Δt) == busy_total == load × elapsed.

        The delta-gauge bus-load samples are interval averages, so
        their time-weighted sum telescopes to the cumulative busy time
        that ``Utilization.load`` divides by the window — the sampled
        trajectory and the windowed scalar must agree exactly at every
        tick boundary, whatever the burst pattern.
        """
        sim = Simulator()
        utilization = Utilization("bus")

        def worker():
            for gap, busy in bursts:
                yield sim.timeout(gap)
                utilization.add_busy(busy)

        sim.process(worker(), "bursts")
        sampler = Sampler(sim, interval=interval)
        series = sampler.add("load", delta_gauge(
            lambda: utilization.busy_total, lambda: sim.now))
        sampler.start()
        horizon = sum(gap for gap, _ in bursts) + interval
        ticks = -(-horizon // interval)  # ceil: land exactly on a tick
        sim.run_until(ticks * interval)
        sampler.stop()

        integrated = sum(v * interval for v in series.values())
        assert integrated == pytest.approx(utilization.busy_total)
        assert integrated == pytest.approx(
            utilization.load(sim.now) * sim.now)

    def test_machine_sampler_matches_bus_load(self):
        """End to end: sampled mean bus load == MachineMetrics bus load."""
        from repro.system import FireflyConfig, FireflyMachine
        machine = FireflyMachine(FireflyConfig(processors=2, seed=7))
        hub, sampler = telemetry_for_machine(machine, interval=1_000)
        sampler.start()
        machine.run(warmup_cycles=0, measure_cycles=20_000)
        sampler.stop()
        values = sampler.series("bus.load").values()
        assert len(values) == 20
        mean = sum(values) / len(values)
        # The samples tile the window exactly, so their mean telescopes
        # to the windowed load; only same-timestamp event ordering at
        # the final boundary can shift a handful of busy cycles.
        assert mean == pytest.approx(machine.mbus.load(), abs=0.01)
        assert hub.events_named("bus.op")


# -- rendering ----------------------------------------------------------


class TestRendering:
    def test_sparkline_shapes(self):
        assert sparkline([0, 1, 2, 3], width=4, lo=0, hi=3) == "▁▃▆█"
        assert sparkline([5, 5, 5], width=8) == "▁▁▁"
        assert sparkline([], width=8) == ""
        assert len(sparkline(list(range(1000)), width=20)) == 20

    def test_phase_timeline_renders(self):
        from repro.system import FireflyConfig, FireflyMachine
        machine = FireflyMachine(FireflyConfig(processors=2, seed=7))
        hub, sampler = telemetry_for_machine(machine, interval=1_000)
        sampler.start()
        machine.run(warmup_cycles=5_000, measure_cycles=10_000)
        sampler.stop()
        text = render_phase_timeline(hub, sampler)
        assert "phase warmup" in text
        assert "phase measure" in text
        assert "bus.load" in text
        assert "event mix" in text


# -- attachment ---------------------------------------------------------


class TestAttachment:
    def test_attach_machine_wires_every_component(self):
        from repro.system import FireflyConfig, FireflyMachine
        machine = FireflyMachine(FireflyConfig(processors=3, seed=7))
        hub = TelemetryHub(machine.sim)
        attach_machine(hub, machine)
        assert machine.probe.active
        assert machine.mbus.probe.active
        assert all(c.probe.active for c in machine.caches)
        machine.run(warmup_cycles=0, measure_cycles=5_000)
        assert {"bus", "machine"} <= set(hub.tracks())
