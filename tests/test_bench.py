"""The continuous benchmark harness and its regression detector.

The detector's contract on synthetic BENCH trajectories: a clean
improvement and a clean regression are both called out, while a noisy
host whose trials scatter more than the movement stays "flat" — the
noise-aware margin prevents a jittery machine from crying wolf.  The
CLI end of the contract: ``bench --compare`` exits nonzero against a
doctored (2x faster) previous file, i.e. an injected >= 20% synthetic
regression is fatal.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.observatory import (
    BENCH_SCHEMA,
    bench_files,
    compare_bench,
    next_bench_path,
    run_scenario,
    scenario_names,
    validate_bench,
    write_bench,
)
from repro.observatory.bench import SCENARIOS

pytestmark = pytest.mark.observatory


def synthetic_bench(rates, noise=0.0, mode="full"):
    """A schema-valid BENCH document from {scenario: ticks/sec}."""
    scenarios = {}
    for name, rate in rates.items():
        scenarios[name] = {
            "description": name,
            "trials": [{"seed": 1987, "cycles": 100_000,
                        "wall_seconds": 100_000 / rate,
                        "ticks_per_second": rate}],
            "median_ticks_per_second": rate,
            "noise": noise,
            "metrics": {"bus_load": 0.5},
        }
    return {"schema": BENCH_SCHEMA, "mode": mode,
            "host": {"platform": "test", "python": "3", "machine": "x"},
            "scenarios": scenarios, "overhead": None}


# -- regression detector on synthetic trajectories ----------------------


class TestCompareBench:
    def test_clean_regression_detected(self):
        prev = synthetic_bench({"a": 100_000.0})
        cur = synthetic_bench({"a": 70_000.0})  # -30% > 20% threshold
        report = compare_bench(prev, cur)
        assert not report.ok
        assert [d.status for d in report.deltas] == ["regression"]

    def test_clean_improvement_detected(self):
        prev = synthetic_bench({"a": 100_000.0})
        cur = synthetic_bench({"a": 150_000.0})
        report = compare_bench(prev, cur)
        assert report.ok
        assert [d.status for d in report.deltas] == ["improvement"]

    def test_small_movement_is_flat(self):
        prev = synthetic_bench({"a": 100_000.0})
        cur = synthetic_bench({"a": 90_000.0})  # -10% < 20% threshold
        report = compare_bench(prev, cur)
        assert [d.status for d in report.deltas] == ["flat"]

    def test_noisy_host_widens_the_margin(self):
        # A 25% drop would regress at the default threshold, but the
        # trials scattered by 30%, so the margin widens and it's flat.
        prev = synthetic_bench({"a": 100_000.0}, noise=0.30)
        cur = synthetic_bench({"a": 75_000.0})
        report = compare_bench(prev, cur)
        assert [d.status for d in report.deltas] == ["flat"]
        assert report.deltas[0].margin == pytest.approx(0.30)
        # Beyond even the noise margin it regresses again.
        worse = synthetic_bench({"a": 60_000.0})
        assert not compare_bench(prev, worse).ok

    def test_threshold_is_configurable(self):
        prev = synthetic_bench({"a": 100_000.0})
        cur = synthetic_bench({"a": 90_000.0})
        report = compare_bench(prev, cur, threshold=0.05)
        assert [d.status for d in report.deltas] == ["regression"]
        with pytest.raises(ConfigurationError):
            compare_bench(prev, cur, threshold=0.0)

    def test_disjoint_scenarios_are_skipped(self):
        prev = synthetic_bench({"a": 100_000.0, "gone": 1.0})
        cur = synthetic_bench({"a": 100_000.0, "new": 1.0})
        report = compare_bench(prev, cur)
        assert sorted(report.skipped) == ["gone", "new"]
        assert report.ok

    def test_mode_mismatch_is_flagged(self):
        prev = synthetic_bench({"a": 1.0}, mode="full")
        cur = synthetic_bench({"a": 1.0}, mode="quick")
        report = compare_bench(prev, cur)
        assert report.mode_mismatch
        assert "not like-for-like" in report.render()


# -- schema validation and file handling --------------------------------


class TestBenchFiles:
    def test_synthetic_document_is_schema_valid(self):
        assert validate_bench(synthetic_bench({"a": 1.0})) == []

    def test_validation_catches_damage(self):
        doc = synthetic_bench({"a": 1.0})
        doc["schema"] = "nonsense/9"
        doc["scenarios"]["a"]["trials"] = []
        doc["scenarios"]["a"]["metrics"] = {}
        problems = validate_bench(doc)
        assert any("schema" in p for p in problems)
        assert any("trials" in p for p in problems)
        assert any("metrics" in p for p in problems)

    def test_write_refuses_invalid_document(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_bench({"schema": "bad"}, tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_bench_files_order_and_next_index(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_0001.json"
        for n in (3, 1, 10):
            (tmp_path / f"BENCH_{n:04d}.json").write_text("{}")
        (tmp_path / "BENCH_readme.txt").write_text("not a bench")
        names = [p.name for p in bench_files(tmp_path)]
        assert names == ["BENCH_0001.json", "BENCH_0003.json",
                         "BENCH_0010.json"]
        assert next_bench_path(tmp_path).name == "BENCH_0011.json"

    def test_pinned_scenario_registry(self):
        assert scenario_names() == ["exerciser-1cpu", "exerciser-5cpu",
                                    "table1-sweep", "protocol-comparison",
                                    "chaos-smoke", "serve-smoke",
                                    "core-microbench", "vector-stat"]
        for scenario in SCENARIOS:
            assert scenario.quick.total < scenario.full.total


# -- real runs ----------------------------------------------------------


class TestBenchRuns:
    @pytest.mark.slow
    def test_run_scenario_measures_throughput_and_metrics(self):
        scenario = SCENARIOS[0]  # exerciser-1cpu
        result = run_scenario(scenario, quick=True, trials=1)
        assert len(result.trials) == 1
        trial = result.trials[0]
        assert trial.cycles >= scenario.quick.total
        assert trial.ticks_per_second > 0
        assert result.noise == 0.0
        assert 0.0 < result.metrics["bus_load"] < 1.0
        assert result.metrics["mean_tpi"] > 0

    def test_trial_count_validation(self):
        with pytest.raises(ConfigurationError):
            run_scenario(SCENARIOS[0], trials=0)
        with pytest.raises(ConfigurationError):
            run_scenario(SCENARIOS[0], trials=99)

    @pytest.mark.slow
    def test_cli_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = ["bench", "--quick", "--trials", "1", "--scenario",
                "exerciser-1cpu", "--skip-overhead", "--out-dir",
                str(tmp_path)]
        assert main(base) == 0
        first = tmp_path / "BENCH_0001.json"
        document = json.loads(first.read_text())
        assert validate_bench(document) == []
        # Doctor the baseline to look 2x faster: the fresh rerun below
        # then measures an injected ~50% throughput regression.
        for entry in document["scenarios"].values():
            entry["median_ticks_per_second"] *= 2
            for trial in entry["trials"]:
                trial["ticks_per_second"] *= 2
        first.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(base + ["--compare"]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert (tmp_path / "BENCH_0002.json").exists()

    def test_cli_compare_without_previous_is_ok(self, tmp_path, capsys):
        # table1-sweep quick with 1 trial is the cheapest real scenario
        # combination that still exercises the full write path.
        code = main(["bench", "--quick", "--trials", "1", "--scenario",
                     "table1-sweep", "--skip-overhead", "--out-dir",
                     str(tmp_path), "--compare"])
        assert code == 0
        assert "no previous BENCH" in capsys.readouterr().out

    def test_cli_rejects_unknown_scenario(self, tmp_path, capsys):
        code = main(["bench", "--scenario", "does-not-exist",
                     "--out-dir", str(tmp_path)])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err
