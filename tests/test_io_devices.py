"""I/O device models: Ethernet, disk, display, and their assembly."""

import pytest

from repro.common.errors import ConfigurationError
from repro.io import (
    DiskController,
    DiskParams,
    DisplayCommand,
    EthernetController,
    EthernetParams,
    IoSubsystem,
    RemoteEndpoint,
)
from repro.io.mdc import ENTRY_WORDS, MdcParams, MdcWorkQueue
from repro.system import FireflyConfig, FireflyMachine


def io_machine(processors=2, **kw):
    machine = FireflyMachine(FireflyConfig(processors=processors,
                                           io_enabled=True, **kw))
    return machine, IoSubsystem(machine)


def run_gen(machine, gen):
    proc = machine.sim.process(gen, "io-test")
    machine.sim.run()
    assert proc.done
    return proc.result


class TestEthernet:
    def test_frame_bits(self):
        params = EthernetParams()
        # 64-byte payload: (64+18)*8 + 64 + 96 = 816 bits.
        assert params.frame_bits(64) == 816
        with pytest.raises(ConfigurationError):
            params.frame_bits(0)
        with pytest.raises(ConfigurationError):
            params.frame_bits(3000)

    def test_transmit_timing_includes_wire_and_overhead(self):
        machine, io = io_machine()

        def gen():
            start = machine.sim.now
            yield from io.ethernet.transmit_from(0, 1000)
            return machine.sim.now - start

        elapsed = run_gen(machine, gen())
        wire = EthernetParams().frame_bits(1000)
        overhead = EthernetParams().controller_overhead_cycles
        assert elapsed >= wire + overhead

    def test_frames_serialise_on_controller(self):
        machine, io = io_machine()
        finish_times = []

        def sender():
            yield from io.ethernet.transmit_from(0, 500)
            finish_times.append(machine.sim.now)

        machine.sim.process(sender(), "a")
        machine.sim.process(sender(), "b")
        machine.sim.run()
        assert len(finish_times) == 2
        gap = abs(finish_times[1] - finish_times[0])
        assert gap >= EthernetParams().frame_bits(500)

    def test_zero_and_negative_payloads_rejected_eagerly(self):
        machine, io = io_machine()
        # The ValueError fires at call time, before any simulated step:
        # a bad transfer never enqueues work on the controller.
        with pytest.raises(ValueError,
                           match=r"EthernetController\.transmit_from: "
                                 r"payload_bytes must be positive, "
                                 r"got 0"):
            io.ethernet.transmit_from(0, 0)
        with pytest.raises(ValueError,
                           match=r"EthernetController\.receive_into: "
                                 r"payload_bytes must be positive, "
                                 r"got -4"):
            io.ethernet.receive_into(0, -4)
        with pytest.raises(ValueError,
                           match=r"EthernetController\."
                                 r"receive_delivered_into"):
            io.ethernet.receive_delivered_into(0, -1)
        assert io.ethernet.stats["tx_frames"].total == 0
        assert machine.sim.now == 0

    def test_receive_lands_in_memory(self):
        machine, io = io_machine()
        base, qbus_addr = io.alloc(16, "rx buffer")

        def gen():
            yield from io.ethernet.receive_into(qbus_addr, 16,
                                                values=[1, 2, 3, 4])

        run_gen(machine, gen())
        assert [machine.memory.peek(base + i) for i in range(4)] == \
            [1, 2, 3, 4]

    def test_stats_and_goodput(self):
        machine, io = io_machine()

        def gen():
            yield from io.ethernet.transmit_from(0, 1200)

        io.ethernet.stats.mark_all()
        run_gen(machine, gen())
        window = machine.sim.now
        assert io.ethernet.stats["tx_frames"].total == 1
        assert io.ethernet.goodput_bits_per_second(window) > 0
        assert 0 < io.ethernet.wire_utilization(window) < 1

    def test_remote_endpoint(self):
        machine, io = io_machine()
        remote = RemoteEndpoint(turnaround_cycles=1234)

        def gen():
            start = machine.sim.now
            yield from remote.service(machine.sim)
            return machine.sim.now - start

        assert run_gen(machine, gen()) == 1234
        assert remote.requests_served == 1
        with pytest.raises(ConfigurationError):
            RemoteEndpoint(-1)


class TestDisk:
    def test_write_read_roundtrip_through_memory(self):
        machine, io = io_machine()
        base, qbus_addr = io.alloc(256, "disk buffer")
        for i in range(128):
            machine.memory.poke(base + i, 5000 + i)

        def gen():
            yield from io.disk.write_blocks(10, 1, qbus_addr)
            # wipe memory, read back
            for i in range(128):
                machine.memory.poke(base + i, 0)
            yield from io.disk.read_blocks(10, 1, qbus_addr)

        run_gen(machine, gen())
        assert machine.memory.peek(base) == 5000
        assert machine.memory.peek(base + 127) == 5127

    def test_media_persists(self):
        machine, io = io_machine()
        base, qbus_addr = io.alloc(128, "buf")
        machine.memory.poke(base, 77)

        def gen():
            yield from io.disk.write_blocks(3, 1, qbus_addr)

        run_gen(machine, gen())
        assert io.disk.peek_block(3)[0] == 77

    def test_seek_scales_with_distance(self):
        machine, io = io_machine()
        _, qbus_addr = io.alloc(128, "buf")
        times = []

        def gen(lbn):
            start = machine.sim.now
            yield from io.disk.read_blocks(lbn, 1, qbus_addr)
            times.append(machine.sim.now - start)

        run_gen(machine, gen(0))
        run_gen(machine, gen(100_000))  # long seek
        run_gen(machine, gen(100_001))  # adjacent: short seek
        assert times[1] > times[2]

    def test_bounds_checked(self):
        machine, io = io_machine()
        with pytest.raises(ConfigurationError):
            run_gen(machine, io.disk.read_blocks(-1, 1, 0))
        with pytest.raises(ConfigurationError):
            run_gen(machine, io.disk.read_blocks(10, 0, 0))
        with pytest.raises(ConfigurationError):
            run_gen(machine, io.disk.read_blocks(
                io.disk.params.blocks, 1, 0))

    def test_requests_serialise_on_mechanism(self):
        machine, io = io_machine()
        _, qbus_addr = io.alloc(256, "buf")
        finishes = []

        def reader(lbn):
            yield from io.disk.read_blocks(lbn, 1, qbus_addr)
            finishes.append(machine.sim.now)

        machine.sim.process(reader(5), "a")
        machine.sim.process(reader(6), "b")
        machine.sim.run()
        assert len(finishes) == 2 and finishes[0] != finishes[1]


class TestMdc:
    def test_fill_rect_paints_and_costs_pixel_time(self):
        machine, io = io_machine()
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.FILL_RECT,
                                    (10, 10, 100, 50))
        io.start()
        machine.sim.run_until(50_000)
        assert io.mdc.stats["pixels_painted"].total == 5000
        assert io.mdc.lit_pixels() == 5000

    def test_paint_chars_rate(self):
        """~20,000 chars/sec: 100 chars take ~50,000 cycles (5 ms)."""
        machine, io = io_machine()
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.PAINT_CHARS,
                                    (0, 0, 100))
        io.start()
        machine.sim.run_until(80_000)
        assert io.mdc.stats["chars_painted"].total == 100

    def test_clipping(self):
        machine, io = io_machine()
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.FILL_RECT,
                                    (1000, 700, 200, 200))
        io.start()
        machine.sim.run_until(100_000)
        painted = io.mdc.stats["pixels_painted"].total
        assert painted == (1024 - 1000) * (768 - 700)

    def test_blt_from_memory_unpacks_bits(self):
        machine, io = io_machine()
        src, src_qbus = io.alloc(2, "blt source")
        machine.memory.poke(src, 0b1011)
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.BLT_FROM_MEMORY,
                                    (src_qbus, 1, 0, 0))
        io.start()
        machine.sim.run_until(50_000)
        fb = io.mdc.framebuffer
        assert list(fb[0, :4]) == [1, 1, 0, 1]

    def test_queue_wraps_and_processes_in_order(self):
        machine, io = io_machine()
        for i in range(5):
            io.mdc_queue.enqueue_direct(machine.memory,
                                        DisplayCommand.FILL_RECT,
                                        (0, i, 10, 1))
        io.start()
        machine.sim.run_until(100_000)
        assert io.mdc.stats["fills"].total == 5

    def test_input_deposits_at_sixty_hertz(self):
        machine, io = io_machine()
        io.start()
        machine.sim.run_until(1_000_000)  # 100 ms -> 6 deposits
        deposits = io.mdc.stats["input_deposits"].total
        assert 5 <= deposits <= 7
        assert machine.memory.peek(io.mdc.input_firefly_base + 1) >= 0

    def test_queue_overflow_detected(self):
        machine, io = io_machine()
        queue = io.mdc_queue
        with pytest.raises(Exception):
            for _ in range(queue.capacity + 1):
                queue.enqueue_direct(machine.memory, DisplayCommand.NOP)

    def test_ascii_render(self):
        machine, io = io_machine()
        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.FILL_RECT,
                                    (0, 0, 1024, 100))
        io.start()
        machine.sim.run_until(200_000)
        art = io.mdc.render_ascii(scale=128)
        assert "#" in art


class TestMultipleDisplays:
    def test_two_mdcs_on_one_machine(self):
        """Paper §5: 'It is easy to plug multiple display controllers
        into a single Firefly ... Many SRC researchers now have
        multiple displays.'  Two MDCs, two work queues, one QBus."""
        from repro.io.mdc import DisplayController, MdcWorkQueue
        machine, io = io_machine()
        base2, qbus2 = io.alloc(2 + 16 * ENTRY_WORDS, "second queue")
        input2, input2_q = io.alloc(8, "second input area")
        queue2 = MdcWorkQueue(base2, qbus2, capacity=16)
        mdc2 = DisplayController(machine.sim, machine.qbus, queue2,
                                 input2, input2_q, name="mdc2")

        io.mdc_queue.enqueue_direct(machine.memory,
                                    DisplayCommand.FILL_RECT,
                                    (0, 0, 100, 100))
        queue2.enqueue_direct(machine.memory, DisplayCommand.FILL_RECT,
                              (0, 0, 50, 50))
        io.start()
        mdc2.start()
        machine.sim.run_until(300_000)
        assert io.mdc.lit_pixels() == 100 * 100
        assert mdc2.lit_pixels() == 50 * 50
        # Both poll loops and both input deposits share the QBus.
        assert mdc2.stats["polls"].total > 0
        assert io.mdc.stats["polls"].total > 0


class TestSubsystem:
    def test_requires_qbus(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        with pytest.raises(ConfigurationError):
            IoSubsystem(machine)

    def test_arena_below_dma_reach(self):
        machine, io = io_machine()
        assert io.arena_base + io.arena_words <= (16 << 20) // 4

    def test_alloc_and_translate(self):
        machine, io = io_machine()
        firefly, qbus = io.alloc(64, "x")
        assert io.to_qbus(firefly) == qbus
        assert machine.qbus.map.translate(qbus) == firefly
        with pytest.raises(ConfigurationError):
            io.to_qbus(0)

    def test_arena_exhaustion(self):
        machine, io = io_machine()
        with pytest.raises(ConfigurationError):
            io.alloc(io.arena_words + 1, "too big")

    def test_display_traffic_shows_on_mbus(self):
        """MDC polling is DMA through the I/O cache: bus-visible."""
        machine, io = io_machine()
        machine.mbus.mark_window()
        io.start()
        machine.sim.run_until(200_000)
        assert machine.mbus.stats["ops"].windowed > 0
        assert machine.caches[0].stats["dma.read_miss"].total \
            + machine.caches[0].stats["dma.read_hit"].total > 0
