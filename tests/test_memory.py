"""Unit tests for the main-memory model."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.memory.main_memory import MEGABYTE_WORDS, MainMemory, MemoryModule


class TestModules:
    def test_module_properties(self):
        module = MemoryModule(0, 4 * MEGABYTE_WORDS, is_master=True)
        assert module.size_megabytes == pytest.approx(4.0)
        assert module.covers(0)
        assert module.covers(4 * MEGABYTE_WORDS - 1)
        assert not module.covers(4 * MEGABYTE_WORDS)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModule(-1, 10)
        with pytest.raises(ConfigurationError):
            MemoryModule(0, 0)


class TestConstruction:
    def test_needs_exactly_one_master(self):
        with pytest.raises(ConfigurationError):
            MainMemory([MemoryModule(0, 100)])
        with pytest.raises(ConfigurationError):
            MainMemory([MemoryModule(0, 100, is_master=True),
                        MemoryModule(100, 100, is_master=True)])

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            MainMemory([MemoryModule(0, 100, is_master=True),
                        MemoryModule(50, 100)])

    def test_needs_modules(self):
        with pytest.raises(ConfigurationError):
            MainMemory([])

    def test_standard_microvax_sizes(self):
        """4 MB master plus 4 MB slaves, 4-16 MB total (paper §5)."""
        memory = MainMemory.standard_microvax(16)
        assert memory.total_megabytes == pytest.approx(16.0)
        assert len(memory.modules) == 4
        assert sum(m.is_master for m in memory.modules) == 1
        with pytest.raises(ConfigurationError):
            MainMemory.standard_microvax(20)
        with pytest.raises(ConfigurationError):
            MainMemory.standard_microvax(6)

    def test_standard_cvax_sizes(self):
        """32 MB modules up to 128 MB (paper abstract/§5)."""
        memory = MainMemory.standard_cvax(128)
        assert memory.total_megabytes == pytest.approx(128.0)
        assert len(memory.modules) == 4
        with pytest.raises(ConfigurationError):
            MainMemory.standard_cvax(16)


class TestAccess:
    def test_read_write_line(self):
        memory = MainMemory.standard_microvax(4)
        memory.write_line(100, (42,))
        assert memory.read_line(100) == (42,)

    def test_uninitialised_reads_zero(self):
        memory = MainMemory.standard_microvax(4)
        assert memory.read_line(12345) == (0,)

    def test_multiword_lines(self):
        memory = MainMemory.standard_microvax(4, words_per_line=4)
        memory.write_line(8, (1, 2, 3, 4))
        assert memory.read_line(8) == (1, 2, 3, 4)
        assert memory.peek(10) == 3

    def test_wrong_width_write_rejected(self):
        memory = MainMemory.standard_microvax(4, words_per_line=4)
        with pytest.raises(SimulationError):
            memory.write_line(8, (1, 2))

    def test_unaligned_line_rejected(self):
        memory = MainMemory.standard_microvax(4, words_per_line=4)
        with pytest.raises(SimulationError):
            memory.read_line(6)

    def test_out_of_range_rejected(self):
        memory = MainMemory.standard_microvax(4)
        beyond = memory.total_words
        with pytest.raises(SimulationError):
            memory.read_line(beyond)
        with pytest.raises(SimulationError):
            memory.poke(beyond, 1)

    def test_access_counters(self):
        memory = MainMemory.standard_microvax(4)
        memory.read_line(0)
        memory.write_line(0, (1,))
        assert memory.stats["reads"].total == 1
        assert memory.stats["writes"].total == 1

    def test_peek_poke_bypass_stats(self):
        memory = MainMemory.standard_microvax(4)
        memory.poke(5, 9)
        assert memory.peek(5) == 9
        assert "reads" not in memory.stats
