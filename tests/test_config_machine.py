"""Unit tests for configuration and machine assembly."""

import pytest

from repro.cache.cache import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.processor.cpu import PrefetchConfig
from repro.system import (
    CoherenceChecker,
    FireflyConfig,
    FireflyMachine,
    Generation,
)


class TestConfigValidation:
    def test_defaults_are_the_standard_machine(self):
        config = FireflyConfig()
        assert config.processors == 5
        assert config.generation is Generation.MICROVAX
        assert config.effective_memory_megabytes == 16
        assert config.effective_cache.size_bytes == 16 * 1024
        assert config.protocol == "firefly"

    def test_cvax_defaults(self):
        config = FireflyConfig(generation=Generation.CVAX)
        assert config.effective_cache.size_bytes == 64 * 1024
        assert config.effective_memory_megabytes == 32
        assert config.timing.has_onchip_icache

    def test_processor_bounds(self):
        with pytest.raises(ConfigurationError):
            FireflyConfig(processors=0)
        with pytest.raises(ConfigurationError):
            FireflyConfig(processors=17)

    def test_memory_limits_per_generation(self):
        """MicroVAX tops out at 16 MB, CVAX at 128 MB (paper §3, §5)."""
        with pytest.raises(ConfigurationError):
            FireflyConfig(memory_megabytes=32)
        FireflyConfig(generation=Generation.CVAX, memory_megabytes=128)
        with pytest.raises(ConfigurationError):
            FireflyConfig(generation=Generation.CVAX, memory_megabytes=256)

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            FireflyConfig(protocol="mostly-coherent")

    def test_with_changes(self):
        config = FireflyConfig().with_changes(processors=7, seed=3)
        assert config.processors == 7 and config.seed == 3
        assert FireflyConfig().processors == 5  # original untouched


class TestMachineAssembly:
    def test_standard_machine_structure(self):
        machine = FireflyMachine(FireflyConfig())
        assert len(machine.cpus) == 5
        assert len(machine.caches) == 5
        assert len(machine.mbus.snoopers) == 5
        assert machine.memory.total_megabytes == pytest.approx(16)
        assert machine.qbus is None

    def test_io_enabled_builds_qbus(self):
        machine = FireflyMachine(FireflyConfig(io_enabled=True))
        assert machine.qbus is not None
        assert machine.qbus.io_cache is machine.caches[0]
        assert machine.io_cpu is machine.cpus[0]

    def test_cpu_layouts_are_disjoint(self):
        machine = FireflyMachine(FireflyConfig(processors=8))
        spans = []
        for cpu_id in range(8):
            layout = machine.layout_for(cpu_id)
            spans.append((layout.code_base,
                          layout.heap_base + layout.heap_words))
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_shared_region_at_top_of_memory(self):
        machine = FireflyMachine(FireflyConfig())
        region = machine.shared_region
        assert region.base_word + region.words <= machine.memory.total_words
        # Above every CPU's private span.
        top_private = machine.layout_for(4).heap_base + \
            machine.layout_for(4).heap_words
        assert region.base_word >= top_private

    def test_cache_geometry_override(self):
        config = FireflyConfig(cache_geometry=CacheGeometry(1024, 1))
        machine = FireflyMachine(config)
        assert machine.caches[0].geometry.lines == 1024

    def test_trace_bus_option(self):
        machine = FireflyMachine(FireflyConfig(trace_bus=True, processors=1))
        machine.run(warmup_cycles=0, measure_cycles=2000)
        assert machine.trace is not None
        assert len(machine.trace.transactions) > 0


class TestRunAndMetrics:
    def test_run_returns_metrics(self):
        machine = FireflyMachine(FireflyConfig(processors=2))
        metrics = machine.run(warmup_cycles=20_000, measure_cycles=50_000)
        assert metrics.processors == 2
        assert metrics.window_cycles == 50_000
        assert metrics.bus_ops > 0
        assert 0.0 < metrics.bus_load < 1.0
        for cpu in metrics.cpus:
            assert cpu.instructions > 0
            assert cpu.total_krate > 0
            assert 0.0 < cpu.miss_rate < 1.0
            assert cpu.tpi > 11.9  # never faster than no-wait

    def test_metrics_summary_renders(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        metrics = machine.run(warmup_cycles=5_000, measure_cycles=20_000)
        text = metrics.summary()
        assert "bus load" in text and "cpu0" in text

    def test_bad_horizons_rejected(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        with pytest.raises(ConfigurationError):
            machine.run(warmup_cycles=-1, measure_cycles=100)
        with pytest.raises(ConfigurationError):
            machine.run(warmup_cycles=0, measure_cycles=0)

    def test_start_is_idempotent(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        machine.start()
        machine.start()
        machine.sim.run_until(1000)
        assert machine.cpus[0].stats["instructions"].total > 0

    def test_determinism_across_builds(self):
        """Identical configs produce identical measurements."""
        def measure():
            machine = FireflyMachine(FireflyConfig(processors=3, seed=77))
            metrics = machine.run(warmup_cycles=10_000,
                                  measure_cycles=40_000)
            return (metrics.bus_ops, metrics.bus_writes,
                    tuple(c.instructions for c in metrics.cpus))
        assert measure() == measure()

    def test_seed_changes_measurements(self):
        def measure(seed):
            machine = FireflyMachine(FireflyConfig(processors=2, seed=seed))
            return machine.run(10_000, 40_000).bus_ops
        assert measure(1) != measure(2)

    def test_five_cpu_run_is_coherent(self):
        machine = FireflyMachine(FireflyConfig())
        machine.run(warmup_cycles=20_000, measure_cycles=30_000)
        audited = CoherenceChecker(machine).check()
        assert audited > 100

    @pytest.mark.parametrize("protocol", ["write-through", "berkeley",
                                          "dragon", "mesi", "write-once"])
    def test_baseline_protocol_machines_run_coherently(self, protocol):
        machine = FireflyMachine(FireflyConfig(processors=3,
                                               protocol=protocol))
        metrics = machine.run(warmup_cycles=10_000, measure_cycles=20_000)
        assert metrics.bus_ops > 0
        CoherenceChecker(machine).check()

    def test_cvax_machine_runs(self):
        machine = FireflyMachine(FireflyConfig(generation=Generation.CVAX,
                                               processors=2))
        metrics = machine.run(warmup_cycles=10_000, measure_cycles=30_000)
        assert metrics.bus_ops > 0
        assert machine.cpus[0].onchip is not None
        assert machine.cpus[0].onchip.stats["hit"].total > 0
        CoherenceChecker(machine).check()

    def test_prefetch_machine_runs(self):
        config = FireflyConfig(processors=2,
                               prefetch=PrefetchConfig(enabled=True))
        machine = FireflyMachine(config)
        machine.run(warmup_cycles=10_000, measure_cycles=30_000)
        covered = sum(c.stats.totals().get("prefetch_covered", 0)
                      for c in machine.cpus)
        assert covered > 0
