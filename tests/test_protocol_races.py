"""Regression tests for bus-serialisation races.

These reproduce, as deterministic schedules, the concurrency bugs a
queued transaction can hit: a write-through queued behind another write
to the same line, a victim write queued behind a write-through, and an
invalidation queued behind a competing invalidation.  Each was (or
would be) a real coherence violation if payloads were captured at
request time or invalidations were not re-checked after the grant.
"""

import pytest

from repro.cache.line import LineState
from repro.common.types import AccessKind, MemRef
from tests.conftest import MiniRig, make_rig


def concurrent(rig, *gens):
    """Run several generators as simultaneous processes."""
    procs = [rig.sim.process(gen, f"p{i}") for i, gen in enumerate(gens)]
    rig.sim.run()
    for proc in procs:
        assert proc.done


def write_gen(rig, cache_index, address, value, delay=0):
    def gen():
        if delay:
            yield rig.sim.timeout(delay)
        yield from rig.caches[cache_index].cpu_write(
            MemRef(address, AccessKind.DATA_WRITE), value)
    return gen()


def read_gen(rig, cache_index, address, delay=0):
    def gen():
        if delay:
            yield rig.sim.timeout(delay)
        value = yield from rig.caches[cache_index].cpu_read(
            MemRef(address, AccessKind.DATA_READ))
        return value
    return gen()


class TestConcurrentWriteThrough:
    def test_queued_writer_own_copy_not_regressed(self):
        """The bug found during bring-up: a writer queued behind another
        write to the same line must end with its own value everywhere,
        including its own cache."""
        rig = MiniRig(caches=3)
        address = 100
        # All three share the line.
        for i in range(3):
            rig.read(i, address)
        rig.write(0, address, 1)  # make it genuinely shared-written

        concurrent(rig,
                   write_gen(rig, 1, address, 111),
                   write_gen(rig, 2, address, 222))
        rig.check_coherence()
        final = rig.memory.peek(address)
        assert final in (111, 222)
        for i in range(3):
            assert rig.caches[i].peek(address) == final

    def test_many_concurrent_writers_converge(self):
        rig = MiniRig(caches=4)
        address = 64
        for i in range(4):
            rig.read(i, address)
        concurrent(rig, *[write_gen(rig, i, address, 1000 + i)
                          for i in range(4)])
        rig.check_coherence()
        values = {rig.caches[i].peek(address) for i in range(4)}
        assert len(values) == 1
        assert rig.memory.peek(address) == values.pop()

    def test_concurrent_write_and_read_miss(self):
        rig = MiniRig(caches=3)
        address = 32
        rig.read(0, address)
        rig.read(1, address)
        concurrent(rig,
                   write_gen(rig, 0, address, 9),
                   read_gen(rig, 2, address, delay=1))
        rig.check_coherence()
        assert rig.caches[2].peek(address) in (0, 9)


class TestPendingWriteSupplyRace:
    def test_sharer_with_queued_write_supplies_consistent_data(self):
        """A sharer whose write-through is still queued must answer an
        intervening bus read with the value the OTHER sharers hold —
        not its pending store — or two suppliers drive different data.

        Schedule: cache 0 occupies the bus; cache 2 (a sharer) queues a
        write-through; cache 1 queues a higher-priority read of the
        same line.  The read is granted first and both sharers (2, 3)
        must supply identical data."""
        rig = MiniRig(caches=4)
        address = 12
        rig.read(2, address)
        rig.read(3, address)   # caches 2 and 3 share the line

        def bus_hog():
            yield from rig.caches[0].cpu_read(
                MemRef(900, AccessKind.DATA_READ))

        def queued_writer():
            yield rig.sim.timeout(1)
            yield from rig.caches[2].cpu_write(
                MemRef(address, AccessKind.DATA_WRITE), 555)

        def intervening_reader():
            yield rig.sim.timeout(2)
            value = yield from rig.caches[1].cpu_read(
                MemRef(address, AccessKind.DATA_READ))
            return value

        rig.sim.process(bus_hog(), "hog")
        rig.sim.process(queued_writer(), "writer")
        reader = rig.sim.process(intervening_reader(), "reader")
        rig.sim.run()
        # The reader got the pre-write value (its read serialised
        # first); the write then updated every copy.
        assert reader.result == 0
        rig.check_coherence()
        for i in (1, 2, 3):
            assert rig.caches[i].peek(address) == 555
        assert rig.memory.peek(address) == 555


class TestVictimWriteRace:
    def test_victim_queued_behind_write_through_does_not_regress(self):
        """A victim write's payload must be taken at grant time: a
        write-through serialised ahead of it refreshes the line, and
        the stale request-time snapshot would roll memory back."""
        rig = MiniRig(caches=2, lines=16)
        address = 8
        rig.read(0, address)
        rig.write(0, address, 5)    # D in cache 0
        rig.read(1, address)        # cache 0 SD, cache 1 S

        conflict = address + 16     # same index, forces victimisation

        def victimiser():
            # Cache 0 read-misses on the conflicting address: victim
            # write of the SD line, then the fill.
            value = yield from rig.caches[0].cpu_read(
                MemRef(conflict, AccessKind.DATA_READ))
            return value

        concurrent(rig,
                   write_gen(rig, 1, address, 777),
                   victimiser())
        rig.check_coherence()
        assert rig.memory.peek(address) == 777

    def test_plain_victim_write_back_still_works(self):
        rig = MiniRig(lines=16)
        rig.write(0, 3, 1)
        rig.write(0, 3, 2)
        rig.read(0, 3 + 16)
        assert rig.memory.peek(3) == 2


class TestInvalidationRaces:
    @pytest.mark.parametrize("protocol", ["mesi", "berkeley"])
    def test_competing_upgrades_serialise(self, protocol):
        """Two caches in shared state both try to upgrade; the loser's
        copy is invalidated before its own bus op lands and it must
        fall back to a write miss."""
        rig = make_rig(protocol, caches=2)
        address = 16
        rig.read(0, address)
        rig.read(1, address)
        concurrent(rig,
                   write_gen(rig, 0, address, 100),
                   write_gen(rig, 1, address, 200))
        rig.check_coherence()
        # Exactly one writer ends as the owner with the final value.
        states = [rig.caches[i].state_of(address) for i in range(2)]
        valid = [s for s in states if s is not LineState.INVALID]
        assert len(valid) == 1
        final = [rig.caches[i].peek(address) for i in range(2)
                 if rig.caches[i].peek(address) is not None]
        assert final[0] in (100, 200)

    def test_write_once_concurrent_first_writes(self):
        rig = make_rig("write-once", caches=2)
        address = 24
        rig.read(0, address)
        rig.read(1, address)
        concurrent(rig,
                   write_gen(rig, 0, address, 1),
                   write_gen(rig, 1, address, 2))
        rig.check_coherence()
        assert rig.memory.peek(address) in (1, 2)

    def test_write_through_concurrent_writers(self):
        rig = make_rig("write-through", caches=3)
        address = 40
        for i in range(3):
            rig.read(i, address)
        concurrent(rig, *[write_gen(rig, i, address, 50 + i)
                          for i in range(3)])
        rig.check_coherence()
        assert rig.memory.peek(address) in (50, 51, 52)

    def test_dragon_concurrent_updates(self):
        rig = make_rig("dragon", caches=3)
        address = 48
        for i in range(3):
            rig.read(i, address)
        concurrent(rig,
                   write_gen(rig, 0, address, 10),
                   write_gen(rig, 1, address, 20),
                   write_gen(rig, 2, address, 30))
        rig.check_coherence()
        values = {rig.caches[i].peek(address) for i in range(3)}
        assert len(values) == 1
