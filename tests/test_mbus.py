"""Unit tests for the MBus model."""

import pytest

from repro.bus.mbus import MBus, SnoopResult
from repro.bus.signals import SignalTrace
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.events import Simulator
from repro.common.types import MBUS_OP_CYCLES, BusOp
from repro.memory.main_memory import MainMemory, MemoryModule


def _bus(trace=None, words_per_line=1):
    sim = Simulator()
    memory = MainMemory([MemoryModule(0, 1 << 16, is_master=True)],
                        words_per_line=words_per_line)
    return sim, memory, MBus(sim, memory, words_per_line=words_per_line,
                             trace=trace)


class FakeSnooper:
    """A scriptable snooper for bus-level tests."""

    def __init__(self, snooper_id, shared=False, data=None,
                 write_back=False):
        self.snooper_id = snooper_id
        self.result = SnoopResult(shared=shared, data=data,
                                  write_back=write_back)
        self.observed = []

    def snoop(self, op, line_address, data):
        self.observed.append((op, line_address, data))
        return self.result


def run(sim, gen):
    proc = sim.process(gen, "t")
    sim.run()
    assert proc.done
    return proc.result


class TestTransactions:
    def test_read_takes_four_cycles(self):
        sim, memory, bus = _bus()
        memory.poke(5, 99)

        def gen():
            txn = yield from bus.transaction(0, BusOp.MREAD, 5, initiator=0)
            return txn, sim.now

        txn, end = run(sim, gen())
        assert end == MBUS_OP_CYCLES
        assert txn.data == 99
        assert not txn.shared_response

    def test_write_updates_memory(self):
        sim, memory, bus = _bus()

        def gen():
            yield from bus.transaction(0, BusOp.MWRITE, 7, initiator=0,
                                       data=(123,))

        run(sim, gen())
        assert memory.peek(7) == 123

    def test_write_requires_data(self):
        sim, _, bus = _bus()

        def gen():
            yield from bus.transaction(0, BusOp.MWRITE, 7, initiator=0)

        with pytest.raises(SimulationError):
            run(sim, gen())

    def test_unaligned_line_rejected(self):
        sim, _, bus = _bus(words_per_line=4)

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 6, initiator=0)

        with pytest.raises(SimulationError):
            run(sim, gen())

    def test_callable_payload_evaluated_at_grant(self):
        """The merged-payload hook: late evaluation sees late changes."""
        sim, memory, bus = _bus()
        box = {"value": 1}

        def holder():
            yield from bus.transaction(0, BusOp.MWRITE, 0, initiator=0,
                                       data=(0,))
            box["value"] = 2

        def writer():
            yield sim.timeout(1)  # queue behind the holder
            yield from bus.transaction(1, BusOp.MWRITE, 4, initiator=1,
                                       data=lambda: (box["value"],))

        sim.process(holder())
        sim.process(writer())
        sim.run()
        assert memory.peek(4) == 2

    def test_update_memory_false_skips_memory(self):
        sim, memory, bus = _bus()
        memory.poke(3, 50)

        def gen():
            yield from bus.transaction(0, BusOp.MWRITE, 3, initiator=0,
                                       data=(99,), update_memory=False)

        run(sim, gen())
        assert memory.peek(3) == 50


class TestSnooping:
    def test_initiator_excluded_from_fanout(self):
        sim, _, bus = _bus()
        me = FakeSnooper(0)
        other = FakeSnooper(1)
        bus.attach_snooper(me)
        bus.attach_snooper(other)

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 8, initiator=0)

        run(sim, gen())
        assert me.observed == []
        assert len(other.observed) == 1

    def test_mshared_response_reaches_initiator(self):
        sim, _, bus = _bus()
        bus.attach_snooper(FakeSnooper(1, shared=True))

        def gen():
            txn = yield from bus.transaction(0, BusOp.MREAD, 8, initiator=0)
            return txn

        txn = run(sim, gen())
        assert txn.shared_response

    def test_cache_supplied_data_inhibits_memory(self):
        sim, memory, bus = _bus()
        memory.poke(8, 111)  # stale
        bus.attach_snooper(FakeSnooper(1, shared=True, data=(222,)))

        def gen():
            txn = yield from bus.transaction(0, BusOp.MREAD, 8, initiator=0)
            return txn

        txn = run(sim, gen())
        assert txn.data == 222
        assert txn.supplied_by_cache
        assert memory.peek(8) == 111  # inhibited, not snarfed

    def test_write_back_snarfs_into_memory(self):
        sim, memory, bus = _bus()
        bus.attach_snooper(FakeSnooper(1, shared=True, data=(222,),
                                       write_back=True))

        def gen():
            txn = yield from bus.transaction(0, BusOp.MREAD, 8, initiator=0)
            return txn

        txn = run(sim, gen())
        assert txn.data == 222
        assert memory.peek(8) == 222  # Illinois-style reflection

    def test_conflicting_suppliers_detected(self):
        sim, _, bus = _bus()
        bus.attach_snooper(FakeSnooper(1, shared=True, data=(1,)))
        bus.attach_snooper(FakeSnooper(2, shared=True, data=(2,)))

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 8, initiator=0)

        with pytest.raises(SimulationError):
            run(sim, gen())

    def test_duplicate_snooper_rejected(self):
        _, _, bus = _bus()
        bus.attach_snooper(FakeSnooper(1))
        with pytest.raises(ConfigurationError):
            bus.attach_snooper(FakeSnooper(1))


class TestArbitration:
    def test_transactions_serialise(self):
        sim, _, bus = _bus()
        times = []

        def user(priority):
            txn = yield from bus.transaction(priority, BusOp.MREAD, 0,
                                             initiator=priority)
            times.append((priority, txn.start_cycle))

        sim.process(user(0))
        sim.process(user(1))
        sim.run()
        starts = sorted(start for _, start in times)
        assert starts == [0, MBUS_OP_CYCLES]

    def test_priority_wins_contention(self):
        sim, _, bus = _bus()
        order = []

        def holder():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)

        def requester(priority):
            yield sim.timeout(1)
            yield from bus.transaction(priority, BusOp.MREAD, 0,
                                       initiator=priority)
            order.append(priority)

        sim.process(holder())
        sim.process(requester(3))
        sim.process(requester(1))
        sim.run()
        assert order == [1, 3]

    def test_busy_property(self):
        sim, _, bus = _bus()
        samples = []

        def user():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)

        def sampler():
            samples.append(bus.busy)
            yield sim.timeout(2)
            samples.append(bus.busy)
            yield sim.timeout(10)
            samples.append(bus.busy)

        sim.process(sampler())
        sim.process(user())
        sim.run()
        assert samples == [False, True, False]


class TestAccounting:
    def test_utilization_counts_busy_cycles(self):
        sim, _, bus = _bus()

        def gen():
            for _ in range(3):
                yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)
            yield sim.timeout(28)  # 12 busy of 40 total

        bus.mark_window()
        run(sim, gen())
        assert bus.load() == pytest.approx(0.3)

    def test_write_categories(self):
        sim, _, bus = _bus()
        bus.attach_snooper(FakeSnooper(1, shared=True))

        def gen():
            yield from bus.transaction(0, BusOp.MWRITE, 0, initiator=0,
                                       data=(1,))
            yield from bus.transaction(0, BusOp.MWRITE, 4, initiator=2,
                                       data=(1,), is_victim=True)

        run(sim, gen())
        # Snooper says shared for both; victim categorised separately.
        assert bus.stats["write.mshared"].total == 1
        assert bus.stats["write.victim"].total == 1

    def test_read_supply_categories(self):
        sim, memory, bus = _bus()

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)

        run(sim, gen())
        assert bus.stats["read.memory_supplied"].total == 1

    def test_queue_wait_cycles(self):
        sim, _, bus = _bus()

        def user():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert bus.queue_wait_cycles == MBUS_OP_CYCLES


class TestInterrupts:
    def test_ipi_delivery(self):
        sim, _, bus = _bus()
        got = []
        bus.register_interrupt_handler(2, lambda sender: got.append(sender))
        bus.send_interrupt(2, sender=0)
        assert got == [0]
        assert bus.stats["ipi"].total == 1

    def test_ipi_to_unregistered_target_raises(self):
        _, _, bus = _bus()
        with pytest.raises(ConfigurationError) as excinfo:
            bus.send_interrupt(9, sender=0)
        assert "9" in str(excinfo.value)
        assert bus.stats["ipi"].total == 0  # not counted as delivered


class TestSignalTracing:
    def test_trace_records_transactions(self):
        trace = SignalTrace()
        sim, _, bus = _bus(trace=trace)

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 12, initiator=0)

        run(sim, gen())
        assert len(trace.transactions) == 1
        txn = trace.transactions[0]
        assert txn.op is BusOp.MREAD and txn.address == 12

    def test_trace_limit(self):
        trace = SignalTrace(limit=1)
        sim, _, bus = _bus(trace=trace)

        def gen():
            yield from bus.transaction(0, BusOp.MREAD, 0, initiator=0)
            yield from bus.transaction(0, BusOp.MREAD, 4, initiator=0)

        run(sim, gen())
        assert len(trace.transactions) == 1
        assert trace.full
