"""Unit tests for statistics primitives."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.stats import Counter, RateMeter, StatSet, Utilization, ratio


class TestCounter:
    def test_add_and_total(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.total == 5

    def test_window(self):
        c = Counter("x")
        c.add(10)
        c.mark()
        c.add(3)
        assert c.total == 13
        assert c.windowed == 3

    def test_remark_resets_window(self):
        c = Counter("x")
        c.add(5)
        c.mark()
        c.add(5)
        c.mark()
        assert c.windowed == 0


class TestRateMeter:
    def test_rate_over_window(self):
        c = Counter("refs")
        meter = RateMeter(c)
        c.add(100)
        meter.mark(now=0)
        c.add(500)
        # 500 events over 1000 units of 1 ms each = 500 Hz.
        assert meter.rate(now=1000, unit_seconds=1e-3) == pytest.approx(500.0)

    def test_zero_window_rate_is_zero(self):
        meter = RateMeter(Counter("x"))
        assert meter.rate(now=0, unit_seconds=1.0) == 0.0


class TestUtilization:
    def test_load_fraction(self):
        u = Utilization("bus")
        u.mark(0)
        u.add_busy(40)
        assert u.load(100) == pytest.approx(0.4)

    def test_windowing(self):
        u = Utilization("bus")
        u.add_busy(1000)
        u.mark(5000)
        u.add_busy(10)
        assert u.load(5100) == pytest.approx(0.1)
        assert u.busy_total == 1010

    def test_negative_busy_rejected(self):
        with pytest.raises(ConfigurationError):
            Utilization("x").add_busy(-1)

    def test_empty_window_is_zero(self):
        u = Utilization("x")
        u.mark(10)
        assert u.load(10) == 0.0


class TestStatSet:
    def test_lazy_counter_creation(self):
        stats = StatSet("cache")
        stats.incr("hits")
        stats.incr("hits", 2)
        assert stats["hits"].total == 3
        assert "hits" in stats
        assert "misses" not in stats

    def test_totals_and_windowed(self):
        stats = StatSet("s")
        stats.incr("a", 2)
        stats.incr("b", 3)
        stats.mark_all()
        stats.incr("a", 5)
        assert stats.totals() == {"a": 7, "b": 3}
        assert stats.windowed() == {"a": 5, "b": 0}

    def test_items_order_is_insertion(self):
        stats = StatSet("s")
        for key in ("z", "a", "m"):
            stats.incr(key)
        assert [k for k, _ in stats.items()] == ["z", "a", "m"]

    def test_counter_names_carry_set_name(self):
        stats = StatSet("cache3")
        assert stats.counter("hit").name == "cache3.hit"


class TestRatio:
    def test_normal(self):
        assert ratio(1, 4) == 0.25

    def test_zero_denominator_default(self):
        assert ratio(5, 0) == 0.0
        assert ratio(5, 0, default=1.5) == 1.5
