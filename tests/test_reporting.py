"""Tables and figure renderers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.reporting import (
    Column,
    TextTable,
    render_state_diagram,
    render_system_diagram,
    render_topaz_diagram,
)
from repro.system import FireflyConfig, FireflyMachine, Generation
from repro.topaz.kernel import TopazKernel


class TestTextTable:
    def test_basic_render(self):
        table = TextTable([Column("NP", "d"), Column("L", ".2f")])
        table.add_row(2, 0.171)
        table.add_row(12, 0.78)
        text = table.render()
        lines = text.splitlines()
        assert lines[0].split() == ["NP", "L"]
        assert lines[1].split() == ["2", "0.17"]
        assert lines[2].split() == ["12", "0.78"]

    def test_column_widths_fit_contents(self):
        table = TextTable([Column("x", "d")])
        table.add_row(1234567)
        width = len(table.render().splitlines()[1])
        assert width == 7

    def test_none_renders_dash(self):
        table = TextTable([Column("a", "d"), Column("b", ".1f")])
        table.add_row(None, 1.0)
        assert table.render().splitlines()[1].split() == ["-", "1.0"]

    def test_left_alignment(self):
        table = TextTable([Column("name", "s", align_left=True),
                           Column("v", "d")])
        table.add_row("ab", 1)
        table.add_row("abcdef", 2)
        lines = table.render().splitlines()
        assert lines[1].startswith("ab ")

    def test_separator(self):
        table = TextTable([Column("a", "d")])
        table.add_row(1)
        table.add_separator()
        table.add_row(2)
        separator_line = table.render().splitlines()[2]
        assert set(separator_line) == {"-"}
        assert table.row_count == 2

    def test_wrong_cell_count_rejected(self):
        table = TextTable([Column("a", "d")])
        with pytest.raises(ConfigurationError):
            table.add_row(1, 2)

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            TextTable([])


class TestStateDiagram:
    def test_firefly_diagram_contains_all_states(self):
        text = render_state_diagram("firefly")
        for state in ("state V:", "state D:", "state S:", "state SD:"):
            assert state in text

    def test_annotations_present(self):
        text = render_state_diagram("firefly")
        assert "(MShared)" in text and "(not MShared)" in text
        assert "MWrite" in text

    def test_baselines_render(self):
        for protocol in ("mesi", "berkeley", "dragon", "write-once",
                         "write-through"):
            assert protocol in render_state_diagram(protocol)


class TestSystemDiagram:
    def test_standard_machine(self):
        machine = FireflyMachine(FireflyConfig(io_enabled=True))
        text = render_system_diagram(machine)
        assert "primary processor board" in text
        assert "secondary board 1: CPU 1 + CPU 2" in text
        assert "secondary board 2: CPU 3 + CPU 4" in text
        assert "MBus" in text
        assert text.count("memory module") == 4
        assert "DEQNA" in text and "RQDX3" in text and "MDC" in text

    def test_uniprocessor_has_no_secondary_boards(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        text = render_system_diagram(machine)
        assert "secondary board" not in text

    def test_cvax_machine(self):
        machine = FireflyMachine(FireflyConfig(
            generation=Generation.CVAX, processors=4))
        text = render_system_diagram(machine)
        assert "CVAX 78034" in text
        assert "64 KB cache" in text
        assert "32 MB" in text


class TestTopazDiagram:
    def test_renders_live_kernel(self):
        kernel = TopazKernel.build(processors=2, threads_hint=4, seed=1)

        def body():
            from repro.topaz import Compute
            yield Compute(1)

        kernel.fork(body, name="app-thread")
        text = render_topaz_diagram(kernel)
        assert "Nub (VAX kernel mode)" in text
        assert "Taos" in text and "Trestle" in text and "UserTTD" in text
        assert "1 thread(s)" in text
        assert "2 processors" in text
