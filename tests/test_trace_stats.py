"""Trace reduction and working-set analysis."""

import pytest

from repro.cache.cache import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream
from repro.common.types import AccessKind, MemRef
from repro.processor.refgen import (
    SyntheticReferenceSource,
    WorkloadShape,
    default_layout,
)
from repro.trace.format import TraceRecord
from repro.trace.stats import reduce_trace, working_set_curve


def record(*tokens, jump=False):
    kind_map = {"i": AccessKind.INSTRUCTION_READ,
                "r": AccessKind.DATA_READ,
                "w": AccessKind.DATA_WRITE}
    refs = tuple(MemRef(addr, kind_map[k]) for k, addr in tokens)
    return TraceRecord(refs=refs, is_jump=jump)


def synthetic_trace(instructions=5000, seed=3):
    source = SyntheticReferenceSource(
        rng=RandomStream(seed, "ts"),
        layout=default_layout(0),
        shape=WorkloadShape(shared_write_fraction=0.0,
                            shared_read_fraction=0.0),
        instruction_limit=instructions)
    records = []
    while True:
        bundle = source.next_instruction(None)
        if bundle is None:
            break
        records.append(TraceRecord(refs=bundle.refs, is_jump=bundle.is_jump))
    return records


class TestReduceTrace:
    def test_counts_and_mix(self):
        records = [record(("i", 0), ("r", 10), ("w", 20)),
                   record(("i", 1)),
                   record(("i", 2), ("w", 20))]
        reduction = reduce_trace(records, CacheGeometry(16, 1))
        assert reduction.instructions == 3
        assert reduction.references == 6
        assert reduction.instruction_reads == 3
        assert reduction.data_reads == 1
        assert reduction.data_writes == 2
        assert reduction.mix.total == pytest.approx(2.0)

    def test_miss_and_dirty_on_tiny_trace(self):
        # Two refs to one word: one compulsory miss, then a dirty hit.
        records = [record(("r", 5)), record(("w", 5))]
        reduction = reduce_trace(records, CacheGeometry(16, 1))
        assert reduction.miss_rate == pytest.approx(0.5)
        assert reduction.dirty_fraction == pytest.approx(1.0)

    def test_matches_live_cache_simulation(self):
        """The functional reduction must agree with the full cache."""
        from tests.conftest import MiniRig
        from repro.processor.cpu import Processor
        from repro.processor.timing import MICROVAX_TIMING
        from repro.trace.replay import TraceSource

        records = synthetic_trace(3000)
        reduction = reduce_trace(records, CacheGeometry.MICROVAX)

        rig = MiniRig(lines=4096)
        # Match geometry to the reduction's.
        from repro.cache.cache import SnoopyCache
        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0],
                        TraceSource(records))
        cpu.start()
        rig.sim.run()
        stats = rig.caches[0].stats.totals()
        hits = sum(stats.get(k, 0) for k in ("ifetch.hit", "dread.hit",
                                             "dwrite.hit"))
        misses = sum(stats.get(k, 0) for k in ("ifetch.miss", "dread.miss",
                                               "dwrite.miss"))
        live_miss_rate = misses / (hits + misses)
        # Same geometry (4096 x 1): the rates agree closely.  (Not
        # exactly: the live Firefly cache's optimised write misses
        # allocate clean, the functional model marks them dirty, which
        # can change later victim decisions — but never hit/miss for
        # direct-mapped tags... so they ARE exact.)
        assert live_miss_rate == pytest.approx(reduction.miss_rate,
                                               abs=1e-9)

    def test_calibrated_workload_reduces_to_paper_figures(self):
        records = synthetic_trace(20_000)
        reduction = reduce_trace(records, CacheGeometry.MICROVAX)
        assert 0.15 < reduction.miss_rate < 0.26     # the paper's M=0.2
        assert 2.0 < reduction.refs_per_instruction < 2.3
        assert reduction.mix.instruction_reads == pytest.approx(0.95,
                                                                abs=0.02)

    def test_bigger_cache_reduces_miss_rate(self):
        records = synthetic_trace(10_000)
        small = reduce_trace(records, CacheGeometry(1024, 1))
        big = reduce_trace(records, CacheGeometry(16384, 1))
        assert big.miss_rate < small.miss_rate

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            reduce_trace([])


class TestWorkingSetCurve:
    def test_monotone_in_window_length(self):
        records = synthetic_trace(5000)
        curve = working_set_curve(records, (100, 1000, 5000))
        values = [curve[w] for w in (100, 1000, 5000)]
        assert values == sorted(values)

    def test_window_bounded_by_distinct_addresses(self):
        records = [record(("i", i % 7)) for i in range(100)]
        curve = working_set_curve(records, (10, 1000))
        assert curve[10] <= 7
        assert curve[1000] == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            working_set_curve([record(("i", 1))], (0,))
        with pytest.raises(ConfigurationError):
            working_set_curve([TraceRecord(refs=())])
