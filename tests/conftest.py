"""Shared fixtures: small machines, rigs and helpers."""

from __future__ import annotations

import pytest

from repro.bus.mbus import MBus
from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.protocols import protocol_by_name
from repro.common.events import Simulator
from repro.common.types import AccessKind, MemRef
from repro.memory.main_memory import MainMemory, MemoryModule


class MiniRig:
    """A small bus + memory + N caches rig driven from test code.

    ``run(gen)`` executes one generator as a process to completion and
    returns its result — handy for driving cache operations directly.
    """

    def __init__(self, protocol: str = "firefly", caches: int = 2,
                 lines: int = 64, words_per_line: int = 1) -> None:
        self.sim = Simulator()
        self.memory = MainMemory(
            [MemoryModule(0, 1 << 20, is_master=True)],
            words_per_line=words_per_line)
        self.mbus = MBus(self.sim, self.memory,
                         words_per_line=words_per_line)
        self.protocol = protocol_by_name(protocol)
        geometry = CacheGeometry(lines, words_per_line)
        self.caches = [SnoopyCache(self.mbus, self.protocol, i, geometry)
                       for i in range(caches)]

    def run(self, gen):
        proc = self.sim.process(gen, "test")
        self.sim.run()
        assert proc.done, "test process blocked forever"
        return proc.result

    def read(self, cache_index: int, address: int,
             kind: AccessKind = AccessKind.DATA_READ) -> int:
        def gen():
            value = yield from self.caches[cache_index].cpu_read(
                MemRef(address, kind))
            return value
        return self.run(gen())

    def write(self, cache_index: int, address: int, value: int,
              partial: bool = False) -> None:
        def gen():
            yield from self.caches[cache_index].cpu_write(
                MemRef(address, AccessKind.DATA_WRITE, partial=partial),
                value)
        self.run(gen())

    def check_coherence(self) -> None:
        """Apply the machine checker's invariants to this rig."""
        from repro.system.checker import CoherenceChecker

        class _Shim:
            caches = self.caches
            memory = self.memory
            protocol = self.protocol
        CoherenceChecker(_Shim()).check()


@pytest.fixture
def rig():
    """Two Firefly caches on one bus."""
    return MiniRig()


@pytest.fixture
def rig4():
    """Four Firefly caches on one bus."""
    return MiniRig(caches=4)


def make_rig(protocol: str, caches: int = 2, **kw) -> MiniRig:
    return MiniRig(protocol=protocol, caches=caches, **kw)


@pytest.fixture
def sim():
    return Simulator()
