"""Trace format, recording, and replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RandomStream
from repro.common.types import AccessKind, MemRef
from repro.processor.cpu import Processor
from repro.processor.refgen import SyntheticReferenceSource, WorkloadShape, \
    default_layout
from repro.processor.timing import MICROVAX_TIMING
from repro.trace.format import (
    TraceFormatError,
    TraceRecord,
    decode_record,
    encode_record,
)
from repro.trace.recorder import RecordingSource
from repro.trace.replay import TraceSource, load_trace, save_trace
from tests.conftest import MiniRig


def record(*tokens, jump=False):
    refs = []
    for kind, address in tokens:
        partial = kind == "w*"
        kind_map = {"i": AccessKind.INSTRUCTION_READ,
                    "r": AccessKind.DATA_READ,
                    "w": AccessKind.DATA_WRITE,
                    "w*": AccessKind.DATA_WRITE}
        refs.append(MemRef(address, kind_map[kind], partial=partial))
    return TraceRecord(refs=tuple(refs), is_jump=jump)


class TestFormat:
    def test_encode(self):
        line = encode_record(record(("i", 4000), ("r", 12), ("w", 13),
                                    jump=True))
        assert line == "i:4000 r:12 w:13 J"

    def test_partial_write_encoding(self):
        line = encode_record(record(("w*", 9)))
        assert line == "w*:9"

    def test_decode_round_trip(self):
        original = record(("i", 1), ("r", 2), ("w*", 3), jump=True)
        assert decode_record(encode_record(original)) == original

    def test_empty_record(self):
        assert decode_record("") == TraceRecord(refs=())

    @pytest.mark.parametrize("bad", ["x:5", "i:", "i:abc", "i:-3", "r*:5"])
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(TraceFormatError):
            decode_record(bad, line_number=7)

    @given(st.lists(st.tuples(
        st.sampled_from(["i", "r", "w", "w*"]),
        st.integers(min_value=0, max_value=1 << 24)), max_size=6),
        st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip(self, tokens, jump):
        original = record(*tokens, jump=jump)
        assert decode_record(encode_record(original)) == original


class TestFiles:
    def test_save_and_load(self, tmp_path):
        records = [record(("i", i), ("w", i + 1)) for i in range(10)]
        path = tmp_path / "t.trace"
        assert save_trace(records, path) == 10
        assert load_trace(path) == records

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\ni:5\n   \nr:6\n")
        loaded = load_trace(path)
        assert len(loaded) == 2


class TestRecordingAndReplay:
    def _synthetic(self, limit=200):
        return SyntheticReferenceSource(
            rng=RandomStream(3, "t"),
            layout=default_layout(0),
            shape=WorkloadShape(shared_write_fraction=0.0,
                                shared_read_fraction=0.0),
            instruction_limit=limit)

    def test_recorder_captures_stream(self):
        rig = MiniRig()
        recorder = RecordingSource(self._synthetic(50))
        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0], recorder)
        cpu.start()
        rig.sim.run()
        assert len(recorder.records) == 50

    def test_replay_reproduces_cache_behaviour(self):
        """Replaying a recorded trace yields identical cache statistics
        — the foundation for protocol A/B comparisons."""
        rig1 = MiniRig()
        recorder = RecordingSource(self._synthetic(300))
        cpu1 = Processor(rig1.sim, 0, MICROVAX_TIMING, rig1.caches[0],
                         recorder)
        cpu1.start()
        rig1.sim.run()

        rig2 = MiniRig()
        cpu2 = Processor(rig2.sim, 0, MICROVAX_TIMING, rig2.caches[0],
                         TraceSource(recorder.records))
        cpu2.start()
        rig2.sim.run()

        assert rig1.caches[0].stats.totals() == rig2.caches[0].stats.totals()
        assert rig1.sim.now == rig2.sim.now

    def test_replay_halts_at_end(self):
        rig = MiniRig()
        source = TraceSource([record(("i", 1))])
        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0], source)
        cpu.start()
        rig.sim.run()
        assert cpu.stats["instructions"].total == 1

    def test_repeat_loops_forever(self):
        rig = MiniRig()
        source = TraceSource([record(("i", 1)), record(("i", 2))],
                             repeat=True)
        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0], source)
        cpu.start()
        rig.sim.run_until(5000)
        assert source.replays > 10
        assert cpu.stats["instructions"].total > 50

    def test_empty_repeat_trace_halts(self):
        rig = MiniRig()
        source = TraceSource([], repeat=True)
        cpu = Processor(rig.sim, 0, MICROVAX_TIMING, rig.caches[0], source)
        cpu.start()
        rig.sim.run()
        assert cpu.stats["instructions"].total == 0
