"""Unit tests for the cache structure (geometry, lookup, bookkeeping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheGeometry
from repro.cache.line import CacheLine, LineState
from repro.common.errors import ConfigurationError
from repro.common.types import AccessKind
from tests.conftest import MiniRig


class TestGeometry:
    def test_paper_geometries(self):
        """16 KB MicroVAX cache (4096 lines), 64 KB CVAX (16384)."""
        assert CacheGeometry.MICROVAX.lines == 4096
        assert CacheGeometry.MICROVAX.size_bytes == 16 * 1024
        assert CacheGeometry.CVAX.lines == 16384
        assert CacheGeometry.CVAX.size_bytes == 64 * 1024

    def test_split_and_rebuild(self):
        geometry = CacheGeometry(64, 1)
        index, tag, offset = geometry.split(1000)
        assert geometry.rebuild_address(index, tag) == 1000
        assert offset == 0

    def test_multiword_split(self):
        geometry = CacheGeometry(16, 4)
        index, tag, offset = geometry.split(100)
        assert offset == 100 % 4
        assert geometry.line_address(100) == 100

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 1)
        with pytest.raises(ConfigurationError):
            CacheGeometry(64, 3)

    @given(addr=st.integers(min_value=0, max_value=1 << 24),
           lines_log=st.integers(min_value=1, max_value=14),
           wpl_log=st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_property_split_rebuild_inverse(self, addr, lines_log, wpl_log):
        geometry = CacheGeometry(1 << lines_log, 1 << wpl_log)
        index, tag, offset = geometry.split(addr)
        rebuilt = geometry.rebuild_address(index, tag) + offset
        assert rebuilt == addr
        assert 0 <= index < geometry.lines
        assert 0 <= offset < geometry.words_per_line


class TestCacheLine:
    def test_fill_and_invalidate(self):
        line = CacheLine(1)
        assert not line.valid
        line.fill(7, (42,), LineState.VALID)
        assert line.valid and line.data == [42]
        line.invalidate()
        assert not line.valid

    def test_snapshot_is_immutable_copy(self):
        line = CacheLine(2)
        line.fill(0, (1, 2), LineState.DIRTY)
        snap = line.snapshot()
        line.data[0] = 99
        assert snap == (1, 2)


class TestLineStateVocabulary:
    def test_dirty_states(self):
        assert LineState.DIRTY.is_dirty
        assert LineState.SHARED_DIRTY.is_dirty
        assert LineState.OWNED.is_dirty
        assert LineState.OWNED_SHARED.is_dirty
        assert not LineState.VALID.is_dirty
        assert not LineState.SHARED.is_dirty
        assert not LineState.RESERVED.is_dirty

    def test_shared_states(self):
        assert LineState.SHARED.is_shared
        assert LineState.SHARED_DIRTY.is_shared
        assert LineState.OWNED_SHARED.is_shared
        assert not LineState.VALID.is_shared
        assert not LineState.DIRTY.is_shared

    def test_tag_bits_figure3_encoding(self):
        """The four Firefly states are the Dirty x Shared combinations."""
        assert LineState.VALID.tag_bits == (0, 0)
        assert LineState.DIRTY.tag_bits == (1, 0)
        assert LineState.SHARED.tag_bits == (0, 1)
        assert LineState.SHARED_DIRTY.tag_bits == (1, 1)

    def test_invalid_is_not_valid(self):
        assert not LineState.INVALID.is_valid
        assert LineState.VALID.is_valid


class TestCacheBookkeeping:
    def test_present_and_peek(self):
        rig = MiniRig()
        assert not rig.caches[0].present(100)
        rig.read(0, 100)
        assert rig.caches[0].present(100)
        assert rig.caches[0].peek(100) == 0
        assert rig.caches[0].peek(101) is None

    def test_state_of(self):
        rig = MiniRig()
        assert rig.caches[0].state_of(5) is LineState.INVALID
        rig.read(0, 5)
        assert rig.caches[0].state_of(5) is LineState.VALID

    def test_hit_miss_counters_by_kind(self):
        rig = MiniRig()
        rig.read(0, 10)
        rig.read(0, 10)
        rig.read(0, 20, kind=AccessKind.INSTRUCTION_READ)
        rig.write(0, 10, 1)
        stats = rig.caches[0].stats
        assert stats["dread.miss"].total == 1
        assert stats["dread.hit"].total == 1
        assert stats["ifetch.miss"].total == 1
        assert stats["dwrite.hit"].total == 1

    def test_dirty_fraction_and_occupancy(self):
        rig = MiniRig(lines=16)
        rig.read(0, 0)
        rig.read(0, 1)
        rig.write(0, 2, 5)  # write miss -> clean (optimised)
        rig.write(0, 0, 5)  # write hit on VALID -> DIRTY
        cache = rig.caches[0]
        assert cache.occupancy() == pytest.approx(3 / 16)
        assert cache.dirty_fraction() == pytest.approx(1 / 3)

    def test_geometry_must_match_bus(self):
        from repro.cache.cache import SnoopyCache
        rig = MiniRig()
        with pytest.raises(ConfigurationError):
            SnoopyCache(rig.mbus, rig.protocol, 9, CacheGeometry(16, 4))

    def test_tag_contention_window(self):
        """A snoop probe makes the tag store busy for the next cycle."""
        rig = MiniRig()
        rig.read(0, 30)     # cache 0 holds the line
        rig.read(1, 30)     # cache 1's fill probes cache 0's tags
        cache = rig.caches[0]
        assert cache.tag_contention_stall(cache.tag_busy_until - 1)
        assert not cache.tag_contention_stall(cache.tag_busy_until)

    def test_flush_for_tests(self):
        rig = MiniRig()
        rig.read(0, 1)
        rig.caches[0].flush_for_tests()
        assert not rig.caches[0].present(1)
        assert rig.caches[0].occupancy() == 0.0
