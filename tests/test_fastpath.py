"""The hot-path contract: fast paths change wall-clock, never a bit.

The simulator's cache-hit fast paths (:meth:`SnoopyCache.cpu_read_fast`
/ :meth:`cpu_write_fast`) and the batched RNG draws exist purely for
host throughput.  These tests pin the contract from
docs/PERFORMANCE.md: with the fast paths forced off (every access
through the original generator machinery), every simulated metric and
every telemetry event count is identical, for every registered
protocol; and every batched RNG sequence equals its unbatched twin
element for element.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.cache.protocols import available_protocols
from repro.common.rng import RandomStream, StreamFactory
from repro.system import FireflyConfig, FireflyMachine
from repro.telemetry import telemetry_for_machine

WARMUP = 2_000
MEASURE = 10_000


def _run_machine(protocol: str, fast: bool, seed: int = 1987,
                 with_telemetry: bool = False):
    """(metrics dict, telemetry event count) for one small run."""
    machine = FireflyMachine(FireflyConfig(
        processors=2, protocol=protocol, seed=seed))
    hub = None
    if with_telemetry:
        hub, sampler = telemetry_for_machine(machine)
        sampler.start()
    if not fast:
        for cpu in machine.cpus:
            cpu.fast_path = False
    metrics = machine.run(warmup_cycles=WARMUP, measure_cycles=MEASURE)
    return metrics.to_dict(), (hub.emitted if hub is not None else None)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("protocol", sorted(available_protocols()))
    def test_metrics_identical_fast_on_vs_off(self, protocol):
        """Every protocol: silent-write/read fast paths are invisible.

        This exercises ``silent_write_result`` against the protocol's
        own ``write_hit`` on live traffic — a protocol whose declared
        silent result diverged from its generator path would drift
        here.
        """
        fast, _ = _run_machine(protocol, fast=True)
        slow, _ = _run_machine(protocol, fast=False)
        assert fast == slow

    def test_telemetry_event_counts_identical(self):
        """With probes LIVE, the fast write path emits the exact same
        transition events the generator path would."""
        fast_metrics, fast_events = _run_machine(
            "firefly", fast=True, with_telemetry=True)
        slow_metrics, slow_events = _run_machine(
            "firefly", fast=False, with_telemetry=True)
        assert fast_metrics == slow_metrics
        assert fast_events == slow_events
        assert fast_events > 0

    def test_same_seed_same_metrics(self):
        first, _ = _run_machine("firefly", fast=True, seed=1988)
        second, _ = _run_machine("firefly", fast=True, seed=1988)
        assert first == second

    def test_different_seed_differs(self):
        first, _ = _run_machine("firefly", fast=True, seed=1987)
        second, _ = _run_machine("firefly", fast=True, seed=1990)
        assert first != second


#: The stream names the simulator actually derives from a root seed.
NAMED_STREAMS = (
    "faults",
    "topaz.kernel",
    "cpu0.refs",
    "cpu0.prefetch",
    "cpu0.data",
    "cpu4.refs",
    "thread0.footprint",
    "thread15.footprint",
)


class TestBatchedRngIdentity:
    @pytest.mark.parametrize("name", NAMED_STREAMS)
    def test_random_block_matches_unbatched(self, name):
        batched = RandomStream(1987, name)
        unbatched = RandomStream(1987, name)
        block = batched.random_block(512)
        assert block == [unbatched.random() for _ in range(512)]

    @pytest.mark.parametrize("name", NAMED_STREAMS)
    def test_take_block_matches_unbatched(self, name):
        batched = RandomStream(1987, name)
        unbatched = RandomStream(1987, name)
        taken = [batched.take_block(chunk=64) for _ in range(200)]
        assert taken == [unbatched.random() for _ in range(200)]

    @pytest.mark.parametrize("name", NAMED_STREAMS)
    def test_prebound_calls_match_plain_random(self, name):
        """The pre-bound fast rewrites consume the exact same
        Mersenne-Twister words as the stdlib calls they stand for."""
        stream = RandomStream(1987, name)
        twin = random.Random((1987 << 32) ^ zlib.crc32(name.encode()))
        assert [stream.randint(0, 99) for _ in range(50)] \
            == [twin.randrange(0, 100) for _ in range(50)]
        assert [stream.choice("abcdef") for _ in range(50)] \
            == [twin.choice("abcdef") for _ in range(50)]
        assert [stream.bernoulli(0.3) for _ in range(50)] \
            == [twin.random() < 0.3 for _ in range(50)]

    def test_block_interleaves_with_scalar_draws(self):
        """Blocks then scalars stay aligned with a pure scalar stream
        (a block IS successive scalar draws)."""
        batched = RandomStream(7, "mix")
        unbatched = RandomStream(7, "mix")
        sequence = batched.random_block(10) + [batched.random()] \
            + batched.random_block(3)
        assert sequence == [unbatched.random() for _ in range(14)]

    def test_factory_streams_are_independent_of_order(self):
        a_first = StreamFactory(3)
        b_first = StreamFactory(3)
        a1 = a_first.stream("alpha")
        _ = a_first.stream("beta")
        _ = b_first.stream("beta")
        a2 = b_first.stream("alpha")
        assert a1.random_block(32) == a2.random_block(32)
