"""Property fuzz: random reference streams, checked two ways at once.

Each case replays a seeded random program (reads, full and partial
writes, DMA) against a small N-cache rig and, after **every**
operation:

1. runs the runtime :class:`~repro.system.checker.CoherenceChecker`
   (which now consumes the shared :mod:`repro.verify.invariants`
   predicates) over the whole machine — the dynamic verdict;
2. asserts the touched word's canonical abstract state is a member of
   the static :class:`~repro.verify.ModelChecker`'s reachable set —
   the static verdict.

Agreement in both directions is the point: a dynamic state the model
checker never explored would mean the static abstraction is unsound
(its "zero violations" claim would cover only part of reality), while
a runtime violation the model missed would mean the same.  A shadow
map of last-written values closes the loop on data: every read must
return exactly what the most recent writer (CPU or DMA) stored.

Geometry is chosen so conflict evictions cannot occur (8 direct-mapped
one-word lines, addresses 0..7) — eviction is outside the model's
single-line abstraction, as documented in :mod:`repro.verify.model`.
"""

import pytest

from repro.cache.protocols import available_protocols
from repro.common.rng import RandomStream
from repro.verify import ModelChecker, abstract_state_of
from tests.conftest import MiniRig

ALL = sorted(available_protocols())

CACHES = 3
ADDRESSES = range(8)
OPS_PER_CASE = 120
SEEDS = (0xF1EF, 0x1987)

_checker_cache = {}


def reachable_states(protocol):
    """The statically explored state set, built once per protocol."""
    if protocol not in _checker_cache:
        checker = ModelChecker(protocol, caches=CACHES, include_dma=True)
        report = checker.explore()
        assert report.ok, report.render()
        _checker_cache[protocol] = checker.reachable
    return _checker_cache[protocol]


def random_program(stream: RandomStream, length: int):
    """A seeded stream of (op, cache, address, value) references."""
    ops = ("read", "read", "read", "write", "write", "partial-write",
           "dma-read", "dma-write")
    for n in range(length):
        yield (stream.choice(ops), stream.randint(0, CACHES - 1),
               stream.choice(ADDRESSES), 0x5000 + n)


def apply_op(rig: MiniRig, op, cache, address, value, shadow):
    if op == "read":
        assert rig.read(cache, address) == shadow[address]
    elif op == "write":
        rig.write(cache, address, value)
        shadow[address] = value
    elif op == "partial-write":
        rig.write(cache, address, value, partial=True)
        shadow[address] = value
    elif op == "dma-read":
        def gen():
            result = yield from rig.caches[0].dma_read(address)
            return result
        assert rig.run(gen()) == shadow[address]
    elif op == "dma-write":
        def gen():
            yield from rig.caches[0].dma_write(address, value)
        rig.run(gen())
        shadow[address] = value


@pytest.mark.parametrize("protocol", ALL)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_program_agrees_with_static_model(protocol, seed):
    reachable = reachable_states(protocol)
    rig = MiniRig(protocol=protocol, caches=CACHES, lines=len(ADDRESSES))
    stream = RandomStream(seed, f"fuzz.{protocol}")
    shadow = {address: rig.memory.peek(address) for address in ADDRESSES}

    visited = set()
    for op, cache, address, value in random_program(stream, OPS_PER_CASE):
        apply_op(rig, op, cache, address, value, shadow)
        # Dynamic verdict: the machine-wide runtime checker.
        rig.check_coherence()
        # Static verdict: the word we touched sits in explored space.
        state = abstract_state_of(rig.caches, rig.memory, address)
        assert state in reachable, (
            f"{protocol}: dynamic run reached {state} after {op} "
            f"@cache{cache} addr={address}, but the model checker never "
            f"explored it — the static abstraction is unsound")
        visited.add(state)

    # Every word (touched or not) ends inside explored space.
    for address in ADDRESSES:
        assert abstract_state_of(rig.caches, rig.memory,
                                 address) in reachable

    # The program must genuinely exercise the space, not idle in the
    # reset state: several distinct abstract states per run.
    assert len(visited) >= 4


@pytest.mark.parametrize("protocol", ALL)
def test_replay_is_bit_identical(protocol):
    """Same seed, same program, same visited states — twice."""
    def trail(seed):
        rig = MiniRig(protocol=protocol, caches=CACHES,
                      lines=len(ADDRESSES))
        stream = RandomStream(seed, f"fuzz.{protocol}")
        shadow = {a: rig.memory.peek(a) for a in ADDRESSES}
        states = []
        for op, cache, address, value in random_program(stream, 40):
            apply_op(rig, op, cache, address, value, shadow)
            states.append(abstract_state_of(rig.caches, rig.memory,
                                            address))
        return states

    assert trail(7) == trail(7)
