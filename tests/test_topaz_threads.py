"""The Topaz threads runtime: semantics of every primitive."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.system import CoherenceChecker
from repro.topaz import (
    Broadcast,
    Compute,
    Fork,
    Join,
    Lock,
    Read,
    Signal,
    SpaceKind,
    ThreadState,
    TopazKernel,
    TopazParams,
    Unlock,
    Wait,
    Write,
    YieldCpu,
)


def kernel_with(processors=2, **kw):
    return TopazKernel.build(processors=processors, threads_hint=16,
                             seed=13, **kw)


class TestForkJoin:
    def test_join_returns_child_result(self):
        kernel = kernel_with()

        def child(n):
            yield Compute(10)
            return n * 2

        def main():
            kid = yield Fork(child, 21)
            result = yield Join(kid)
            return result

        root = kernel.fork(main, name="main")
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert root.result == 42

    def test_join_on_finished_thread_is_immediate(self):
        kernel = kernel_with()

        def quick():
            yield Compute(1)
            return "done"

        def main():
            kid = yield Fork(quick)
            yield Compute(500)   # let the child finish first
            result = yield Join(kid)
            return result

        root = kernel.fork(main)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert root.result == "done"

    def test_many_children(self):
        kernel = kernel_with(processors=3)

        def child(n):
            yield Compute(20)
            return n

        def main():
            kids = []
            for n in range(8):
                kid = yield Fork(child, n)
                kids.append(kid)
            total = 0
            for kid in kids:
                total += yield Join(kid)
            return total

        root = kernel.fork(main)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        assert root.result == sum(range(8))

    def test_multiple_joiners(self):
        kernel = kernel_with()

        def slow():
            yield Compute(200)
            return 7

        def waiter(target):
            result = yield Join(target)
            return result

        slow_thread = kernel.fork(slow, name="slow")
        waiters = [kernel.fork(waiter, slow_thread, name=f"w{i}")
                   for i in range(3)]
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert all(w.result == 7 for w in waiters)

    def test_thread_body_must_be_generator(self):
        kernel = kernel_with()
        with pytest.raises(ConfigurationError):
            kernel.fork(lambda: 42)


class TestMutex:
    def test_mutual_exclusion_on_shared_counter(self):
        kernel = kernel_with(processors=4)
        counter = kernel.alloc_shared(1, "counter")
        mutex = kernel.mutex("m")

        def incrementer(rounds):
            for _ in range(rounds):
                yield Lock(mutex)
                value = yield Read(counter)
                yield Compute(3)  # widen the window for races
                yield Write(counter, value + 1)
                yield Unlock(mutex)
            return rounds

        threads = [kernel.fork(incrementer, 15, name=f"inc{i}")
                   for i in range(4)]
        kernel.run_until_quiescent(max_cycles=10_000_000)
        assert kernel._coherent_value(counter) == 60
        CoherenceChecker(kernel.machine).check()

    def test_mutex_word_reflects_state(self):
        kernel = kernel_with(processors=1)
        mutex = kernel.mutex("m")
        observed = []

        def locker():
            yield Lock(mutex)
            yield Compute(5)
            value = yield Read(mutex.address)
            observed.append(value)
            yield Unlock(mutex)
            value = yield Read(mutex.address)
            observed.append(value)

        kernel.fork(locker)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert observed == [1, 0]

    def test_contention_blocks_and_hands_off(self):
        kernel = kernel_with(processors=2)
        mutex = kernel.mutex("m")
        order = []

        def holder():
            yield Lock(mutex)
            yield Compute(300)
            order.append("holder-release")
            yield Unlock(mutex)

        def contender():
            yield Compute(5)
            yield Lock(mutex)
            order.append("contender-acquired")
            yield Unlock(mutex)

        kernel.fork(holder)
        kernel.fork(contender)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert order == ["holder-release", "contender-acquired"]
        assert kernel.stats["lock_contended"].total == 1

    def test_unlock_by_non_owner_is_error(self):
        kernel = kernel_with(processors=1)
        mutex = kernel.mutex("m")

        def bad():
            yield Unlock(mutex)

        kernel.fork(bad)
        with pytest.raises(SimulationError):
            kernel.run_until_quiescent(max_cycles=1_000_000)


class TestConditions:
    def test_wait_signal(self):
        kernel = kernel_with(processors=2)
        mutex = kernel.mutex("m")
        condition = kernel.condition("c")
        flag = kernel.alloc_shared(1, "flag")
        log = []

        def consumer():
            yield Lock(mutex)
            while True:
                ready = yield Read(flag)
                if ready:
                    break
                yield Wait(condition, mutex)
            log.append("consumed")
            yield Unlock(mutex)

        def producer():
            yield Compute(100)
            yield Lock(mutex)
            yield Write(flag, 1)
            yield Signal(condition)
            log.append("produced")
            yield Unlock(mutex)

        kernel.fork(consumer)
        kernel.fork(producer)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert log == ["produced", "consumed"]

    def test_broadcast_wakes_everyone(self):
        kernel = kernel_with(processors=2)
        mutex = kernel.mutex("m")
        condition = kernel.condition("c")
        go = kernel.alloc_shared(1, "go")
        woken = []

        def waiter(i):
            yield Lock(mutex)
            while True:
                ready = yield Read(go)
                if ready:
                    break
                yield Wait(condition, mutex)
            woken.append(i)
            yield Unlock(mutex)

        def broadcaster():
            yield Compute(300)
            yield Lock(mutex)
            yield Write(go, 1)
            yield Broadcast(condition)
            yield Unlock(mutex)

        for i in range(4):
            kernel.fork(waiter, i)
        kernel.fork(broadcaster)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        assert sorted(woken) == [0, 1, 2, 3]

    def test_signal_with_no_waiters_is_noop(self):
        kernel = kernel_with(processors=1)
        condition = kernel.condition("c")

        def signaller():
            yield Signal(condition)
            yield Compute(1)

        kernel.fork(signaller)
        kernel.run_until_quiescent(max_cycles=1_000_000)

    def test_deadlock_reported_at_horizon(self):
        kernel = kernel_with(processors=1)
        mutex = kernel.mutex("m")
        condition = kernel.condition("never")

        def stuck():
            yield Lock(mutex)
            yield Wait(condition, mutex)

        kernel.fork(stuck, name="stuck")
        with pytest.raises(SimulationError) as excinfo:
            kernel.run_until_quiescent(max_cycles=200_000)
        assert "stuck" in str(excinfo.value)


class TestSchedulingAndMigration:
    def test_yield_reschedules(self):
        kernel = kernel_with(processors=1)
        order = []

        def polite(name, rounds):
            for _ in range(rounds):
                yield Compute(5)
                order.append(name)
                yield YieldCpu()

        kernel.fork(polite, "a", 3)
        kernel.fork(polite, "b", 3)
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_migrations_counted(self):
        kernel = kernel_with(processors=3)

        def wanderer():
            for _ in range(20):
                yield Compute(10)
                yield YieldCpu()

        threads = [kernel.fork(wanderer, name=f"t{i}") for i in range(6)]
        kernel.run_until_quiescent(max_cycles=5_000_000)
        assert kernel.total_migrations == sum(t.migrations for t in threads)

    def test_affinity_reduces_migration(self):
        def run(avoid):
            kernel = TopazKernel.build(
                processors=3, threads_hint=16, seed=13,
                params=TopazParams(avoid_migration=avoid))

            def worker():
                for _ in range(30):
                    yield Compute(15)
                    yield YieldCpu()

            for i in range(6):
                kernel.fork(worker, name=f"w{i}")
            kernel.run_until_quiescent(max_cycles=10_000_000)
            return kernel.total_migrations

        assert run(avoid=True) < run(avoid=False)

    def test_preemption_time_slices_compute_hogs(self):
        """Two non-yielding compute loops must share one CPU."""
        kernel = TopazKernel.build(
            processors=1, threads_hint=4, seed=13,
            params=TopazParams(time_slice_instructions=200))
        progress = {"a": 0, "b": 0}

        def hog(name):
            while True:
                yield Compute(50)
                progress[name] += 1

        kernel.fork(hog, "a", name="a")
        kernel.fork(hog, "b", name="b")
        kernel.machine.start()
        kernel.sim.run_until(400_000)
        assert progress["a"] > 0 and progress["b"] > 0
        total = progress["a"] + progress["b"]
        assert abs(progress["a"] - progress["b"]) < 0.3 * total
        assert kernel.stats["preemptions"].total > 0

    def test_preemption_disabled_runs_to_completion(self):
        kernel = TopazKernel.build(
            processors=1, threads_hint=4, seed=13,
            params=TopazParams(time_slice_instructions=None))
        order = []

        def finite(name):
            yield Compute(3000)
            order.append(name)

        kernel.fork(finite, "first", name="first")
        kernel.fork(finite, "second", name="second")
        kernel.run_until_quiescent(max_cycles=2_000_000)
        assert order == ["first", "second"]  # strict run-to-completion
        assert kernel.stats.totals().get("preemptions", 0) == 0

    def test_idle_cpus_wake_on_work(self):
        kernel = kernel_with(processors=4)

        def late_worker():
            yield Compute(50)
            return "ok"

        def spawner():
            yield Compute(2000)  # other CPUs idle meanwhile
            kid = yield Fork(late_worker)
            result = yield Join(kid)
            return result

        root = kernel.fork(spawner)
        kernel.run_until_quiescent(max_cycles=3_000_000)
        assert root.result == "ok"
        assert kernel.stats["idle_waits"].total > 0


class TestAddressSpaces:
    def test_default_spaces_exist(self):
        kernel = kernel_with()
        names = {space.name for space in kernel.address_spaces}
        assert {"Nub", "Taos", "UserTTD", "Trestle"} <= names

    def test_ultrix_space_single_thread(self):
        """'An Ultrix address space can support only one thread.'"""
        kernel = kernel_with()
        space = kernel.create_space("ultrix", SpaceKind.ULTRIX_APP)

        def body():
            yield Compute(1)

        kernel.fork(body, space=space)
        with pytest.raises(ConfigurationError):
            kernel.fork(body, space=space)

    def test_topaz_space_many_threads(self):
        kernel = kernel_with()
        space = kernel.create_space("app", SpaceKind.TOPAZ_APP)

        def body():
            yield Compute(1)

        for _ in range(5):
            kernel.fork(body, space=space)
        assert len(kernel.threads_in_space(space)) == 5


class TestAllocation:
    def test_shared_heap_exhaustion(self):
        kernel = TopazKernel.build(processors=1, threads_hint=1,
                                   shared_region_words=128, seed=1)
        with pytest.raises(ConfigurationError) as excinfo:
            kernel.alloc_shared(10_000, "too much")
        assert "shared region" in str(excinfo.value)

    def test_thread_states_progress(self):
        kernel = kernel_with(processors=1)

        def body():
            yield Compute(10)
            return 1

        thread = kernel.fork(body)
        assert thread.state is ThreadState.READY
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert thread.state is ThreadState.DONE
