"""Calibration pins: the synthetic workload must keep matching the
paper's trace-derived statistics, and the exerciser must keep the
Table 2 character.  These tests are the tripwire for anyone adjusting
workload parameters.
"""

import pytest

from repro.system import CoherenceChecker, FireflyConfig, FireflyMachine
from repro.workloads.threads_exerciser import (
    ExerciserParams,
    build_exerciser,
    exerciser_expectations,
)


class TestSyntheticCalibration:
    """Single-CPU statistics the paper quotes for its traces (§5.2)."""

    @pytest.fixture(scope="class")
    def metrics(self):
        machine = FireflyMachine(FireflyConfig(processors=1))
        result = machine.run(warmup_cycles=400_000, measure_cycles=600_000)
        CoherenceChecker(machine).check()
        return result

    def test_miss_rate_near_point_two(self, metrics):
        """'a single processor Firefly cache achieves a miss rate M of
        0.2' (window-to-window noise allowed: slide-rule accuracy)."""
        assert 0.15 <= metrics.cpus[0].miss_rate <= 0.26

    def test_dirty_fraction_near_quarter(self, metrics):
        """'the fraction D of cache entries that are dirty is 0.25'."""
        assert 0.18 <= metrics.dirty_fraction <= 0.37

    def test_reference_rate_near_expected(self, metrics):
        """One CPU without prefetch: ~850 K refs/sec (Table 2's
        'Expected' column)."""
        assert 780 <= metrics.cpus[0].total_krate <= 920

    def test_read_write_ratio_matches_mix(self, metrics):
        ratio = metrics.cpus[0].read_write_ratio
        assert 4.0 <= ratio <= 4.7   # mix gives 4.33

    def test_tpi_slightly_above_base(self, metrics):
        # Misses cost ~+0.5-0.8 ticks at one CPU.
        assert 12.2 <= metrics.cpus[0].tpi <= 13.2


class TestFiveCpuShape:
    @pytest.fixture(scope="class")
    def metrics(self):
        machine = FireflyMachine(FireflyConfig(processors=5))
        result = machine.run(warmup_cycles=300_000, measure_cycles=500_000)
        CoherenceChecker(machine).check()
        return result

    def test_bus_load_near_table1(self, metrics):
        """Analytic Table 1 puts five processors at L ~= 0.40; the
        cycle simulator is a little cheaper per miss (overlap), so a
        band around it."""
        assert 0.28 <= metrics.bus_load <= 0.48

    def test_per_cpu_slowdown_visible(self, metrics):
        assert all(c.tpi > 12.3 for c in metrics.cpus)

    def test_sharing_traffic_present(self, metrics):
        assert metrics.bus_writes_mshared > 0
        assert metrics.bus_reads_cache > 0


class TestExerciserTable2Character:
    """The four qualitative signatures of Table 2."""

    @pytest.fixture(scope="class")
    def one_cpu(self):
        kernel = build_exerciser(1)
        return kernel.run(warmup_cycles=200_000, measure_cycles=400_000)

    @pytest.fixture(scope="class")
    def five_cpu(self):
        kernel = build_exerciser(5)
        return kernel.run(warmup_cycles=200_000, measure_cycles=400_000)

    def test_actual_exceeds_expected_one_cpu(self, one_cpu):
        """Table 2: 1350 K measured vs 850 K expected."""
        expected = exerciser_expectations(1)["total_krate"]
        assert one_cpu.mean_cpu_krate > 1.2 * expected

    def test_actual_exceeds_expected_five_cpu(self, five_cpu):
        """752 K expected vs 1075 K measured per CPU."""
        expected = exerciser_expectations(5)["total_krate"]
        assert five_cpu.mean_cpu_krate > 1.2 * expected

    def test_one_cpu_misses_higher_than_five(self, one_cpu, five_cpu):
        """M = 0.3 at one CPU (cold caches from rapid context
        switching) vs 0.17 at five."""
        assert one_cpu.mean_miss_rate > five_cpu.mean_miss_rate + 0.08
        assert 0.25 <= one_cpu.mean_miss_rate <= 0.45
        assert 0.12 <= five_cpu.mean_miss_rate <= 0.22

    def test_five_cpu_write_sharing_near_third(self, five_cpu):
        """'75K of the 225K writes done by one CPU (33%) were
        write-throughs that received MShared'."""
        cpu_writes = sum(c.data_writes for c in five_cpu.cpus)
        fraction = five_cpu.bus_writes_mshared / cpu_writes
        assert 0.2 <= fraction <= 0.5

    def test_five_cpu_bus_load_band(self, five_cpu):
        """Table 2 reports L = 0.54 for the five-CPU system."""
        assert 0.45 <= five_cpu.bus_load <= 0.8

    def test_victims_low_because_write_through_cleans(self, five_cpu):
        """'The number of victim writes is much lower than predicted
        ... since write-throughs leave cache lines clean.'"""
        assert five_cpu.bus_victim_writes < five_cpu.bus_writes_mshared
