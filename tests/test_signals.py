"""Unit tests for signal tracing and the Figure 4 timing diagram."""

from repro.bus.signals import SignalTrace, TimingDiagram
from repro.common.types import BusOp


def record_read(trace, start=0, shared=False, supplied=False):
    trace.record(BusOp.MREAD, 0x40, initiator=0, start_cycle=start,
                 shared_response=shared, supplied_by_cache=supplied)


def record_write(trace, start=0, shared=False):
    trace.record(BusOp.MWRITE, 0x40, initiator=1, start_cycle=start,
                 shared_response=shared, supplied_by_cache=False)


class TestSignalTrace:
    def test_read_cycle_layout(self):
        """The Figure 4 layout: address@1, probe@2, MShared@3, data@4."""
        trace = SignalTrace()
        record_read(trace, start=10, shared=True, supplied=True)
        events = {e.signal: e.cycle for e in trace.transactions[0].events}
        assert events["Arbitrate"] == 10
        assert events["Address"] == 10
        assert events["TagProbe"] == 11
        assert events["MShared"] == 12
        assert events["ReadData"] == 13

    def test_write_carries_data_in_cycle_two(self):
        trace = SignalTrace()
        record_write(trace, start=0)
        events = {e.signal: e.cycle for e in trace.transactions[0].events}
        assert events["WriteData"] == 1
        assert "ReadData" not in events

    def test_no_mshared_event_when_unshared(self):
        trace = SignalTrace()
        record_read(trace, shared=False)
        signals = {e.signal for e in trace.transactions[0].events}
        assert "MShared" not in signals

    def test_data_source_annotation(self):
        trace = SignalTrace()
        record_read(trace, shared=True, supplied=True)
        read_data = [e for e in trace.transactions[0].events
                     if e.signal == "ReadData"][0]
        assert "inhibited" in read_data.detail

    def test_end_cycle(self):
        trace = SignalTrace()
        record_read(trace, start=8)
        assert trace.transactions[0].end_cycle == 12


class TestTimingDiagram:
    def test_renders_all_signal_rows(self):
        trace = SignalTrace()
        record_read(trace, shared=True, supplied=True)
        text = TimingDiagram(trace).render()
        for signal in TimingDiagram.SIGNAL_ORDER:
            assert signal in text

    def test_empty_trace(self):
        text = TimingDiagram(SignalTrace()).render()
        assert "no transactions" in text

    def test_back_to_back_operations(self):
        trace = SignalTrace()
        record_read(trace, start=0)
        record_write(trace, start=4, shared=True)
        text = TimingDiagram(trace).render()
        assert "MRead@0" in text
        assert "MWrite@4 (MShared)" in text

    def test_window_selection(self):
        trace = SignalTrace()
        for i in range(5):
            record_read(trace, start=i * 4)
        text = TimingDiagram(trace).render(first=2, count=2)
        assert "MRead@8" in text and "MRead@12" in text
        assert "MRead@0" not in text
