"""The example scripts: importable, and the fast ones run end-to-end.

The examples double as acceptance tests of the public API — if an
example breaks, a user's first contact with the library breaks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))

FAST_EXAMPLES = ["threads_workload", "display_demo"]


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_exist(self):
        assert "quickstart" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 6

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_importable_with_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), \
            f"{name}.py must define main()"
        assert module.__doc__, f"{name}.py must document itself"

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_example_runs(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # it reported something substantial
