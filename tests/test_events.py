"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.common.events import Simulator


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        log = []

        def proc():
            yield sim.timeout(5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5]

    def test_zero_timeout_runs_same_time(self, sim):
        log = []

        def proc():
            yield sim.timeout(0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_sequential_timeouts_accumulate(self, sim):
        log = []

        def proc():
            for _ in range(3):
                yield sim.timeout(7)
                log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [7, 14, 21]

    def test_interleaving_is_time_ordered(self, sim):
        log = []

        def proc(name, delay):
            yield sim.timeout(delay)
            log.append(name)
            yield sim.timeout(delay)
            log.append(name)

        sim.process(proc("slow", 10))
        sim.process(proc("fast", 3))
        sim.run()
        assert log == ["fast", "fast", "slow", "slow"]


class TestEvents:
    def test_event_delivers_value(self, sim):
        event = sim.event("e")
        got = []

        def waiter():
            value = yield event
            got.append(value)

        def firer():
            yield sim.timeout(4)
            event.succeed(42)

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [42]

    def test_multiple_waiters_all_resume(self, sim):
        event = sim.event()
        got = []

        def waiter(i):
            yield event
            got.append(i)

        def firer():
            yield sim.timeout(2)
            event.succeed()

        for i in range(3):
            sim.process(waiter(i))
        sim.process(firer())
        sim.run()
        assert sorted(got) == [0, 1, 2]

    def test_late_waiter_sees_fired_value(self, sim):
        event = sim.event()
        got = []

        def firer():
            event.succeed("early")
            yield sim.timeout(1)

        def late():
            yield sim.timeout(5)
            value = yield event
            got.append(value)

        sim.process(firer())
        sim.process(late())
        sim.run()
        assert got == ["early"]

    def test_double_fire_is_error(self, sim):
        event = sim.event("once")
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fired_and_value_properties(self, sim):
        event = sim.event()
        assert not event.fired
        event.succeed(7)
        assert event.fired
        assert event.value == 7


def self_firing(sim, event):
    def gen():
        yield sim.timeout(2)
        event.succeed()
    return gen()


class TestProcesses:
    def test_join_returns_result(self, sim):
        def child():
            yield sim.timeout(3)
            return "payload"

        def parent():
            proc = sim.process(child(), "child")
            result = yield proc
            return result, sim.now

        parent_proc = sim.process(parent(), "parent")
        sim.run()
        assert parent_proc.result == ("payload", 3)

    def test_join_after_done_is_immediate(self, sim):
        def child():
            return "done"
            yield  # pragma: no cover

        def parent():
            proc = sim.process(child())
            yield sim.timeout(10)
            result = yield proc
            return result

        parent_proc = sim.process(parent())
        sim.run()
        assert parent_proc.result == "done"

    def test_bad_waitable_raises(self, sim):
        def proc():
            yield "not a waitable"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_done_and_result_flags(self, sim):
        def proc():
            yield sim.timeout(1)
            return 5

        p = sim.process(proc())
        assert not p.done
        sim.run()
        assert p.done and p.result == 5


class TestResources:
    def test_mutual_exclusion(self, sim):
        res = sim.resource("r")
        log = []

        def user(name, hold):
            yield res.acquire()
            log.append((name, "in", sim.now))
            yield sim.timeout(hold)
            res.release(res.holder)
            log.append((name, "out", sim.now))

        sim.process(user("a", 5))
        sim.process(user("b", 5))
        sim.run()
        # b enters only after a leaves.
        assert log == [("a", "in", 0), ("a", "out", 5),
                       ("b", "in", 5), ("b", "out", 10)]

    def test_priority_order(self, sim):
        res = sim.resource()
        order = []

        def holder():
            yield res.acquire()
            yield sim.timeout(10)
            res.release(res.holder)

        def requester(name, priority):
            yield sim.timeout(1)
            yield res.acquire(priority=priority)
            order.append(name)
            res.release(res.holder)

        sim.process(holder())
        sim.process(requester("low", 5))
        sim.process(requester("high", 1))
        sim.process(requester("mid", 3))
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_priority(self, sim):
        res = sim.resource()
        order = []

        def holder():
            yield res.acquire()
            yield sim.timeout(10)
            res.release(res.holder)

        def requester(name):
            yield sim.timeout(1)
            yield res.acquire(priority=2)
            order.append(name)
            res.release(res.holder)

        sim.process(holder())
        for name in ("first", "second", "third"):
            sim.process(requester(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_by_non_holder_is_error(self, sim):
        res = sim.resource()
        errors = []

        def holder():
            yield res.acquire()
            yield sim.timeout(5)
            res.release(res.holder)

        def intruder():
            yield sim.timeout(1)
            me = sim.process(noop())
            try:
                res.release(me)
            except SimulationError as exc:
                errors.append(exc)

        def noop():
            return
            yield  # pragma: no cover

        sim.process(holder())
        sim.process(intruder())
        sim.run()
        assert len(errors) == 1

    def test_wait_accounting(self, sim):
        res = sim.resource()

        def user(delay):
            yield sim.timeout(delay)
            yield res.acquire()
            yield sim.timeout(10)
            res.release(res.holder)

        sim.process(user(0))
        sim.process(user(0))
        sim.run()
        assert res.grants == 2
        assert res.total_wait == 10  # the second waited one tenure


class TestRunControl:
    def test_run_until_lands_exactly(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run_until(42)
        assert sim.now == 42
        sim.run_until(200)
        assert sim.now == 200

    def test_run_until_past_is_error(self, sim):
        sim.run_until(10)
        with pytest.raises(SimulationError):
            sim.run_until(5)

    def test_deadlock_detection(self, sim):
        event = sim.event("never")

        def stuck():
            yield event

        sim.process(stuck(), "stuck")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(check_deadlock=True)
        assert "stuck" in str(excinfo.value)

    def test_peek_next_event(self, sim):
        def proc():
            yield sim.timeout(9)

        assert sim.peek() is None or sim.peek() == 0
        sim.process(proc())
        sim.run_until(0)
        assert sim.peek() == 9

    def test_call_at_runs_callback(self, sim):
        fired = []
        sim.call_at(6, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [6]
