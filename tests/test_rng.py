"""Unit and property tests for random streams and accumulators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import FractionalAccumulator, RandomStream, StreamFactory


class TestStreamFactory:
    def test_same_name_same_seed_reproduces(self):
        a = StreamFactory(7).stream("cpu0")
        b = StreamFactory(7).stream("cpu0")
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        factory = StreamFactory(7)
        a = factory.stream("cpu0")
        b = factory.stream("cpu1")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = StreamFactory(1).stream("x")
        b = StreamFactory(2).stream("x")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_duplicate_name_rejected(self):
        factory = StreamFactory(0)
        factory.stream("x")
        with pytest.raises(ConfigurationError):
            factory.stream("x")

    def test_creation_order_irrelevant(self):
        first = StreamFactory(3)
        second = StreamFactory(3)
        a1 = first.stream("a")
        first.stream("b")
        second.stream("b")
        a2 = second.stream("a")
        assert a1.random() == a2.random()


class TestRandomStream:
    def test_bernoulli_extremes(self):
        stream = RandomStream(0, "bern")
        assert not any(stream.bernoulli(0.0) for _ in range(100))
        assert all(stream.bernoulli(1.0) for _ in range(100))

    def test_randint_bounds(self):
        stream = RandomStream(0, "ri")
        values = [stream.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_geometric_mean_and_minimum(self):
        stream = RandomStream(0, "geo")
        values = [stream.geometric(5.0) for _ in range(3000)]
        assert min(values) >= 1
        mean = sum(values) / len(values)
        assert 4.5 < mean < 5.5

    def test_geometric_one_is_constant(self):
        stream = RandomStream(0, "geo1")
        assert all(stream.geometric(1.0) == 1 for _ in range(20))

    def test_geometric_below_one_rejected(self):
        stream = RandomStream(0, "geo_bad")
        with pytest.raises(ConfigurationError):
            stream.geometric(0.5)

    def test_expovariate_mean(self):
        stream = RandomStream(0, "exp")
        values = [stream.expovariate(100.0) for _ in range(5000)]
        mean = sum(values) / len(values)
        assert 90 < mean < 110

    def test_expovariate_requires_positive_mean(self):
        stream = RandomStream(0, "exp_bad")
        with pytest.raises(ConfigurationError):
            stream.expovariate(0)

    def test_choice(self):
        stream = RandomStream(0, "choice")
        options = ["a", "b", "c"]
        assert all(stream.choice(options) in options for _ in range(50))


class TestFractionalAccumulator:
    def test_integer_rate_is_constant(self):
        acc = FractionalAccumulator(2.0)
        assert [acc.next() for _ in range(5)] == [2, 2, 2, 2, 2]

    def test_long_run_mean_exact(self):
        acc = FractionalAccumulator(2.13)
        total = sum(acc.next() for _ in range(10_000))
        # Error diffusion keeps the running total within one step of
        # exact (floating-point residue accounts for the slack).
        assert abs(total - 21_300) <= 1

    def test_paper_mix_rates_exact(self):
        for rate, n, expected in ((0.95, 100, 95), (0.78, 100, 78),
                                  (0.40, 100, 40)):
            acc = FractionalAccumulator(rate)
            total = sum(acc.next() for _ in range(n))
            assert abs(total - expected) <= 1  # binary-float residue

    def test_zero_rate(self):
        acc = FractionalAccumulator(0.0)
        assert all(acc.next() == 0 for _ in range(10))

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FractionalAccumulator(-0.1)

    def test_bad_phase_rejected(self):
        with pytest.raises(ConfigurationError):
            FractionalAccumulator(1.0, phase=1.0)

    def test_reset_restores_phase(self):
        acc = FractionalAccumulator(0.5)
        first = [acc.next() for _ in range(4)]
        acc.reset()
        assert [acc.next() for _ in range(4)] == first

    @given(rate=st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
           steps=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=60, deadline=None)
    def test_property_mean_within_one(self, rate, steps):
        """The accumulated total never drifts more than 1 from exact."""
        acc = FractionalAccumulator(rate)
        total = sum(acc.next() for _ in range(steps))
        assert abs(total - rate * steps) <= 1.0 + 1e-6

    @given(rate=st.floats(min_value=0.0, max_value=5.0,
                          allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_property_each_step_near_rate(self, rate):
        """Every step yields floor(rate) or ceil(rate)."""
        import math
        acc = FractionalAccumulator(rate)
        for _ in range(100):
            step = acc.next()
            assert step in (math.floor(rate), math.ceil(rate))
