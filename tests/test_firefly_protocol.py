"""The Firefly protocol against the paper's Figure 3 and prose.

The golden transition table below is transcribed from the paper; the
``test_figure3_golden_table`` check enumerates the *implemented* FSM
with a live two-cache rig and requires exact agreement.
"""

import pytest

from repro.cache.fsm import enumerate_transitions, transition_map
from repro.cache.line import LineState
from repro.common.types import AccessKind, BusOp, MemRef
from tests.conftest import MiniRig

# (start, stimulus, MShared response) -> end state.  P-write rows with
# a bus operation depend on the response; silent rows use peer=False.
FIGURE3_GOLDEN = {
    ("I", "P-read-miss", False): "V",
    ("I", "P-read-miss", True): "S",
    ("I", "P-write-miss", False): "V",
    ("I", "P-write-miss", True): "S",
    ("V", "P-read", False): "V",
    ("V", "P-write", False): "D",
    ("V", "M-read", False): "S",
    ("V", "M-write", False): "S",
    ("D", "P-read", False): "D",
    ("D", "P-write", False): "D",
    ("D", "M-read", False): "SD",
    ("D", "M-write", False): "S",
    ("S", "P-read", False): "S",
    ("S", "P-write", False): "V",
    ("S", "P-write", True): "S",
    ("S", "M-read", False): "S",
    ("S", "M-write", False): "S",
    ("SD", "P-read", False): "SD",
    ("SD", "P-write", False): "V",
    ("SD", "P-write", True): "S",
    ("SD", "M-read", False): "SD",
    ("SD", "M-write", False): "S",
}


class TestFigure3:
    def test_figure3_golden_table(self):
        measured = transition_map("firefly")
        assert measured == FIGURE3_GOLDEN

    def test_every_arc_has_expected_bus_ops(self):
        by_key = {(t.start.value, t.stimulus, t.peer_holds): t
                  for t in enumerate_transitions("firefly")}
        # Silent arcs: P hits on unshared lines.
        for key in (("V", "P-read", False), ("V", "P-write", False),
                    ("D", "P-read", False), ("D", "P-write", False),
                    ("S", "P-read", False), ("SD", "P-read", False)):
            assert by_key[key].bus_ops == (), key
        # Shared write hits are exactly one write-through.
        assert by_key[("S", "P-write", True)].bus_ops == ("MWrite",)
        assert by_key[("SD", "P-write", True)].bus_ops == ("MWrite",)
        # Misses are exactly one bus op (no victim in a fresh rig).
        assert by_key[("I", "P-read-miss", False)].bus_ops == ("MRead",)
        assert by_key[("I", "P-write-miss", False)].bus_ops == ("MWrite",)


class TestConditionalWriteThrough:
    def test_private_writes_stay_off_the_bus(self, rig):
        rig.read(0, 100)
        before = rig.mbus.stats["ops"].total
        for value in range(5):
            rig.write(0, 100, value)
        assert rig.mbus.stats["ops"].total == before
        assert rig.caches[0].state_of(100) is LineState.DIRTY

    def test_shared_writes_go_through_and_update_everyone(self, rig):
        rig.read(0, 100)
        rig.read(1, 100)
        rig.write(0, 100, 77)
        assert rig.caches[1].peek(100) == 77
        assert rig.memory.peek(100) == 77
        assert rig.caches[0].state_of(100) is LineState.SHARED

    def test_write_through_continues_while_shared(self, rig):
        rig.read(0, 100)
        rig.read(1, 100)
        before = rig.mbus.stats.totals().get("op.MWrite", 0)
        for value in range(4):
            rig.write(0, 100, value)
        assert rig.mbus.stats["op.MWrite"].total - before == 4

    def test_last_sharer_reverts_to_write_back(self, rig):
        """'Only one extra write-through is done by the last cache.'"""
        rig.read(0, 100)
        rig.read(1, 100)
        # Cache 1 loses its copy through replacement by a conflicting
        # address (same index, different tag).
        conflict = 100 + rig.caches[1].geometry.lines
        rig.read(1, conflict)
        assert not rig.caches[1].present(100)
        # The next write still goes through (Shared is stale-true)...
        rig.write(0, 100, 1)
        assert rig.caches[0].state_of(100) is LineState.VALID
        # ...but the one after stays local.
        before = rig.mbus.stats["ops"].total
        rig.write(0, 100, 2)
        assert rig.mbus.stats["ops"].total == before
        assert rig.caches[0].state_of(100) is LineState.DIRTY


class TestMemoryInhibitAndSharedDirty:
    def test_dirty_supplier_keeps_dirty_and_memory_stays_stale(self, rig):
        rig.read(0, 50)
        rig.write(0, 50, 123)          # D in cache 0; memory stale
        assert rig.memory.peek(50) == 0
        value = rig.read(1, 50)        # supplied cache-to-cache
        assert value == 123
        assert rig.caches[0].state_of(50) is LineState.SHARED_DIRTY
        assert rig.caches[1].state_of(50) is LineState.SHARED
        assert rig.memory.peek(50) == 0  # memory was inhibited
        assert rig.mbus.stats["read.cache_supplied"].total == 1

    def test_shared_dirty_victim_writes_back(self, rig):
        rig.read(0, 50)
        rig.write(0, 50, 9)
        rig.read(1, 50)                # cache 0 now SD
        conflict = 50 + rig.caches[0].geometry.lines
        rig.read(0, conflict)          # victimise the SD line
        assert rig.memory.peek(50) == 9
        assert rig.mbus.stats["write.victim"].total == 1

    def test_snooped_write_clears_dirty(self, rig):
        """An MWrite updates memory, so a dirty snooper comes clean."""
        rig.read(0, 50)
        rig.write(0, 50, 5)            # cache 0: D
        rig.read(1, 50)                # cache 0: SD
        rig.write(1, 50, 6)            # cache 1 writes through
        assert rig.caches[0].state_of(50) is LineState.SHARED
        assert rig.memory.peek(50) == 6
        # Evicting cache 0's line now costs no victim write.
        before = rig.mbus.stats["write.victim"].total
        conflict = 50 + rig.caches[0].geometry.lines
        rig.read(0, conflict)
        assert rig.mbus.stats["write.victim"].total == before

    def test_clean_sharers_supply_reads(self, rig4):
        rig4.write(0, 60, 8)           # miss-optimised: clean VALID
        rig4.read(1, 60)
        rig4.read(2, 60)               # supplied by sharers
        assert rig4.mbus.stats["read.cache_supplied"].total >= 1
        for i in range(3):
            assert rig4.caches[i].peek(60) == 8


class TestWriteMissOptimisation:
    def test_longword_write_miss_allocates_clean(self, rig):
        """'the cache simply does write-through, leaving the line clean'"""
        rig.write(0, 70, 42)
        assert rig.caches[0].state_of(70) is LineState.VALID
        assert rig.memory.peek(70) == 42
        assert rig.mbus.stats["op.MWrite"].total == 1
        assert rig.mbus.stats.totals().get("op.MRead", 0) == 0

    def test_partial_write_miss_reads_first(self, rig):
        """Sub-longword writes take read-miss + write-hit."""
        rig.memory.poke(70, 9)
        rig.write(0, 70, 42, partial=True)
        assert rig.mbus.stats["op.MRead"].total == 1
        assert rig.caches[0].state_of(70) is LineState.DIRTY

    def test_write_miss_sets_shared_from_response(self, rig):
        rig.read(1, 70)
        rig.write(0, 70, 1)
        assert rig.caches[0].state_of(70) is LineState.SHARED
        assert rig.caches[1].peek(70) == 1

    def test_write_miss_victimises_dirty_resident(self, rig):
        rig.read(0, 70)
        rig.write(0, 70, 3)            # dirty at index
        conflict = 70 + rig.caches[0].geometry.lines
        rig.write(0, conflict, 4)      # write miss replaces dirty line
        assert rig.memory.peek(70) == 3
        assert rig.mbus.stats["write.victim"].total == 1

    def test_multiword_lines_disable_optimisation(self):
        rig = MiniRig(words_per_line=4)
        rig.write(0, 70, 42)
        # Read-for-allocate then write-through of the merged line.
        assert rig.mbus.stats["op.MRead"].total == 1


class TestDataIntegrity:
    def test_read_your_own_write(self, rig):
        rig.write(0, 80, 5)
        assert rig.read(0, 80) == 5

    def test_write_propagation_chain(self, rig4):
        rig4.write(0, 90, 1)
        assert rig4.read(1, 90) == 1
        rig4.write(1, 90, 2)
        assert rig4.read(2, 90) == 2
        rig4.write(2, 90, 3)
        assert rig4.read(3, 90) == 3
        assert rig4.read(0, 90) == 3
        rig4.check_coherence()

    def test_interleaved_addresses_do_not_interfere(self, rig):
        rig.write(0, 10, 100)
        rig.write(1, 11, 111)
        assert rig.read(1, 10) == 100
        assert rig.read(0, 11) == 111
        rig.check_coherence()
