"""Unit tests for the QBus, its mapping registers and DMA pacing."""

import pytest

from repro.bus.qbus import (
    DEFAULT_CYCLES_PER_WORD,
    DMA_REACH_WORDS,
    QBUS_PAGE_WORDS,
    QBUS_PAGES,
    QBus,
    QBusMap,
)
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import MBUS_OP_CYCLES, AccessKind, MemRef
from tests.conftest import MiniRig


class TestQBusMap:
    def test_translate_round_trip(self):
        qmap = QBusMap()
        qmap.map_page(3, 8192)
        assert qmap.translate(3 * QBUS_PAGE_WORDS + 17) == 8192 + 17

    def test_unmapped_page_rejected(self):
        qmap = QBusMap()
        with pytest.raises(SimulationError):
            qmap.translate(0)

    def test_out_of_space_address_rejected(self):
        qmap = QBusMap()
        with pytest.raises(SimulationError):
            qmap.translate(QBUS_PAGES * QBUS_PAGE_WORDS)

    def test_unaligned_target_rejected(self):
        qmap = QBusMap()
        with pytest.raises(ConfigurationError):
            qmap.map_page(0, 5)

    def test_dma_reach_enforced(self):
        """DMA can only reach the first 16 MB (paper §5)."""
        qmap = QBusMap()
        with pytest.raises(ConfigurationError):
            qmap.map_page(0, DMA_REACH_WORDS)
        qmap.map_page(0, DMA_REACH_WORDS - QBUS_PAGE_WORDS)  # last page OK

    def test_map_region_spans_pages(self):
        qmap = QBusMap()
        qmap.map_region(0, 4096, words=300)
        assert qmap.mapped_pages() == 3  # ceil(300 / 128)
        assert qmap.translate(200) == 4096 + 200

    def test_unmap(self):
        qmap = QBusMap()
        qmap.map_page(1, 0)
        qmap.unmap_page(1)
        with pytest.raises(SimulationError):
            qmap.translate(QBUS_PAGE_WORDS)


def _qbus_rig():
    rig = MiniRig(caches=2)
    qbus = QBus(rig.sim, rig.caches[0])
    qbus.map.map_region(0, 4096, words=1024)
    return rig, qbus


class TestDma:
    def test_write_block_lands_in_memory(self):
        rig, qbus = _qbus_rig()

        def gen():
            yield from qbus.dma_write_block(0, [11, 22, 33])

        rig.run(gen())
        assert [rig.memory.peek(4096 + i) for i in range(3)] == [11, 22, 33]

    def test_read_block_returns_memory(self):
        rig, qbus = _qbus_rig()
        for i in range(4):
            rig.memory.poke(4096 + i, 100 + i)

        def gen():
            values = yield from qbus.dma_read_block(0, 4)
            return values

        assert rig.run(gen()) == [100, 101, 102, 103]

    def test_dma_word_pacing(self):
        """Each word costs cycles_per_word of QBus time plus MBus ops."""
        rig, qbus = _qbus_rig()

        def gen():
            yield from qbus.dma_write_block(0, [1] * 5)
            return rig.sim.now

        elapsed = rig.run(gen())
        minimum = 5 * (DEFAULT_CYCLES_PER_WORD + MBUS_OP_CYCLES)
        assert elapsed >= minimum

    def test_saturated_qbus_mbus_load_near_thirty_percent(self):
        """Paper: 'the QBus consumes about 30% of the main memory
        bandwidth' when fully loaded."""
        rig, qbus = _qbus_rig()
        rig.mbus.mark_window()

        def gen():
            yield from qbus.dma_write_block(0, [1] * 200)

        rig.run(gen())
        load = rig.mbus.load()
        assert 0.25 < load < 0.35

    def test_dma_goes_through_io_cache_without_allocation(self):
        rig, qbus = _qbus_rig()

        def gen():
            yield from qbus.dma_read_block(0, 3)

        rig.run(gen())
        assert rig.caches[0].stats["dma.read_miss"].total == 3
        # Misses do not allocate: the words are still absent.
        assert not rig.caches[0].present(4096)

    def test_dma_read_hits_in_io_cache(self):
        rig, qbus = _qbus_rig()
        rig.memory.poke(4096, 77)
        rig.read(0, 4096)  # CPU 0 caches the word

        def gen():
            values = yield from qbus.dma_read_block(0, 1)
            return values

        assert rig.run(gen()) == [77]
        assert rig.caches[0].stats["dma.read_hit"].total == 1

    def test_pio_occupies_qbus_only(self):
        rig, qbus = _qbus_rig()
        rig.mbus.mark_window()

        def gen():
            yield from qbus.pio()

        rig.run(gen())
        assert qbus.stats["pio"].total == 1
        assert rig.mbus.stats["ops"].total == 0

    def test_bad_cycles_per_word(self):
        rig = MiniRig()
        with pytest.raises(ConfigurationError):
            QBus(rig.sim, rig.caches[0], cycles_per_word=0)


class TestDmaOwnCacheRaces:
    def test_dma_write_queued_while_cpu_fills_the_line(self):
        """Regression (found by hypothesis): the DMA shares CPU 0's
        cache, and its queued bus write does not snoop its own cache —
        so a line the CPU filled while the write waited must be patched
        at the grant, or it goes permanently stale."""
        rig, qbus = _qbus_rig()

        def cpu0_reads():
            # Two reads: the first occupies the bus so the DMA write
            # queues; the second fills the target line while it waits.
            yield from rig.caches[0].cpu_read(
                MemRef(4097, AccessKind.DATA_READ))
            yield from rig.caches[0].cpu_read(
                MemRef(4096, AccessKind.DATA_READ))

        def cpu1_reads():
            yield from rig.caches[1].cpu_read(
                MemRef(4096, AccessKind.DATA_READ))

        def dma():
            yield from qbus.dma_write_block(0, [1001])

        rig.sim.process(cpu0_reads(), "cpu0")
        rig.sim.process(cpu1_reads(), "cpu1")
        rig.sim.process(dma(), "dma")
        rig.sim.run()
        rig.check_coherence()
        for i in (0, 1):
            cached = rig.caches[i].peek(4096)
            assert cached in (None, 1001)
        assert rig.memory.peek(4096) == 1001

    def test_dma_read_queued_while_cpu_dirties_the_line(self):
        """The read-side of the same hole: the DMA read must observe a
        store CPU 0 completed before the read's serialisation point."""
        rig, qbus = _qbus_rig()
        results = []

        def cpu0_writes():
            yield from rig.caches[0].cpu_read(
                MemRef(4097, AccessKind.DATA_READ))   # bus occupier
            yield from rig.caches[0].cpu_write(
                MemRef(4096, AccessKind.DATA_WRITE), 777)

        def dma():
            yield rig.sim.timeout(1)
            values = yield from qbus.dma_read_block(0, 1)
            results.extend(values)

        rig.sim.process(cpu0_writes(), "cpu0")
        rig.sim.process(dma(), "dma")
        rig.sim.run()
        rig.check_coherence()
        assert results == [777] or results == [0]
        # Whatever the interleaving, the final state is coherent and
        # the CPU's store survives.
        assert rig.caches[0].peek(4096) == 777


class TestDmaCoherence:
    def test_dma_write_updates_cpu_caches(self):
        """A DMA write must be seen by CPUs holding the line."""
        rig, qbus = _qbus_rig()
        rig.write(1, 4096, 5)   # CPU 1 holds the word dirty
        rig.read(0, 4096)       # IO cache shares it

        def gen():
            yield from qbus.dma_write_block(0, [999])

        rig.run(gen())
        assert rig.caches[1].peek(4096) == 999
        assert rig.memory.peek(4096) == 999
        assert rig.read(1, 4096) == 999
        rig.check_coherence()

    def test_dma_read_sees_dirty_cpu_data(self):
        """DMA must observe data a CPU wrote but has not written back."""
        rig, qbus = _qbus_rig()
        rig.write(1, 4100, 321)  # dirty in CPU 1's cache only

        def gen():
            values = yield from qbus.dma_read_block(4, 1)
            return values

        assert rig.run(gen()) == [321]
        rig.check_coherence()
