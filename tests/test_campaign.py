"""The campaign manager (repro.campaign) and regression dashboard.

The load-bearing claims:

- a campaign spec expands deterministically (axes, exclusions, labels,
  content-hashed keys of spec+seed+git-sha);
- the JSONL ledger makes ``campaign run`` resumable: a run killed
  mid-flight loses only in-flight trials, the re-run skips everything
  the ledger holds, and the merged report is **byte-identical** to an
  uninterrupted run at any job count;
- golden digests turn silent result drift into a named failure;
- the HTML dashboard renders the BENCH trajectory with noise-aware
  regression verdicts from stdlib templating alone.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignStore,
    campaign_trial,
    gc_campaign,
    golden_block,
    load_spec,
    parse_spec,
    run_campaign_spec,
)
from repro.campaign.spec import CAMPAIGN_SCHEMA
from repro.common.errors import ConfigurationError
from repro.common.provenance import (
    content_hash,
    git_sha,
    provenance_stamp,
)
from repro.observatory.runner import TrialFailure
from repro.reporting import render_dashboard

pytestmark = pytest.mark.campaign

REPO_ROOT = Path(__file__).resolve().parents[1]

FAIL_ENV = "FIREFLY_TEST_PROBE_FAIL"


def probe_spec(name="resume-test", seeds=(1, 2, 3, 4, 5, 6),
               golden=None, fail_env=FAIL_ENV):
    group = {"kind": "probe", "name": "t"}
    if fail_env:
        group["fail_env"] = fail_env
    data = {"schema": CAMPAIGN_SCHEMA, "name": name,
            "description": "probe-only campaign for the test-suite",
            "seeds": list(seeds), "matrix": [group]}
    if golden:
        data["golden"] = golden
    return parse_spec(data)


def spec_dict(**overrides):
    data = {
        "schema": CAMPAIGN_SCHEMA,
        "name": "unit",
        "description": "",
        "seeds": [1987, 1988],
        "matrix": [{
            "kind": "sweep",
            "processors": [1, 2],
            "protocol": ["firefly", "write-through"],
            "warmup": 200,
            "measure": 800,
        }],
    }
    data.update(overrides)
    return data


# ---------------------------------------------------------------------------
# provenance (satellite: stamps on every artifact)


class TestProvenance:
    def test_content_hash_is_order_independent(self):
        assert content_hash({"a": 1, "b": [2, 3]}) \
            == content_hash({"b": [2, 3], "a": 1})

    def test_content_hash_distinguishes_values(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_content_hash_rejects_nan(self):
        with pytest.raises(ValueError):
            content_hash({"a": float("nan")})

    def test_git_sha_in_this_checkout(self):
        sha = git_sha(REPO_ROOT)
        assert sha is not None and len(sha) == 40

    def test_git_sha_outside_a_checkout(self, tmp_path):
        assert git_sha(tmp_path) is None

    def test_stamp_shape(self):
        stamp = provenance_stamp({"x": 1}, schema="demo/1", sha="abc")
        assert stamp == {"git_sha": "abc", "schema": "demo/1",
                         "config_hash": content_hash({"x": 1})}

    def test_old_bench_files_without_provenance_still_load(self):
        from repro.observatory.bench import load_bench

        document = load_bench(REPO_ROOT / "BENCH_0001.json")
        assert "provenance" not in document

    def test_validate_bench_rejects_non_object_provenance(self):
        from repro.observatory.bench import load_bench, validate_bench

        document = load_bench(REPO_ROOT / "BENCH_0002.json")
        document["provenance"] = "not-an-object"
        assert any("provenance" in problem
                   for problem in validate_bench(document))

    @pytest.mark.slow
    def test_run_suite_stamps_provenance(self):
        from repro.observatory.bench import (BENCH_SCHEMA, run_suite,
                                             validate_bench)

        document = run_suite(quick=True, trials=1,
                             scenarios=["exerciser-1cpu"],
                             skip_overhead=True)
        stamp = document["provenance"]
        assert stamp["schema"] == BENCH_SCHEMA
        assert stamp["config_hash"].startswith("sha256:")
        assert validate_bench(document) == []


# ---------------------------------------------------------------------------
# spec parsing and expansion


class TestSpecValidation:
    def test_valid_spec_parses(self):
        spec = parse_spec(spec_dict())
        assert spec.name == "unit"
        assert spec.spec_hash.startswith("sha256:")

    @pytest.mark.parametrize("mutation, fragment", [
        ({"schema": "nope/1"}, "schema"),
        ({"name": "has space"}, "name"),
        ({"seeds": []}, "seeds"),
        ({"seeds": [1, 1]}, "duplicate"),
        ({"matrix": []}, "matrix"),
        ({"extra": 1}, "unknown top-level"),
        ({"golden": {"x": "notadigest"}}, "digest"),
    ])
    def test_bad_top_level(self, mutation, fragment):
        with pytest.raises(ConfigurationError, match=fragment):
            parse_spec(spec_dict(**mutation))

    @pytest.mark.parametrize("group, fragment", [
        ({"kind": "mystery"}, "kind"),
        ({"kind": "sweep", "threads": 4}, "unknown key"),
        ({"kind": "sweep", "processors": [0]}, "processors"),
        ({"kind": "sweep", "protocol": "klingon"}, "protocol"),
        ({"kind": "sweep", "generation": "vax9000"}, "generation"),
        ({"kind": "bench", "scenarios": ["no-such"]}, "scenario"),
        ({"kind": "chaos", "scenarios": ["no-such"]}, "scenario"),
        ({"kind": "serve", "scenarios": ["no-such"]}, "scenario"),
        ({"kind": "serve", "warmup": 100}, "unknown key"),
        ({"kind": "probe", "name": ""}, "name"),
        ({"kind": "sweep", "exclude": [{"threads": 1}]}, "unknown axis"),
        ({"kind": "sweep", "exclude": ["np1"]}, "mapping"),
    ])
    def test_bad_groups(self, group, fragment):
        with pytest.raises(ConfigurationError, match=fragment):
            parse_spec(spec_dict(matrix=[group]))

    def test_golden_must_name_real_trials(self):
        with pytest.raises(ConfigurationError, match="never produces"):
            parse_spec(spec_dict(
                golden={"sweep/np9/firefly/microvax/s1": "sha256:00"}))

    def test_duplicate_trials_rejected(self):
        group = {"kind": "probe", "name": "t"}
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_spec(spec_dict(matrix=[group, dict(group)]))

    def test_yaml_and_json_load_identically(self, tmp_path):
        data = spec_dict()
        json_path = tmp_path / "c.json"
        json_path.write_text(json.dumps(data))
        yaml_path = tmp_path / "c.yaml"
        yaml = pytest.importorskip("yaml")
        yaml_path.write_text(yaml.safe_dump(data))
        assert load_spec(json_path).spec_hash \
            == load_spec(yaml_path).spec_hash

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_spec(tmp_path / "nope.yaml")


class TestExpansion:
    def test_matrix_order_and_labels(self):
        spec = parse_spec(spec_dict())
        labels = [t.label for t in spec.expand("sha")]
        assert labels == [
            "sweep/np1/firefly/microvax/s1987",
            "sweep/np1/firefly/microvax/s1988",
            "sweep/np1/write-through/microvax/s1987",
            "sweep/np1/write-through/microvax/s1988",
            "sweep/np2/firefly/microvax/s1987",
            "sweep/np2/firefly/microvax/s1988",
            "sweep/np2/write-through/microvax/s1987",
            "sweep/np2/write-through/microvax/s1988",
        ]

    def test_exclusions_remove_matching_cells(self):
        data = spec_dict()
        data["matrix"][0]["exclude"] = [
            {"protocol": "write-through", "processors": 1},
            {"seed": 1988},
        ]
        labels = [t.label for t in parse_spec(data).expand("sha")]
        assert labels == [
            "sweep/np1/firefly/microvax/s1987",
            "sweep/np2/firefly/microvax/s1987",
            "sweep/np2/write-through/microvax/s1987",
        ]

    def test_serve_group_labels(self):
        data = spec_dict(matrix=[{
            "kind": "serve",
            "scenarios": ["steady-poisson", "bursty-shed"],
            "quick": True,
            "seeds": [1987],
        }])
        labels = [t.label for t in parse_spec(data).expand("sha")]
        assert labels == [
            "serve/steady-poisson/quick/s1987",
            "serve/bursty-shed/quick/s1987",
        ]

    def test_group_seeds_override_default(self):
        data = spec_dict()
        data["matrix"][0]["seeds"] = [7]
        seeds = {t.seed for t in parse_spec(data).expand("sha")}
        assert seeds == {7}

    def test_keys_hash_spec_seed_and_sha(self):
        spec = parse_spec(spec_dict())
        first = spec.expand("sha-one")
        again = spec.expand("sha-one")
        moved = spec.expand("sha-two")
        assert [t.key for t in first] == [t.key for t in again]
        assert set(t.key for t in first) \
            .isdisjoint(t.key for t in moved)
        assert len({t.key for t in first}) == len(first)


# ---------------------------------------------------------------------------
# the store


class TestStore:
    def row(self, key, value=0):
        return {"schema": "firefly-campaign-ledger/1", "campaign": "c",
                "key": key, "label": f"l/{key}", "kind": "probe",
                "seed": 1, "params": {}, "git_sha": "sha",
                "spec_hash": "sha256:0", "result": {"value": value}}

    def test_roundtrip_and_last_wins(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append("c", self.row("k1", 1))
        store.append("c", self.row("k2", 2))
        store.append("c", self.row("k1", 3))
        load = store.load("c")
        assert load.total_rows == 3
        assert load.rows["k1"]["result"] == {"value": 3}
        assert load.rows["k2"]["result"] == {"value": 2}

    def test_missing_ledger_is_empty(self, tmp_path):
        load = CampaignStore(tmp_path).load("ghost")
        assert load.rows == {} and load.total_rows == 0

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append("c", self.row("k1"))
        with store.ledger_path("c").open("a") as handle:
            handle.write('{"key": "k2", "result": {"va')
        load = store.load("c")
        assert set(load.rows) == {"k1"}
        assert load.corrupt_lines == 1

    def test_rows_without_provenance_fields_load(self, tmp_path):
        store = CampaignStore(tmp_path)
        old = {"key": "k0", "label": "l", "kind": "probe", "seed": 1,
               "params": {}, "result": {"value": 9}}
        store.ledger_path("c").parent.mkdir(exist_ok=True, parents=True)
        store.ledger_path("c").write_text(json.dumps(old) + "\n")
        load = store.load("c")
        assert load.rows["k0"]["result"] == {"value": 9}
        assert load.rows["k0"].get("git_sha") is None

    def test_gc_compacts_to_live_keys(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append("c", self.row("k1", 1))
        store.append("c", self.row("k1", 2))
        store.append("c", self.row("stale", 3))
        kept, dropped = store.gc("c", ["k1", "k-future"])
        assert (kept, dropped) == (1, 2)
        load = store.load("c")
        assert set(load.rows) == {"k1"}
        assert load.rows["k1"]["result"] == {"value": 2}

    def test_gc_without_ledger_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no ledger"):
            CampaignStore(tmp_path).gc("ghost", [])

    def test_campaign_listing(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.append("beta", self.row("k"))
        store.append("alpha", self.row("k"))
        assert store.campaigns() == ["alpha", "beta"]


# ---------------------------------------------------------------------------
# the engine: resume semantics (the tentpole's acceptance criterion)


class TestResume:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_killed_mid_run_then_resumed_is_byte_identical(
            self, tmp_path, monkeypatch, jobs):
        """Fault-inject trial s3, watch the campaign die, resume, and
        compare the merged report byte-for-byte with an uninterrupted
        run — at jobs=1 and jobs=4."""
        spec = probe_spec()

        broken = CampaignStore(tmp_path / "broken")
        monkeypatch.setenv(FAIL_ENV, "3")
        with pytest.raises(TrialFailure) as exc:
            run_campaign_spec(spec, broken, jobs=jobs)
        assert "probe/t/s3" in str(exc.value)
        survivors = broken.load(spec.name)
        assert set(r["label"] for r in survivors.rows.values()) \
            == {"probe/t/s1", "probe/t/s2"}

        monkeypatch.delenv(FAIL_ENV)
        resumed = run_campaign_spec(spec, broken, jobs=jobs)
        assert resumed.skipped == 2
        assert resumed.ran == 4

        clean = run_campaign_spec(
            spec, CampaignStore(tmp_path / "clean"), jobs=jobs)
        assert json.dumps(resumed.report, indent=2, sort_keys=True) \
            == json.dumps(clean.report, indent=2, sort_keys=True)

    def test_rerun_skips_everything(self, tmp_path):
        spec = probe_spec()
        store = CampaignStore(tmp_path)
        first = run_campaign_spec(spec, store)
        again = run_campaign_spec(spec, store)
        assert (first.ran, first.skipped) == (6, 0)
        assert (again.ran, again.skipped) == (0, 6)
        assert json.dumps(first.report, sort_keys=True) \
            == json.dumps(again.report, sort_keys=True)

    def test_jobs_do_not_change_the_report(self, tmp_path):
        spec = probe_spec()
        serial = run_campaign_spec(spec,
                                   CampaignStore(tmp_path / "s"), jobs=1)
        parallel = run_campaign_spec(spec,
                                     CampaignStore(tmp_path / "p"),
                                     jobs=4)
        assert json.dumps(serial.report, sort_keys=True) \
            == json.dumps(parallel.report, sort_keys=True)

    def test_torn_ledger_line_just_reruns_that_trial(self, tmp_path):
        spec = probe_spec(seeds=(1, 2))
        store = CampaignStore(tmp_path)
        run_campaign_spec(spec, store)
        path = store.ledger_path(spec.name)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n"
                        + lines[-1][: len(lines[-1]) // 2])
        resumed = run_campaign_spec(spec, store)
        assert (resumed.ran, resumed.skipped) == (1, 1)

    def test_resume_only_requires_a_ledger(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no ledger"):
            run_campaign_spec(probe_spec(), CampaignStore(tmp_path),
                              resume_only=True)

    def test_stale_sha_rows_do_not_count(self, tmp_path):
        spec = probe_spec(seeds=(1, 2))
        store = CampaignStore(tmp_path)
        run_campaign_spec(spec, store, sha="rev-a")
        rerun = run_campaign_spec(spec, store, sha="rev-b")
        assert (rerun.ran, rerun.skipped) == (2, 0)
        kept, dropped = gc_campaign(spec, store, sha="rev-b")
        assert (kept, dropped) == (2, 2)


class TestGolden:
    def test_matching_digests_pass(self, tmp_path):
        base = run_campaign_spec(probe_spec(seeds=(1, 2)),
                                 CampaignStore(tmp_path / "a"))
        digests = {entry["label"]: content_hash(entry["result"])
                   for entry in base.report["trials"]}
        pinned = probe_spec(seeds=(1, 2), golden=digests)
        run = run_campaign_spec(pinned, CampaignStore(tmp_path / "b"))
        assert run.ok
        assert all(v["verdict"] == "ok" for v in run.golden.values())

    def test_drift_names_the_trial(self, tmp_path):
        pinned = probe_spec(seeds=(1, 2), golden={
            "probe/t/s2": "sha256:feedfacefeedface"})
        run = run_campaign_spec(pinned, CampaignStore(tmp_path))
        assert not run.ok
        assert run.golden_failures == ["probe/t/s2"]
        assert run.golden["probe/t/s2"]["verdict"] == "drift"
        assert run.report["golden"]["probe/t/s2"]["actual"] \
            .startswith("sha256:")

    def test_golden_block_is_pasteable(self, tmp_path):
        run = run_campaign_spec(probe_spec(seeds=(1,)),
                                CampaignStore(tmp_path))
        block = golden_block(run)
        assert block.startswith("golden:")
        assert "  probe/t/s1: sha256:" in block


class TestWorker:
    def test_probe_is_pure(self):
        result = campaign_trial(("probe", "probe/t/s5", 5,
                                 {"name": "t", "offset": 2}))
        assert result == {"seed": 5, "value": 27}

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError, match="kind"):
            campaign_trial(("mystery", "x", 1, {}))

    @pytest.mark.slow
    def test_sweep_trial_matches_sweep_point(self):
        from repro.observatory.runner import sweep_point

        params = {"processors": 1, "protocol": "firefly",
                  "generation": "microvax", "warmup": 500,
                  "measure": 2000}
        via_campaign = campaign_trial(
            ("sweep", "sweep/np1/firefly/microvax/s1987", 1987, params))
        direct = sweep_point((1, "firefly", "microvax", 1987, 500,
                              2000))
        assert via_campaign == direct


# ---------------------------------------------------------------------------
# the dashboard


def bench_doc(median, noise=0.05, mode="quick", residual=None,
              scenario="exerciser-1cpu"):
    entry = {
        "description": "d",
        "trials": [{"seed": 1987, "cycles": 1000, "wall_seconds": 0.1,
                    "ticks_per_second": median}],
        "median_ticks_per_second": median,
        "noise": noise,
        "metrics": {"bus_load": 0.5},
    }
    document = {"schema": "firefly-bench/1", "mode": mode,
                "scenarios": {scenario: entry}, "overhead": None}
    if residual is not None:
        document["scenarios"]["table1-sweep"] = {
            "description": "d", "trials": entry["trials"],
            "median_ticks_per_second": median, "noise": noise,
            "metrics": {"np2.bus_load": 0.4,
                        "np2.load_residual": residual},
        }
    return document


class TestDashboard:
    def test_trajectory_and_verdicts(self):
        html = render_dashboard([
            ("BENCH_0001.json", bench_doc(100_000.0)),
            ("BENCH_0002.json", bench_doc(50_000.0)),
        ])
        assert "<svg" in html and "polyline" in html
        assert "exerciser-1cpu" in html
        assert "regression" in html        # 2x slowdown > margin

    def test_improvement_and_residuals(self):
        html = render_dashboard([
            ("BENCH_0001.json", bench_doc(50_000.0, residual=0.02)),
            ("BENCH_0002.json", bench_doc(100_000.0, residual=0.04)),
        ])
        assert "improvement" in html
        assert "+0.0400" in html

    def test_chaos_ledger_rows(self):
        rows = [{"kind": "chaos", "label": "chaos/bus-parity/quick/s1",
                 "git_sha": "abc", "result": {
                     "verdict": "OK",
                     "faults": [{"kind": "bus-corrupt",
                                 "injected_at": 100,
                                 "detected_at": 130,
                                 "recovered_at": 190,
                                 "outcome": "retried"}]}}]
        html = render_dashboard([], [("camp", rows)])
        assert "bus-corrupt" in html
        assert "<td>30</td>" in html       # detect latency
        assert "<td>60</td>" in html       # recovery time

    def test_escapes_untrusted_names(self):
        html = render_dashboard(
            [], [("<script>alert(1)</script>", [])])
        assert "<script>alert(1)" not in html

    def test_deterministic_output(self):
        docs = [("BENCH_0001.json", bench_doc(10_000.0))]
        assert render_dashboard(docs) == render_dashboard(docs)

    def test_renders_committed_trajectory(self):
        from repro.observatory.bench import bench_files, load_bench

        docs = [(path.name, load_bench(path))
                for path in bench_files(REPO_ROOT)]
        assert len(docs) >= 2
        html = render_dashboard(docs)
        for scenario in ("exerciser-1cpu", "exerciser-5cpu",
                         "table1-sweep", "protocol-comparison"):
            assert scenario in html


# ---------------------------------------------------------------------------
# the CLI


class TestCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def write_spec(self, tmp_path, golden=None, name="cli-camp"):
        data = {"schema": CAMPAIGN_SCHEMA, "name": name,
                "description": "cli test campaign",
                "seeds": [1, 2],
                "matrix": [{"kind": "probe", "name": "t"}]}
        if golden:
            data["golden"] = golden
        path = tmp_path / "camp.json"
        path.write_text(json.dumps(data))
        return path

    def test_run_report_resume_gc(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        store = tmp_path / "store"
        report = tmp_path / "report.json"
        assert self.run_cli("campaign", "run", str(spec),
                            "--store-dir", str(store),
                            "--report", str(report),
                            "--print-golden") == 0
        out = capsys.readouterr().out
        assert "2 trial(s) merged (2 ran, 0 skipped" in out
        assert "golden:" in out
        merged = json.loads(report.read_text())
        assert merged["schema"] == "firefly-campaign-report/1"
        assert len(merged["trials"]) == 2

        assert self.run_cli("campaign", "resume", str(spec),
                            "--store-dir", str(store)) == 0
        assert "(0 ran, 2 skipped" in capsys.readouterr().out

        assert self.run_cli("campaign", "gc", str(spec),
                            "--store-dir", str(store)) == 0
        assert "kept 2" in capsys.readouterr().out

        out_html = tmp_path / "dash.html"
        assert self.run_cli("campaign", "report",
                            "--store-dir", str(store),
                            "--bench-dir", str(REPO_ROOT),
                            "--out", str(out_html)) == 0
        html = out_html.read_text()
        assert "cli-camp" in html and "exerciser-5cpu" in html

        # overwrite guard: refuse, then --force succeeds
        assert self.run_cli("campaign", "report",
                            "--store-dir", str(store),
                            "--bench-dir", str(REPO_ROOT),
                            "--out", str(out_html)) == 1
        assert self.run_cli("campaign", "report",
                            "--store-dir", str(store),
                            "--bench-dir", str(REPO_ROOT),
                            "--out", str(out_html), "--force") == 0

    def test_golden_drift_fails_naming_the_trial(self, tmp_path,
                                                 capsys):
        spec = self.write_spec(
            tmp_path, golden={"probe/t/s1": "sha256:feedfacefeedface"})
        assert self.run_cli("campaign", "run", str(spec),
                            "--store-dir", str(tmp_path / "s")) == 1
        err = capsys.readouterr().err
        assert "golden drift: probe/t/s1" in err

    def test_resume_without_ledger_fails(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert self.run_cli("campaign", "resume", str(spec),
                            "--store-dir", str(tmp_path / "empty")) == 1
        assert "no ledger" in capsys.readouterr().err

    def test_report_guard_refuses_overwrite(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        report = tmp_path / "r.json"
        report.write_text("precious")
        assert self.run_cli("campaign", "run", str(spec),
                            "--store-dir", str(tmp_path / "s"),
                            "--report", str(report)) == 1
        assert report.read_text() == "precious"
        assert "--force" in capsys.readouterr().err

    def test_sweep_json_guard(self, tmp_path, capsys):
        existing = tmp_path / "sweep.json"
        existing.write_text("precious")
        assert self.run_cli("sweep", "--processors", "1",
                            "--seeds", "1987",
                            "--warmup-cycles", "200",
                            "--measure-cycles", "500",
                            "--json", str(existing)) == 1
        assert existing.read_text() == "precious"
        assert "--force" in capsys.readouterr().err

    def test_chaos_json_guard(self, tmp_path, capsys):
        existing = tmp_path / "chaos.json"
        existing.write_text("precious")
        # The guard fires before any simulation starts, so this is
        # instant despite naming the full campaign.
        assert self.run_cli("chaos", "--quick",
                            "--json", str(existing)) == 1
        assert existing.read_text() == "precious"
        assert "--force" in capsys.readouterr().err

    def test_example_specs_parse(self):
        for name in ("quick.yaml", "full.yaml"):
            spec = load_spec(REPO_ROOT / "examples" / "campaigns"
                             / name)
            assert spec.expand("sha"), name
