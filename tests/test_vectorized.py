"""The vectorized statistical mode: identity, validity, and wiring.

Three contracts from docs/PERFORMANCE.md:

- the numpy and pure-Python backends consume the same draws and
  produce bit-identical results (the reduction is over integer
  counts, never backend-dependent float sums);
- the mode's (M, D, S) statistics and derived load/TPI/RP agree with
  the coroutine simulator within the DivergenceMonitor's noise bands
  (the paper's own slide-rule accuracy standard, never byte equality);
- the bench scenario and campaign trial kind that expose it stay
  deterministic and JSON-safe.
"""

from __future__ import annotations

import pytest

from repro.analytic.queueing import AnalyticParameters
from repro.common.errors import ConfigurationError
from repro.trace.stats import TraceReduction
from repro.trace.vectorized import (BACKENDS, VectorizedResult,
                                    divergence_check, numpy_available,
                                    params_from_reduction, run_vectorized)


class TestBackendIdentity:
    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_and_python_are_bit_identical(self):
        numpy = run_vectorized(3, 50_000, 1987, backend="numpy")
        python = run_vectorized(3, 50_000, 1987, backend="python")
        n, p = numpy.metrics(), python.metrics()
        assert n.pop("backend") == "numpy"
        assert p.pop("backend") == "python"
        assert n == p
        assert numpy.ticks == python.ticks

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_chunk_size_never_changes_results(self):
        """Chunking bounds memory; draws and counts are chunk-invariant."""
        small = run_vectorized(2, 20_000, 1987, chunk=777)
        large = run_vectorized(2, 20_000, 1987, chunk=1_000_000)
        assert small.metrics() == large.metrics()

    def test_same_seed_same_result_different_seed_differs(self):
        first = run_vectorized(2, 20_000, 1987, backend="python")
        again = run_vectorized(2, 20_000, 1987, backend="python")
        other = run_vectorized(2, 20_000, 1990, backend="python")
        assert first == again
        assert first.misses != other.misses


class TestStatistics:
    def test_counts_track_configured_rates(self):
        params = AnalyticParameters()
        result = run_vectorized(4, 100_000, 1987, params=params,
                                backend="python")
        assert result.miss_rate == pytest.approx(params.miss_rate,
                                                 rel=0.02)
        assert result.dirty_fraction == pytest.approx(
            params.dirty_fraction, rel=0.05)
        assert result.shared_write_fraction == pytest.approx(
            params.shared_write_fraction, rel=0.05)
        per_cpu_refs = (int(100_000 * params.mix.instruction_reads)
                        + int(100_000 * params.mix.data_reads)
                        + int(100_000 * params.mix.data_writes))
        assert result.references == 4 * per_cpu_refs
        assert result.bus_busy_ticks == params.bus_op_ticks * (
            result.misses + result.dirty_victims + result.shared_writes)
        assert result.ticks == int(100_000 * result.mean_tpi)

    def test_per_cpu_streams_are_independent(self):
        """Adding a CPU never perturbs existing CPUs' statistics."""
        two = run_vectorized(2, 30_000, 1987, backend="python")
        three = run_vectorized(3, 30_000, 1987, backend="python")
        # CPUs 0 and 1 drew the same streams in both runs, so the
        # third CPU's misses are exactly the difference.
        assert three.misses > two.misses
        solo = run_vectorized(1, 30_000, 1987, backend="python")
        assert solo.misses <= two.misses

    def test_agrees_with_coroutine_simulator_within_bands(self):
        """The acceptance gate: vectorized (M, D, S) and derived
        load/TPI/RP match the coroutine machine inside the
        DivergenceMonitor's noise bands."""
        from dataclasses import replace

        from repro.system import FireflyConfig, FireflyMachine

        machine = FireflyMachine(FireflyConfig(processors=2, seed=1987))
        measured = machine.run(warmup_cycles=10_000,
                               measure_cycles=40_000)
        # Like the DivergenceMonitor: the model's free inputs (M, D)
        # are substituted with the machine's measured rates; the
        # vectorized run then re-draws them empirically.
        params = replace(
            AnalyticParameters(),
            miss_rate=min(max(measured.mean_miss_rate, 1e-6), 1 - 1e-6),
            dirty_fraction=min(max(measured.dirty_fraction, 0.0), 1.0))
        result = run_vectorized(2, 100_000, 1987, params=params)
        verdicts = divergence_check(result, {
            "bus_load": measured.bus_load,
            "mean_tpi": measured.mean_tpi,
        })
        assert verdicts["ok"], verdicts
        for metric in ("bus_load", "tpi", "relative_performance"):
            assert verdicts[metric]["ok"], (metric, verdicts[metric])
        # And the empirical re-draws sit on the measured inputs.
        assert result.miss_rate == pytest.approx(
            measured.mean_miss_rate, abs=0.01)

    def test_divergence_check_flags_disagreement(self):
        result = run_vectorized(2, 20_000, 1987, backend="python")
        verdicts = divergence_check(result, {"bus_load": 0.95,
                                             "tpi": 40.0})
        assert not verdicts["ok"]
        assert not verdicts["bus_load"]["ok"]

    def test_divergence_check_requires_measurements(self):
        result = run_vectorized(2, 20_000, 1987, backend="python")
        with pytest.raises(ConfigurationError, match="bus_load"):
            divergence_check(result, {"tpi": 12.0})


class TestTraceDriven:
    def test_params_from_reduction_substitutes_measured_rates(self):
        reduction = TraceReduction(
            instructions=1000, references=2130, instruction_reads=950,
            data_reads=780, data_writes=400, miss_rate=0.31,
            dirty_fraction=0.42)
        params = params_from_reduction(reduction)
        assert params.miss_rate == pytest.approx(0.31)
        assert params.dirty_fraction == pytest.approx(0.42)
        assert params.mix.instruction_reads == pytest.approx(0.95)
        # The base model's S survives (a single-cache reduction cannot
        # observe sharing).
        assert params.shared_write_fraction == \
            AnalyticParameters().shared_write_fraction
        result = run_vectorized(2, 10_000, 1987, params=params,
                                backend="python")
        assert result.miss_rate == pytest.approx(0.31, rel=0.05)


class TestValidationAndWiring:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError, match="processor"):
            run_vectorized(0, 1000, 1987)
        with pytest.raises(ConfigurationError, match="instruction"):
            run_vectorized(2, 0, 1987)
        with pytest.raises(ConfigurationError, match="chunk"):
            run_vectorized(2, 1000, 1987, chunk=0)
        with pytest.raises(ConfigurationError, match="unknown vectorized"):
            run_vectorized(2, 1000, 1987, backend="fortran")
        assert set(BACKENDS) == {"numpy", "python"}

    def test_metrics_dict_is_json_safe(self):
        import json

        result = run_vectorized(2, 5_000, 1987, backend="python")
        assert isinstance(result, VectorizedResult)
        round_tripped = json.loads(json.dumps(result.metrics()))
        assert round_tripped["processors"] == 2
        assert round_tripped["backend"] == "python"

    def test_bench_vector_stat_scenario(self):
        from repro.observatory.bench import SCENARIOS

        scenario = next(s for s in SCENARIOS if s.name == "vector-stat")
        cycles, metrics = scenario.runner(scenario, scenario.quick, 1987)
        assert metrics["processor_counts"] == [2, 4]
        assert cycles > 0
        for processors in (2, 4):
            assert 0.0 < metrics[f"np{processors}.bus_load"] < 1.0
            assert metrics[f"np{processors}.mean_tpi"] > 11.9
        # More processors, more bus load — the Table 1 shape.
        assert metrics["np4.bus_load"] > metrics["np2.bus_load"]

    def test_campaign_vector_kind(self):
        from repro.campaign.engine import campaign_trial

        result = campaign_trial(("vector", "vector/np2/i5000/s1987",
                                 1987, {"processors": 2,
                                        "instructions": 5_000}))
        assert result["seed"] == 1987
        assert result["cycles"] > 5_000
        assert "backend" not in result["metrics"]
        direct = run_vectorized(2, 5_000, 1987)
        assert result["metrics"]["misses"] == direct.misses
