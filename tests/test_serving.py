"""The resilient serving layer: policies, workload engine, SLO gates."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.io import IoSubsystem, RemoteEndpoint
from repro.serving import (
    ArrivalSpec,
    CircuitBreaker,
    ResilienceParams,
    ResilientTransport,
    ServerSpec,
    ServingWorkload,
    SloSpec,
    TierSpec,
    Topology,
    run_serve_campaign,
)
from repro.serving.policies import _sleep
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel
from repro.topaz.rpc import RpcParams, RpcTransport


def make_pool(pool=1, turnaround=8_000, seed=1987, processors=2,
              threads_hint=12):
    """A kernel plus a pool of RPC transports to distinct endpoints."""
    kernel = TopazKernel.build(processors=processors,
                               threads_hint=threads_hint, seed=seed,
                               io_enabled=True)
    io = IoSubsystem(kernel.machine)
    _, buffer_qbus = io.alloc(512, "serve buffer")
    params = RpcParams(payload_bytes=256, packets_per_call=1,
                       reply_bytes=64,
                       server_turnaround_cycles=turnaround)
    transports = [RpcTransport(kernel, io.ethernet, buffer_qbus,
                               params=params,
                               remote=RemoteEndpoint(turnaround))
                  for _ in range(pool)]
    return kernel, io, transports


class TestResilienceParams:
    def test_errors_name_field_and_value(self):
        with pytest.raises(ConfigurationError,
                           match=r"ResilienceParams\.max_attempts must "
                                 r"be positive, got 0"):
            ResilienceParams(max_attempts=0)
        with pytest.raises(ConfigurationError,
                           match=r"ResilienceParams\.backoff_base_cycles "
                                 r"must be positive, got -5"):
            ResilienceParams(backoff_base_cycles=-5)
        with pytest.raises(ConfigurationError,
                           match=r"ResilienceParams\."
                                 r"attempt_timeout_cycles must be >= 0, "
                                 r"got -1"):
            ResilienceParams(attempt_timeout_cycles=-1)
        with pytest.raises(ConfigurationError,
                           match=r"ResilienceParams\.backoff_multiplier "
                                 r"must be >= 1\.0, got 0\.5"):
            ResilienceParams(backoff_multiplier=0.5)

    def test_defaults_are_valid(self):
        params = ResilienceParams()
        assert params.max_attempts == 1
        assert params.hedge_after_cycles == 0


class TestCircuitBreaker:
    def test_closed_to_open_after_threshold(self):
        breaker = CircuitBreaker("s0", threshold=3, open_cycles=1_000,
                                 half_open_probes=1)
        assert breaker.allow(0) == ()
        assert breaker.record(False, 10) == ()
        assert breaker.record(False, 20) == ()
        assert breaker.record(False, 30) == \
            ((CircuitBreaker.CLOSED, CircuitBreaker.OPEN),)
        assert breaker.trips == 1
        assert breaker.allow(40) is None

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker("s0", threshold=2, open_cycles=1_000,
                                 half_open_probes=1)
        breaker.record(False, 10)
        breaker.record(True, 20)
        breaker.record(False, 30)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_or_reopens(self):
        breaker = CircuitBreaker("s0", threshold=1, open_cycles=100,
                                 half_open_probes=1)
        breaker.record(False, 0)
        assert breaker.state == CircuitBreaker.OPEN
        # Before expiry: refused.  After: one probe admitted.
        assert breaker.allow(50) is None
        assert breaker.allow(150) == \
            ((CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),)
        breaker.note_attempt()
        assert breaker.allow(151) is None  # probe budget spent
        assert breaker.record(True, 160) == \
            ((CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),)
        # And the failing-probe path reopens.
        breaker.record(False, 200)
        breaker.allow(400)
        breaker.note_attempt()
        assert breaker.record(False, 410) == \
            ((CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN),)
        assert breaker.trips == 3


class TestUnarmedEquivalence:
    def run_world(self, wrapped: bool, calls=3):
        kernel, io, transports = make_pool(seed=1987)
        resilient = ResilientTransport(kernel, transports, armed=False)
        outcomes = []

        def client():
            for _ in range(calls):
                if wrapped:
                    result = yield from resilient.call()
                else:
                    result = yield from transports[0].call()
                outcomes.append(result)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        return kernel, io, transports[0], resilient

    def test_unarmed_wrapper_is_byte_identical(self):
        bare_kernel, bare_io, bare_transport, _ = self.run_world(False)
        kernel, io, transport, resilient = self.run_world(True)
        assert kernel.sim.now == bare_kernel.sim.now
        assert transport.stats["calls"].total == \
            bare_transport.stats["calls"].total == 3
        assert io.ethernet.stats["tx_frames"].total == \
            bare_io.ethernet.stats["tx_frames"].total
        # The unarmed constructor is provably inert: no RNG stream, no
        # breakers, no hedge sync objects were created.
        assert resilient._rng is None
        assert resilient.breakers == []
        assert resilient._hedge_mutex is None


class TestRetriesAndDeadlines:
    def test_late_attempts_retry_then_give_up(self):
        # Every attempt takes ~50k+ cycles against a 10k lateness bar,
        # so the call burns its whole attempt budget and reports it.
        kernel, io, transports = make_pool(turnaround=50_000)
        params = ResilienceParams(attempt_timeout_cycles=10_000,
                                  max_attempts=2,
                                  backoff_base_cycles=1_000)
        resilient = ResilientTransport(kernel, transports, params)
        outcomes = []

        def client():
            outcome = yield from resilient.call()
            outcomes.append(outcome)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        outcome = outcomes[0]
        assert outcome.status == "deadline"
        assert outcome.attempts == 2
        assert outcome.retries == 1
        assert resilient.stats["retries"].total == 1
        assert resilient.stats["late_attempts"].total == 2
        assert resilient.counters()["failed.deadline"] == 1

    def test_expired_deadline_sheds_before_any_attempt(self):
        kernel, io, transports = make_pool()
        resilient = ResilientTransport(kernel, transports,
                                       ResilienceParams(max_attempts=2))
        outcomes = []

        def client():
            me = yield ops.CurrentThread()
            yield ops.Compute(100)
            me.deadline = kernel.sim.now  # already exhausted
            outcome = yield from resilient.call()
            outcomes.append(outcome)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert outcomes[0].status == "deadline"
        assert outcomes[0].attempts == 0
        # No attempt reached the wire.
        assert transports[0].stats["calls"].total == 0

    def test_forked_children_inherit_the_deadline(self):
        kernel, io, transports = make_pool()
        seen = []

        def child():
            me = yield ops.CurrentThread()
            seen.append(me.deadline)
            yield ops.Compute(1)

        def parent():
            me = yield ops.CurrentThread()
            me.deadline = 123_456
            yield ops.Fork(child, name="deadline-child")
            yield ops.Compute(1)

        kernel.fork(parent)
        kernel.run_until_quiescent(max_cycles=1_000_000)
        assert seen == [123_456]


class TestSheddingAndBreakers:
    def test_max_in_flight_sheds_the_second_caller(self):
        kernel, io, transports = make_pool(turnaround=20_000)
        resilient = ResilientTransport(
            kernel, transports, ResilienceParams(max_in_flight=1))
        outcomes = []

        def client():
            outcome = yield from resilient.call()
            outcomes.append(outcome)

        kernel.fork(client, name="c0")
        kernel.fork(client, name="c1")
        kernel.run_until_quiescent(max_cycles=5_000_000)
        statuses = sorted(o.status for o in outcomes)
        assert statuses == ["ok", "shed"]
        shed = next(o for o in outcomes if o.status == "shed")
        assert shed.shed_reason == "in-flight"
        assert shed.latency == 0
        assert resilient.counters()["shed"] == 1
        assert resilient.stats["shed.in-flight"].total == 1

    def test_breaker_opens_and_sheds_until_probe_window(self):
        kernel, io, transports = make_pool(turnaround=50_000)
        params = ResilienceParams(attempt_timeout_cycles=10_000,
                                  max_attempts=2,
                                  backoff_base_cycles=1_000,
                                  breaker_failure_threshold=1,
                                  breaker_open_cycles=10_000)
        resilient = ResilientTransport(kernel, transports, params)
        outcomes = []

        def client():
            first = yield from resilient.call()
            outcomes.append(first)
            # Past the open window: the breaker goes half-open and
            # admits exactly one probe, which also fails late.
            yield ops.DeviceCall(_sleep(kernel.sim, 20_000), label="idle")
            second = yield from resilient.call()
            outcomes.append(second)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=10_000_000)
        first, second = outcomes
        # First call: attempt 1 trips the breaker; the retry finds the
        # pool fully open and is shed.
        assert first.status == "shed"
        assert first.shed_reason == "breaker-open"
        assert second.status in ("shed", "deadline")
        breaker = resilient.breakers[0]
        assert breaker.trips == 2
        assert resilient.stats["breaker_transitions"].total >= 3
        assert resilient.stats["shed.breaker-open"].total >= 1


class TestHedging:
    def test_hedge_races_a_second_server(self):
        kernel, io, transports = make_pool(pool=2, turnaround=20_000,
                                           threads_hint=16)
        resilient = ResilientTransport(
            kernel, transports, ResilienceParams(hedge_after_cycles=1_000))
        outcomes = []

        def client():
            outcome = yield from resilient.call()
            outcomes.append(outcome)

        kernel.fork(client)
        kernel.run_until_quiescent(max_cycles=5_000_000)
        outcome = outcomes[0]
        assert outcome.ok
        assert outcome.hedged
        assert outcome.attempts == 2
        assert outcome.server in (0, 1)
        assert resilient.stats["hedges"].total == 1
        # The loser finished in the background and was counted.
        assert resilient.stats["hedge_waste"].total == 1
        assert transports[0].stats["calls"].total \
            + transports[1].stats["calls"].total == 2


class TestTopology:
    def test_from_dict_round_trips(self):
        topology = Topology(
            tiers=(TierSpec(name="web", workers=2,
                            arrivals=ArrivalSpec(process="bursty",
                                                 mean_gap_cycles=10_000,
                                                 period_cycles=50_000),
                            deadline_cycles=100_000,
                            slo=SloSpec(p99_cycles=90_000,
                                        success_rate=0.9)),),
            servers=ServerSpec(pool=3))
        again = Topology.from_dict(topology.to_dict())
        assert again.to_dict() == topology.to_dict()

    def test_validation_errors_name_the_path(self):
        with pytest.raises(ConfigurationError,
                           match=r"topology: tiers\[0\]\.arrivals\."
                                 r"process must be one of"):
            Topology(tiers=(TierSpec(
                name="t", arrivals=ArrivalSpec(process="lumpy")),)) \
                .validate()
        with pytest.raises(ConfigurationError,
                           match=r"tiers\[1\]\.name duplicates"):
            Topology(tiers=(TierSpec(name="a"),
                            TierSpec(name="a"))).validate()
        with pytest.raises(ConfigurationError, match="unknown key"):
            Topology.from_dict({"tiers": [], "turbo": True})
        with pytest.raises(ConfigurationError,
                           match=r"tiers\[0\] unknown key"):
            Topology.from_dict(
                {"tiers": [{"name": "a", "wrkers": 2}]})
        with pytest.raises(ConfigurationError,
                           match=r"period_cycles must be positive for "
                                 r"bursty"):
            ArrivalSpec(process="bursty", period_cycles=0).validate("a")

    def test_arrival_gaps_are_positive_and_modulated(self):
        class FixedRng:
            def expovariate(self, mean):
                return mean

        rng = FixedRng()
        poisson = ArrivalSpec(process="poisson", mean_gap_cycles=1_000)
        assert poisson.next_gap(rng, 0) == 1_000
        bursty = ArrivalSpec(process="bursty", mean_gap_cycles=1_000,
                             burst_factor=4.0, period_cycles=2_000)
        on = bursty.next_gap(rng, 0)        # on-phase: gaps shrink
        off = bursty.next_gap(rng, 1_000)   # off-phase: gaps grow
        assert on == 250 and off == 4_000
        diurnal = ArrivalSpec(process="diurnal", mean_gap_cycles=1_000,
                              period_cycles=4_000, amplitude=0.5)
        peak = diurnal.next_gap(rng, 1_000)   # sin=1: rate x1.5
        trough = diurnal.next_gap(rng, 3_000)  # sin=-1: rate x0.5
        assert peak < 1_000 < trough


class TestServingWorkload:
    def mini_topology(self, slo=SloSpec()):
        return Topology(
            tiers=(TierSpec(name="mini", workers=2,
                            arrivals=ArrivalSpec(process="poisson",
                                                 mean_gap_cycles=40_000),
                            deadline_cycles=300_000, queue_limit=8,
                            slo=slo),),
            servers=ServerSpec(pool=1, turnaround_cycles=8_000))

    def test_open_loop_serves_and_counts(self):
        workload = ServingWorkload(self.mini_topology(), seed=1987)
        workload.run(warmup_cycles=40_000, measure_cycles=300_000)
        report = workload.class_report()["mini"]
        assert report["ok"] > 0
        assert report["latency"]["count"] == report["ok"]
        assert report["latency"]["p99"] >= report["latency"]["p50"] > 0
        assert workload.slo_failures() == []

    def test_impossible_slo_fails_the_gate(self):
        slo = SloSpec(p99_cycles=1, success_rate=1.0)
        workload = ServingWorkload(self.mini_topology(slo), seed=1987)
        workload.run(warmup_cycles=40_000, measure_cycles=300_000)
        failures = workload.slo_failures()
        assert failures
        assert any("exceeds budget 1" in f for f in failures)

    def test_same_seed_replays_byte_identically(self):
        def one_run():
            workload = ServingWorkload(self.mini_topology(), seed=2024)
            workload.run(warmup_cycles=40_000, measure_cycles=200_000)
            return (workload.kernel.sim.now, workload.class_report())

        assert one_run() == one_run()


class TestServeCampaign:
    def test_slo_violation_exits_nonzero(self, monkeypatch):
        from repro import cli
        from repro.serving import engine

        def failing_runner(scenario, horizon, seed):
            outcome = engine.ServeOutcome(
                name=scenario.name, description=scenario.description,
                seed=seed, warmup=horizon.warmup,
                measure=horizon.measure)
            outcome.slo_failures = ["mini: p99 999 cycles exceeds "
                                    "budget 1"]
            return outcome

        scenario = engine.ServeScenario(
            "always-fail", "pinned failure for the exit-code contract",
            full=engine.ServeHorizon(0, 0),
            quick=engine.ServeHorizon(0, 0), runner=failing_runner)
        monkeypatch.setattr(engine, "SERVE_SCENARIOS", (scenario,))
        assert cli.main(["serve", "--quick"]) == 1
        report = engine.run_serve_campaign(quick=True)
        assert not report.ok
        assert report.outcomes[0].verdict == "FAIL"

    def test_unknown_scenario_is_a_config_error(self):
        with pytest.raises(ConfigurationError,
                           match="unknown serve scenario"):
            run_serve_campaign(scenarios=["no-such"], quick=True)

    @pytest.mark.slow
    def test_report_identical_at_any_job_count(self):
        def report_json(jobs):
            report = run_serve_campaign(
                seed=1987, quick=True, jobs=jobs,
                scenarios=["steady-poisson", "bursty-shed"])
            return json.dumps(report.to_dict(), sort_keys=True)

        assert report_json(1) == report_json(2)


class TestCausalUnderChaos:
    @pytest.mark.slow
    def test_segments_sum_exactly_with_backoff_under_qbus_timeouts(self):
        """Satellite: injected QBus device timeouts force retries, and
        every traced request's turnaround still decomposes exactly —
        the backoff wait shows up as its own segment."""
        from repro.causal.assemble import SEGMENTS
        from repro.faults.models import QBusFaultModel
        from repro.faults.plan import FaultKind, FaultPlan, spec
        from repro.serving.engine import (SERVE_ETHERNET, ServeHorizon,
                                          _chaos_resilience,
                                          _chaos_topology, _drive_serving)

        workload = ServingWorkload(_chaos_topology(), _chaos_resilience(),
                                   seed=1987,
                                   ethernet_params=SERVE_ETHERNET)
        plan = FaultPlan([
            spec(FaultKind.QBUS_TIMEOUT, window=(0.10, 0.30), timeouts=2),
            spec(FaultKind.QBUS_TIMEOUT, window=(0.45, 0.65), timeouts=5),
        ])
        qbus_model = QBusFaultModel(timeout_cycles=4_000, max_retries=3,
                                    degraded_penalty_cycles=30)
        tracer, injector = _drive_serving(
            workload, ServeHorizon(60_000, 400_000), plan=plan,
            qbus_model=qbus_model)
        assert workload.resilient.stats["retries"].total > 0
        assert tracer.assembled > 0
        backoff_total = 0
        for record in tracer.finished:
            assert sum(record.segments.values()) == record.turnaround, \
                record.to_dict()
            assert set(record.segments) == set(SEGMENTS)
            backoff_total += record.segments["backoff"]
        # The retried request's exponential backoff is attributed to
        # the dedicated segment, not smeared into transfer time.
        assert backoff_total > 0
