"""The coherence checker must catch planted violations."""

import pytest

from repro.cache.line import LineState
from repro.common.errors import CoherenceViolation
from tests.conftest import MiniRig


def checker_for(rig):
    from repro.system.checker import CoherenceChecker

    class _Shim:
        caches = rig.caches
        memory = rig.memory
        protocol = rig.protocol
    return CoherenceChecker(_Shim())


class TestDetection:
    def test_clean_machine_passes(self, rig):
        rig.write(0, 10, 5)
        rig.read(1, 10)
        assert checker_for(rig).check() >= 1

    def test_disagreeing_copies_detected(self, rig):
        rig.read(0, 10)
        rig.read(1, 10)
        # Corrupt cache 1's copy behind the protocol's back.
        line, _, _, offset = rig.caches[1].lookup(10)
        line.data[offset] = 999
        with pytest.raises(CoherenceViolation) as excinfo:
            checker_for(rig).check()
        assert "disagree" in str(excinfo.value)

    def test_multiple_dirty_holders_detected(self, rig):
        rig.read(0, 10)
        rig.read(1, 10)
        for i in (0, 1):
            line, _, _, _ = rig.caches[i].lookup(10)
            line.state = LineState.DIRTY
        with pytest.raises(CoherenceViolation) as excinfo:
            checker_for(rig).check()
        # Either invariant may fire first; both describe the breakage.
        message = str(excinfo.value)
        assert "dirty" in message or "silent-write" in message

    def test_stale_memory_detected(self, rig):
        rig.read(0, 10)
        rig.memory.poke(10, 777)  # memory diverges, copy still clean
        with pytest.raises(CoherenceViolation) as excinfo:
            checker_for(rig).check()
        assert "memory" in str(excinfo.value)

    def test_dirty_copy_may_disagree_with_memory(self, rig):
        rig.read(0, 10)
        rig.write(0, 10, 5)  # DIRTY; memory stale by design
        assert rig.memory.peek(10) != 5
        checker_for(rig).check()

    def test_silent_write_state_with_other_holders_detected(self, rig):
        rig.read(0, 10)
        rig.read(1, 10)
        line, _, _, _ = rig.caches[0].lookup(10)
        line.state = LineState.VALID  # believes exclusive; cache1 holds
        with pytest.raises(CoherenceViolation) as excinfo:
            checker_for(rig).check()
        assert "silent-write" in str(excinfo.value)

    def test_audit_word_reports_copies(self, rig):
        rig.write(0, 10, 5)
        rig.read(1, 10)
        report = checker_for(rig).audit_word(10)
        assert len(report) == 2
        ids = {cid for cid, _, _ in report}
        assert ids == {0, 1}

    def test_word_count_returned(self, rig):
        for address in range(7):
            rig.read(0, address)
        assert checker_for(rig).check() == 7
