"""Verbatim copies of the hand-written (pre-DSL) protocol classes.

PR 7 re-expressed every protocol as a declarative
:class:`~repro.protodsl.defs.ProtocolDef`; these frozen copies of the
original imperative implementations are the *differential-testing
baseline*: the oracle-equivalence and fuzz tests drive a legacy class
and its DSL twin through identical stimuli and assert bit-identical
states, bus traffic and statistics.  Nothing in the library imports
this module — it exists so a future edit to the DSL interpreter cannot
silently drift from the semantics the original classes pinned.

Classes are renamed ``Legacy*``; bodies are otherwise untouched.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import (
    CoherenceProtocol,
    _line_data,
    merged_payload,
)
from repro.common.errors import ProtocolError
from repro.common.types import BusOp

class LegacyFireflyProtocol(CoherenceProtocol):
    """Conditional write-through with bus-update of shared lines."""

    name = "firefly"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    # -- processor side ------------------------------------------------

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if not line.state.is_shared:
            # Private line: pure write-back, no bus traffic.
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # Shared line: conditional write-through.  The response tells us
        # whether anyone still shares it; if not, revert to write-back.
        #
        # The cached copy is NOT updated until the transaction is
        # granted (merged_payload applies the word then): updating it
        # eagerly would let this cache answer an intervening bus read
        # with a value the other sharers do not yet have — two sharers
        # driving different data, which the hardware forbids.  The CPU
        # is stalled for the write-through anyway, so it cannot observe
        # its own store's delay.
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, line.tag)
        txn = yield from cache.bus_op(
            BusOp.MWRITE, line_address,
            data=merged_payload(line, offset, value))
        line.state = (LineState.SHARED if txn.shared_response
                      else LineState.VALID)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        if partial or cache.geometry.words_per_line != 1:
            # "A write miss is treated as a read miss followed
            # immediately by a write hit."
            yield from self.read_miss(cache, line, index, tag, offset)
            yield from self.write_hit(cache, line, index, offset, value)
            return
        # Aligned-longword optimisation: write through directly, leaving
        # the line clean; Shared comes from the MShared response.
        yield from self.victimize(cache, line, index)
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MWRITE, line_address,
                                      data=(value,))
        state = LineState.SHARED if txn.shared_response else LineState.VALID
        line.fill(tag, (value,), state)

    # -- bus side ---------------------------------------------------------

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            # Assert MShared and supply the data (memory is inhibited).
            # Every holder drives identical values, clean or dirty.
            if line.state is LineState.VALID:
                line.state = LineState.SHARED
            elif line.state is LineState.DIRTY:
                line.state = LineState.SHARED_DIRTY
            return SnoopResult(shared=True, data=line.snapshot())
        if op is BusOp.MWRITE:
            # Another cache's write-through or victim write, or a DMA
            # write: take the data.  Main memory is updated by the same
            # transaction, so the copy is clean afterwards.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(
            f"Firefly cache snooped foreign bus op {op} at {line_address:#x}")


class LegacyDragonProtocol(CoherenceProtocol):
    """Write-update with owner-held dirty data (memory not updated)."""

    name = "dragon"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if not line.state.is_shared:
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # Shared: broadcast the update to the other caches.  Memory is
        # NOT updated (update_memory=False); we become/remain the owner.
        # The copy updates at grant time (merged_payload) so this cache
        # never answers a read with a value other sharers lack.
        cache.stats.incr("bus_updates")
        line_address = cache.geometry.rebuild_address(index, line.tag)
        txn = yield from cache.bus_op(
            BusOp.MWRITE, line_address,
            data=merged_payload(line, offset, value),
            update_memory=False)
        line.state = (LineState.SHARED_DIRTY if txn.shared_response
                      else LineState.DIRTY)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        # Dragon has no write-miss shortcut: read the line (learning
        # whether it is shared), then apply the write-hit logic.
        yield from self.read_miss(cache, line, index, tag, offset)
        yield from self.write_hit(cache, line, index, offset, value)

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                line.state = LineState.SHARED_DIRTY
                return SnoopResult(shared=True, data=line.snapshot())
            if line.state is LineState.SHARED_DIRTY:
                return SnoopResult(shared=True, data=line.snapshot())
            if line.state is LineState.VALID:
                line.state = LineState.SHARED
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # An update broadcast from the new owner, a victim write, or
            # a DMA write.  Take the data; the writer (or memory) now
            # holds responsibility, so we are a clean sharer.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(f"Dragon cache snooped foreign bus op {op}")


class LegacyMesiProtocol(CoherenceProtocol):
    """Write-invalidate, write-back, with exclusive-clean state."""

    name = "mesi"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is LineState.SHARED:
            cache.stats.incr("invalidations_sent")
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            yield from cache.bus_op(BusOp.MINVALIDATE, line_address)
            if not (line.valid and line.tag == tag):
                # A competing writer's invalidation serialised first.
                yield from self.write_miss(cache, line, index, tag, offset,
                                           value, partial=False)
                return
        line.data[offset] = value
        line.state = LineState.DIRTY

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Supply and let the bus snarf the data into memory;
                # we keep a now-clean shared copy.
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                line.state = LineState.SHARED
                return result
            # Illinois: clean holders also supply (identical to memory).
            line.state = LineState.SHARED
            return SnoopResult(shared=True, data=line.snapshot())
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state.is_dirty else None,
                write_back=line.state.is_dirty)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op is BusOp.MINVALIDATE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # Only DMA writes can hit a MESI snooper (victim writes come
            # from exclusive holders).  Memory is updated by the same
            # transaction; refresh the copy and demote to shared-clean.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(f"MESI cache snooped unknown bus op {op}")


class LegacyBerkeleyProtocol(CoherenceProtocol):
    """Ownership with invalidation; no memory update on transfers."""

    name = "berkeley"
    silent_write_states = frozenset({LineState.OWNED})
    # A silent write hit (already OWNED) stays OWNED.
    silent_write_result = None

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        # A plain read never confers ownership.
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is not LineState.OWNED:
            # VALID or OWNED_SHARED: must (re)claim exclusive ownership.
            cache.stats.incr("invalidations_sent")
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            yield from cache.bus_op(BusOp.MINVALIDATE, line_address)
            if not (line.valid and line.tag == tag):
                # A competing owner's invalidation serialised first; our
                # copy is gone, so this is now a write miss.
                yield from self.write_miss(cache, line, index, tag, offset,
                                           value, partial=False)
                return
            line.state = LineState.OWNED
        line.data[offset] = value

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        # Read-for-ownership: fetches the data and invalidates all copies.
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.OWNED)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Berkeley's unowned clean state is VALID regardless of sharers.
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        owned = line.state in (LineState.OWNED, LineState.OWNED_SHARED)
        if op is BusOp.MREAD:
            if owned:
                # Supply the data; memory is NOT updated (no write_back),
                # and this cache remains the owner.
                line.state = LineState.OWNED_SHARED
                return SnoopResult(shared=True, data=line.snapshot())
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(shared=True,
                                 data=line.snapshot() if owned else None)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op is BusOp.MINVALIDATE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # Victim write-back from another cache, or a DMA write: the
            # bus transaction updates memory, so our copy refreshes and
            # any ownership we held is now redundant — demote to VALID.
            line.data[:] = data
            line.state = LineState.VALID
            return SnoopResult(shared=True)
        raise ProtocolError(f"Berkeley cache snooped unknown bus op {op}")


class LegacySynapseProtocol(CoherenceProtocol):
    """Ownership-before-write; dirty holders surrender on bus reads."""

    name = "synapse"
    silent_write_states = frozenset({LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        # One undifferentiated Valid state, shared or not: Synapse has
        # no MShared-style wire, so the response cannot be consulted.
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is LineState.DIRTY:
            # Already the owner: pure write-back, no bus traffic.
            line.data[offset] = value
            return
        # Valid (clean) hit: ownership must be acquired first, and the
        # cached copy cannot be trusted to be unique — re-fetch with a
        # read-exclusive exactly as a write miss would.
        tag = line.tag
        yield from self.write_miss(cache, line, index, tag, offset, value,
                                   partial=False)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        # Read-for-ownership: fetches the line and invalidates all copies.
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Synapse's single clean state already means "possibly shared".
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Total surrender: supply the data, let the bus snarf it
                # into memory, and drop the line (no shared-dirty state).
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                cache.stats.incr("surrenders")
                line.invalidate()
                return result
            # Clean holders keep their copies; memory supplies the data.
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state is LineState.DIRTY
                else None,
                write_back=line.state is LineState.DIRTY)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op in (BusOp.MWRITE, BusOp.MINVALIDATE):
            # Another cache's victim write-back or a DMA write: memory is
            # updated by the transaction and the ownership bit moves with
            # it, so our copy is stale — invalidate.
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(f"Synapse cache snooped unknown bus op {op}")


class LegacyWriteOnceProtocol(CoherenceProtocol):
    """First write goes through; later writes are local write-back."""

    name = "write-once"
    silent_write_states = frozenset({LineState.RESERVED, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is not LineState.VALID:
            # RESERVED or DIRTY: local, write-back from here on.
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # The once: write through, invalidating other copies.  The
        # copy updates at grant time (merged_payload).
        cache.stats.incr("write_throughs")
        tag = line.tag
        line_address = cache.geometry.rebuild_address(index, tag)
        yield from cache.bus_op(BusOp.MWRITE, line_address,
                                data=merged_payload(line, offset, value))
        if line.valid and line.tag == tag:
            line.state = LineState.RESERVED
        # else: a concurrent write-once serialised first and
        # invalidated us; memory has our value, line stays dropped.

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Write-once has no shared-clean state: every non-VALID state
        # writes silently, so a leaked SHARED tag would suppress the
        # announcing write-through and strand other copies stale.
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Supply; bus snarfs into memory; we demote to VALID.
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                line.state = LineState.VALID
                return result
            if line.state is LineState.RESERVED:
                line.state = LineState.VALID
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state is LineState.DIRTY else None,
                write_back=line.state is LineState.DIRTY)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op in (BusOp.MWRITE, BusOp.MINVALIDATE):
            # A write-once write-through from another cache (or DMA):
            # memory is updated and our copy is stale — invalidate.
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(f"write-once cache snooped unknown bus op {op}")


class LegacyWriteThroughInvalidateProtocol(CoherenceProtocol):
    """Every write goes to the bus; snooped writes invalidate copies."""

    name = "write-through"

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        # No victim write can ever be needed; just replace.
        line.invalidate()
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        # Copy updated at grant time (merged_payload): see the Firefly
        # protocol's write_hit for why eager update is unsound.
        cache.stats.incr("write_throughs")
        tag = line.tag
        line_address = cache.geometry.rebuild_address(index, tag)
        yield from cache.bus_op(BusOp.MWRITE, line_address,
                                data=merged_payload(line, offset, value))
        # A concurrent writer serialised ahead of us invalidated our
        # copy; our write still reached memory, so leave it dropped
        # (no-write-allocate).  Otherwise the line stays VALID.
        if line.valid and line.tag == tag:
            line.state = LineState.VALID

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        # No-write-allocate: send the write to memory, leave the cache
        # untouched (the resident line at this index belongs to some
        # other address and stays).
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, tag)
        if cache.geometry.words_per_line == 1:
            yield from cache.bus_op(BusOp.MWRITE, line_address, data=(value,))
            return
        # Multi-word lines need the rest of the line's current contents.
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        yield from cache.bus_op(BusOp.MWRITE, line_address, data=tuple(data))

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            # Memory is always current; let it supply the data.
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(
            f"write-through cache snooped foreign bus op {op}")
