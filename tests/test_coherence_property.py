"""Property-based coherence testing with hypothesis.

Random programs — sequences of (cpu, read/write, address) operations,
some issued concurrently — run against every protocol.  After the dust
settles the machine must satisfy the checker's invariants, every read
must have returned the most recently serialised write's value for its
address, and memory must converge when all caches are flushed by
conflict eviction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.protocols import available_protocols
from repro.common.types import AccessKind, MemRef
from tests.conftest import MiniRig

ADDRESSES = list(range(0, 24))  # small pool: dense sharing + conflicts
CACHES = 3

op_strategy = st.tuples(
    st.integers(min_value=0, max_value=CACHES - 1),   # cpu
    st.sampled_from(["read", "write", "write_partial"]),
    st.sampled_from(ADDRESSES),
)

protocol_strategy = st.sampled_from(sorted(available_protocols()))


def apply_sequentially(rig, program):
    """Run the program one op at a time; verify read values inline.

    Sequential semantics make the expected value exact: it is simply
    the last value written to the address.
    """
    last_written = {}
    token = 0
    for cpu, op, address in program:
        if op == "read":
            value = rig.read(cpu, address)
            assert value == last_written.get(address, 0), (
                f"cpu{cpu} read {value} at {address}, expected "
                f"{last_written.get(address, 0)}")
        else:
            token += 1
            rig.write(cpu, address, token, partial=(op == "write_partial"))
            last_written[address] = token
    return last_written


@given(protocol=protocol_strategy,
       program=st.lists(op_strategy, min_size=1, max_size=60))
@settings(max_examples=120, deadline=None)
def test_sequential_programs_are_coherent(protocol, program):
    rig = MiniRig(protocol=protocol, caches=CACHES, lines=8)
    last_written = apply_sequentially(rig, program)
    rig.check_coherence()
    # Force write-back of everything by conflict-evicting all indexes,
    # then memory must hold the final values.
    evict_base = 1024
    for cpu in range(CACHES):
        for index in range(8):
            rig.read(cpu, evict_base + cpu * 256 + index)
    for address, value in last_written.items():
        visible = rig.memory.peek(address)
        cached = [rig.caches[i].peek(address) for i in range(CACHES)]
        cached = [c for c in cached if c is not None]
        if cached:
            assert all(c == value for c in cached)
        else:
            assert visible == value
    rig.check_coherence()


@given(protocol=protocol_strategy,
       program=st.lists(op_strategy, min_size=2, max_size=30),
       stagger=st.lists(st.integers(min_value=0, max_value=6),
                        min_size=2, max_size=30))
@settings(max_examples=100, deadline=None)
def test_concurrent_programs_preserve_invariants(protocol, program, stagger):
    """Per-CPU sequential programs running concurrently across CPUs.

    (A single CPU serialises its own accesses — launching two
    overlapping operations from one cache would model a machine that
    does not exist.)  Exact read values are schedule-dependent; the
    assertions are the protocol-level invariants plus single-source
    agreement: every read's value must be one that was actually
    written (or the initial zero).
    """
    rig = MiniRig(protocol=protocol, caches=CACHES, lines=8)
    written_values = {0}
    results = []

    per_cpu = {cpu: [] for cpu in range(CACHES)}
    token = 100
    for i, (cpu, op, address) in enumerate(program):
        delay = stagger[i % len(stagger)]
        if op != "read":
            token += 1
            written_values.add(token)
        per_cpu[cpu].append((op, address, delay, token))

    def cpu_program(cpu, steps):
        def gen():
            for op, address, delay, value in steps:
                if delay:
                    yield rig.sim.timeout(delay)
                if op == "read":
                    got = yield from rig.caches[cpu].cpu_read(
                        MemRef(address, AccessKind.DATA_READ))
                    results.append(got)
                else:
                    yield from rig.caches[cpu].cpu_write(
                        MemRef(address, AccessKind.DATA_WRITE,
                               partial=(op == "write_partial")), value)
        return gen()

    for cpu, steps in per_cpu.items():
        if steps:
            rig.sim.process(cpu_program(cpu, steps), f"cpu{cpu}")
    rig.sim.run()

    rig.check_coherence()
    for value in results:
        assert value in written_values
