"""The DES mailbox and the two-machine plumbing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.queues import Mailbox
from repro.system import CoherenceChecker
from repro.workloads.rpc_two_machine import TwoMachineRpc, TwoMachineRpcParams


class TestMailbox:
    def test_fifo_delivery(self, sim):
        box = Mailbox(sim, "m")
        got = []

        def consumer():
            for _ in range(3):
                item = yield from box.get()
                got.append(item)

        def producer():
            yield sim.timeout(5)
            for i in range(3):
                box.put(i)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        box = Mailbox(sim, "m")
        times = []

        def consumer():
            item = yield from box.get()
            times.append((item, sim.now))

        sim.process(consumer())
        sim.call_at(42, lambda: box.put("late"))
        sim.run()
        assert times == [("late", 42)]

    def test_multiple_consumers_served_in_order(self, sim):
        box = Mailbox(sim, "m")
        got = []

        def consumer(name, delay):
            yield sim.timeout(delay)
            item = yield from box.get()
            got.append((name, item))

        sim.process(consumer("first", 1))
        sim.process(consumer("second", 2))
        sim.call_at(10, lambda: box.put("a"))
        sim.call_at(11, lambda: box.put("b"))
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self, sim):
        box = Mailbox(sim, "m")
        assert box.try_get() is None
        box.put(7)
        assert len(box) == 1
        assert box.try_get() == 7
        assert box.try_get() is None

    def test_put_before_get_is_immediate(self, sim):
        box = Mailbox(sim, "m")
        box.put("ready")

        def consumer():
            item = yield from box.get()
            return item, sim.now

        proc = sim.process(consumer())
        sim.run()
        assert proc.result == ("ready", 0)


class TestTwoMachineRpc:
    def test_machines_share_one_clock_but_not_buses(self):
        rpc = TwoMachineRpc(client_processors=2, server_processors=2,
                            client_threads=1)
        assert rpc.client.sim is rpc.server.sim
        assert rpc.client.machine.mbus is not rpc.server.machine.mbus
        assert rpc.client.machine.memory is not rpc.server.machine.memory

    def test_calls_complete_and_both_machines_stay_coherent(self):
        rpc = TwoMachineRpc(client_processors=2, server_processors=2,
                            client_threads=2)
        result = rpc.run(warmup_cycles=100_000, measure_cycles=500_000)
        assert result["calls"] > 0
        assert result["served"] > 0
        CoherenceChecker(rpc.client.machine).check()
        CoherenceChecker(rpc.server.machine).check()

    def test_served_tracks_calls(self):
        rpc = TwoMachineRpc(client_processors=2, server_processors=2,
                            client_threads=2)
        result = rpc.run(warmup_cycles=100_000, measure_cycles=500_000)
        # Within a window, served and completed calls differ by at most
        # the in-flight count.
        assert abs(result["served"] - result["calls"]) <= \
            rpc.client_threads + 1

    def test_wire_is_genuinely_shared(self):
        rpc = TwoMachineRpc(client_processors=2, server_processors=2,
                            client_threads=2)
        assert rpc.client_io.ethernet._segment is \
            rpc.server_io.ethernet._segment

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoMachineRpc(client_threads=0)
        with pytest.raises(ConfigurationError):
            TwoMachineRpcParams(server_threads=0)
