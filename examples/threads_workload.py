#!/usr/bin/env python3
"""Topaz threads on the Firefly: the paper's programming model, §4.

Demonstrates everything the Modula-2+ Threads module gives a program —
Fork/Join, Mutex (the LOCK statement), Condition Wait/Signal — running
on simulated hardware, where every mutex word, condition word and
ready-queue entry is real memory travelling through the coherent
caches.

The program: a bank of worker threads increments mutex-protected
counters while a producer/consumer pair streams items through a
bounded buffer; the main thread joins everything and the results are
verified against ground truth.

Run:  python examples/threads_workload.py
"""

from repro.system import CoherenceChecker
from repro.topaz import (
    Compute,
    Fork,
    Join,
    Lock,
    Read,
    TopazKernel,
    Unlock,
    Write,
    YieldCpu,
)
from repro.workloads.multiprogramming import BoundedBuffer

WORKERS = 6
ROUNDS = 25
ITEMS = 30


def main():
    kernel = TopazKernel.build(processors=4, threads_hint=16, seed=7)
    counter = kernel.alloc_shared(1, "counter")
    mutex = kernel.mutex("counter_lock")
    buffer = BoundedBuffer(kernel, capacity=4, name="stream")
    sink = kernel.alloc_shared(1, "sink")

    def worker(rounds):
        for _ in range(rounds):
            yield Compute(30)
            yield Lock(mutex)
            value = yield Read(counter)
            yield Write(counter, value + 1)
            yield Unlock(mutex)
            yield YieldCpu()
        return rounds

    def producer():
        for item in range(ITEMS):
            yield Compute(15)
            yield from buffer.put(item * item)
        return ITEMS

    def consumer():
        total = 0
        for _ in range(ITEMS):
            value = yield from buffer.take()
            total += value
            yield Write(sink, total)
        return total

    def main_thread():
        children = []
        for i in range(WORKERS):
            child = yield Fork(worker, ROUNDS, name=f"worker{i}")
            children.append(child)
        prod = yield Fork(producer, name="producer")
        cons = yield Fork(consumer, name="consumer")
        done = 0
        for child in children:
            done += yield Join(child)
        yield Join(prod)
        consumed = yield Join(cons)
        return done, consumed

    root = kernel.fork(main_thread, name="main")
    finish = kernel.run_until_quiescent(max_cycles=50_000_000)

    increments, consumed = root.result
    expected_sum = sum(i * i for i in range(ITEMS))
    print(f"finished at {finish} cycles ({finish * 1e-7 * 1e3:.1f} ms "
          f"simulated)")
    print(f"counter: {kernel._coherent_value(counter)} "
          f"(expected {WORKERS * ROUNDS}) — mutual exclusion held")
    print(f"pipeline sum: {consumed} (expected {expected_sum})")
    assert kernel._coherent_value(counter) == WORKERS * ROUNDS
    assert consumed == expected_sum

    stats = kernel.stats
    print(f"\nruntime activity: {stats['context_switches'].total} context "
          f"switches, {stats['lock_contended'].total} contended locks, "
          f"{stats['waits'].total} waits, "
          f"{kernel.total_migrations} migrations")
    bus = kernel.machine.mbus.stats
    print(f"bus traffic: {bus['ops'].total} operations, of which "
          f"{bus.totals().get('write.mshared', 0)} were write-throughs "
          f"that received MShared (true sharing)")
    CoherenceChecker(kernel.machine).check()
    print("coherence invariants verified")


if __name__ == "__main__":
    main()
