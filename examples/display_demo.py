#!/usr/bin/env python3
"""The MDC display controller: symmetric graphics via a memory queue.

The MDC "operates by periodically polling a work queue in main memory
using DMA", so *any* processor paints by ordinary stores — here a
Topaz thread (running on CPU 3, nowhere near the I/O processor) fills
the work queue through its own cache, and the controller picks the
commands up over the QBus and paints a blocky 'FF' (for Firefly) plus
a status bar of text.

Run:  python examples/display_demo.py
"""

from repro.io import DisplayCommand, IoSubsystem
from repro.io.mdc import ENTRY_WORDS
from repro.system import FireflyConfig, FireflyMachine
from repro.topaz import Compute, Read, TopazKernel, Write

# A blocky "FF" as fill rectangles: (x, y, w, h) in pixels.
GLYPH_RECTS = [
    (100, 100, 60, 400),   # F no. 1: stem
    (100, 100, 220, 60),   # top bar
    (100, 280, 160, 60),   # middle bar
    (420, 100, 60, 400),   # F no. 2: stem
    (420, 100, 220, 60),
    (420, 280, 160, 60),
]


def main():
    kernel = TopazKernel.build(processors=4, threads_hint=8,
                               io_enabled=True, seed=19)
    machine = kernel.machine
    io = IoSubsystem(machine)
    queue = io.mdc_queue

    def painter():
        """Enqueue display commands by ordinary stores — the symmetric
        abstraction: no PIO, no I/O processor involvement."""
        head = yield Read(queue.head_address)
        for x, y, w, h in GLYPH_RECTS:
            base = queue.entry_address(head)
            yield Write(base + 0, int(DisplayCommand.FILL_RECT))
            yield Write(base + 1, x)
            yield Write(base + 2, y)
            yield Write(base + 3, w)
            yield Write(base + 4, h)
            head = (head + 1) % queue.capacity
            yield Write(queue.head_address, head)
            yield Compute(20)
        # A line of text from the font cache.
        base = queue.entry_address(head)
        yield Write(base + 0, int(DisplayCommand.PAINT_CHARS))
        yield Write(base + 1, 100)
        yield Write(base + 2, 600)
        yield Write(base + 3, 64)   # 64 characters
        yield Write(queue.head_address, (head + 1) % queue.capacity)
        return len(GLYPH_RECTS) + 1

    thread = kernel.fork(painter, name="painter")
    io.start()
    machine.start()
    machine.sim.run_until(3_000_000)   # 300 ms simulated

    mdc = io.mdc
    print(f"painter enqueued {thread.result} commands by ordinary stores")
    print(f"MDC executed: {mdc.stats['fills'].total} fills, "
          f"{mdc.stats['chars_painted'].total} characters, "
          f"{mdc.stats['polls'].total} queue polls, "
          f"{mdc.stats['input_deposits'].total} keyboard/mouse deposits")
    print(f"pixels lit: {mdc.lit_pixels()}\n")
    print(mdc.render_ascii(scale=32))
    mouse = machine.memory.peek(mdc.input_firefly_base), \
        machine.memory.peek(mdc.input_firefly_base + 1)
    print(f"\nlatest mouse position deposited in memory: {mouse}")


if __name__ == "__main__":
    main()
