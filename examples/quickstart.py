#!/usr/bin/env python3
"""Quickstart: build the standard five-processor Firefly and measure it.

Builds the paper's standard machine — five MicroVAX CPUs with 16 KB
snoopy caches running the Firefly coherence protocol on a 10 MB/s MBus
with 16 MB of memory — runs the calibrated synthetic workload, checks
coherence, and compares the measured operating point against the
paper's analytic model (Table 1).

Run:  python examples/quickstart.py
"""

from repro import (
    CoherenceChecker,
    FireflyAnalyticModel,
    FireflyConfig,
    FireflyMachine,
)


def main():
    config = FireflyConfig(processors=5)
    machine = FireflyMachine(config)
    print(f"built: {machine!r}")

    print("\nsimulating 50 ms of machine time "
          "(20 ms warm-up + 30 ms measured)...")
    metrics = machine.run(warmup_cycles=200_000, measure_cycles=300_000)

    print("\n--- measured ---")
    print(metrics.summary())

    audited = CoherenceChecker(machine).check()
    print(f"\ncoherence invariants verified over {audited} cached words")

    model = FireflyAnalyticModel()
    point = model.operating_point(config.processors)
    print("\n--- paper's analytic model at five processors (Table 1) ---")
    print(f"predicted bus load L = {point.load:.2f} "
          f"(measured {metrics.bus_load:.2f})")
    print(f"predicted TPI = {point.tpi:.1f} "
          f"(measured {metrics.mean_tpi:.1f})")
    print(f"predicted total performance = {point.total_performance:.2f}x "
          f"a no-wait uniprocessor")
    print("\nThe simulator runs slightly ahead of the model: a miss "
          "overlaps one tick\nwith the normal access, and the open "
          "queueing model over-penalises load —\nthe same directions "
          "of error the paper acknowledges ('slide-rule accuracy').")


if __name__ == "__main__":
    main()
