#!/usr/bin/env python3
"""Trace-driven simulation: the paper's own methodology (§5.2).

"Trace-driven simulation of the MicroVAX CPU, carried out for us by
Deborrah Zukowski of the DEC Eastern Research Laboratory, showed it to
be an 11.9 tick-per-instruction implementation ... These simulations
also showed that a single processor Firefly cache achieves a miss rate
M of 0.2, and that the fraction D of cache entries that are dirty is
0.25."

This example records a reference trace from the calibrated synthetic
source, saves it to a file, and replays the *identical stream* through
caches running different coherence protocols — an apples-to-apples
protocol comparison impossible with live stochastic sources.

Run:  python examples/trace_driven.py
"""

import tempfile
from pathlib import Path

from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.protocols import available_protocols, protocol_by_name
from repro.bus.mbus import MBus
from repro.common.events import Simulator
from repro.common.rng import RandomStream
from repro.memory.main_memory import MainMemory, MemoryModule
from repro.processor.cpu import Processor
from repro.processor.refgen import (
    SyntheticReferenceSource,
    WorkloadShape,
    default_layout,
)
from repro.processor.timing import MICROVAX_TIMING
from repro.reporting import Column, TextTable
from repro.trace import RecordingSource, TraceSource, load_trace, save_trace

INSTRUCTIONS = 20_000


def record_trace(path):
    sim = Simulator()
    memory = MainMemory([MemoryModule(0, 1 << 22, is_master=True)])
    bus = MBus(sim, memory)
    cache = SnoopyCache(bus, protocol_by_name("firefly"), 0,
                        CacheGeometry.MICROVAX)
    source = RecordingSource(SyntheticReferenceSource(
        rng=RandomStream(1987, "trace"),
        layout=default_layout(0),
        shape=WorkloadShape(shared_write_fraction=0.0,
                            shared_read_fraction=0.0),
        instruction_limit=INSTRUCTIONS))
    cpu = Processor(sim, 0, MICROVAX_TIMING, cache, source)
    cpu.start()
    sim.run()
    count = save_trace(source.records, path)
    refs = sum(len(r.refs) for r in source.records)
    print(f"recorded {count} instructions ({refs} references, "
          f"{refs / count:.2f} refs/instruction) to {path}")
    return count


def replay_under(protocol_name, records):
    sim = Simulator()
    memory = MainMemory([MemoryModule(0, 1 << 22, is_master=True)])
    bus = MBus(sim, memory)
    cache = SnoopyCache(bus, protocol_by_name(protocol_name), 0,
                        CacheGeometry.MICROVAX)
    cpu = Processor(sim, 0, MICROVAX_TIMING, cache, TraceSource(records))
    cpu.start()
    sim.run()
    stats = cache.stats.totals()
    hits = sum(stats.get(k, 0) for k in ("ifetch.hit", "dread.hit",
                                         "dwrite.hit"))
    misses = sum(stats.get(k, 0) for k in ("ifetch.miss", "dread.miss",
                                           "dwrite.miss"))
    return {
        "miss_rate": misses / (hits + misses),
        "bus_ops": bus.stats["ops"].total,
        "elapsed_ms": sim.now * 1e-7 * 1e3,
        "dirty_fraction": cache.dirty_fraction(),
    }


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "microvax.trace"
        record_trace(path)
        records = load_trace(path)

        table = TextTable([
            Column("protocol", "s", align_left=True),
            Column("miss rate M", ".3f"),
            Column("dirty fraction D", ".3f"),
            Column("bus ops", "d"),
            Column("elapsed (ms)", ".2f"),
        ])
        for protocol in sorted(available_protocols()):
            r = replay_under(protocol, records)
            table.add_row(protocol, r["miss_rate"], r["dirty_fraction"],
                          r["bus_ops"], r["elapsed_ms"])
        print()
        print(table.render())
        print("\nSingle-CPU, zero sharing: the Firefly behaves as pure "
              "write-back\n(bus ops = misses + victims), M lands near the "
              "paper's 0.2 and D near 0.25;\nwrite-through pays a bus "
              "operation for every store on the same stream.")


if __name__ == "__main__":
    main()
