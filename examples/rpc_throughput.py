#!/usr/bin/env python3
"""RPC throughput versus concurrency: the 4.6 Mbit/s result (§6).

"The remote server can sustain a bandwidth of 4.6 megabits per second
using an average of three concurrent threads."  Sweeps the number of
concurrent client threads and prints sustained goodput over the DEQNA.

Run:  python examples/rpc_throughput.py
"""

from repro.reporting import Column, TextTable
from repro.workloads.rpc_server import sweep_client_threads


def main():
    results = sweep_client_threads([1, 2, 3, 4, 6],
                                   measure_cycles=2_000_000)
    table = TextTable([
        Column("client threads", "d"),
        Column("goodput (Mbit/s)", ".2f"),
        Column("wire utilisation", ".0%"),
        Column("calls completed", "d"),
    ])
    for count, r in results.items():
        table.add_row(count, r.goodput_mbit, r.wire_utilization,
                      r.calls_completed)
    print(table.render())
    print("\nOne thread leaves the controller idle during marshalling and")
    print("server turnaround; by about three threads the controller path")
    print("(QBus DMA + wire + per-frame driver work) saturates near the")
    print("paper's 4.6 Mbit/s — far below the 10 Mbit/s wire.")


if __name__ == "__main__":
    main()
