#!/usr/bin/env python3
"""Watch a Firefly run unfold: telemetry trace + ASCII timeline.

The paper's authors read their machine with hardware event counters
and a logic analyser; this example attaches the simulator's telemetry
layer to the Table 2 Threads exerciser and shows the same information
three ways:

1. a live subscriber that announces every thread migration as it
   happens (the event the Topaz scheduler works to avoid);
2. per-phase ASCII sparklines of bus load, per-CPU TPI and miss rate,
   and run-queue depth (the trajectories behind Table 2's averages);
3. a Chrome-trace JSON file — open ``telemetry_timeline.trace.json``
   in chrome://tracing or https://ui.perfetto.dev to scrub through
   every bus transaction, cache FSM transition and scheduling slice.

Run:  python examples/telemetry_timeline.py
"""

from repro.reporting import render_phase_timeline
from repro.telemetry import telemetry_for_kernel, write_export
from repro.workloads.threads_exerciser import ExerciserParams, build_exerciser

OUT_PATH = "telemetry_timeline.trace.json"


def main() -> None:
    kernel = build_exerciser(4, ExerciserParams(threads=12), seed=1987)
    hub, sampler = telemetry_for_kernel(kernel, interval=1_000)

    migrations = []

    def announce(event) -> None:
        args = dict(event.args)
        migrations.append(args)
        print(f"  t={event.time:>7}: {args['thread']} migrated "
              f"cpu{args['from_cpu']} -> cpu{args['to_cpu']}")

    hub.subscribe(announce, prefix="sched.migrate")

    print("running the Threads exerciser (4 CPUs, 12 threads)...")
    sampler.start()
    metrics = kernel.run(warmup_cycles=50_000, measure_cycles=150_000)
    sampler.stop()

    print(f"\n{len(migrations)} migrations observed "
          f"(scheduler affinity keeps these rare)\n")
    print(render_phase_timeline(hub, sampler))
    print()
    print(metrics.summary())

    fmt = write_export(OUT_PATH, hub, [sampler])
    print(f"\nwrote {hub.emitted} events to {OUT_PATH} [{fmt}] — "
          f"open in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
