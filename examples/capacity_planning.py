#!/usr/bin/env python3
"""Capacity planning with the paper's methodology, end to end.

The §5.2 workflow, automated: characterise a workload by trace-driven
reduction (mix, miss rate M, dirty fraction D), feed the statistics to
the analytic models, and read off how many processors the MBus can
usefully support for *this* workload — the paper's "perhaps nine
processors" computed for your own program.

Uses both the paper's open queueing model and this reproduction's
closed (exact-MVA) refinement, which stays honest past the knee.

Run:  python examples/capacity_planning.py
"""

from repro.analytic import (
    AnalyticParameters,
    ClosedFireflyModel,
    FireflyAnalyticModel,
)
from repro.cache.cache import CacheGeometry
from repro.common.rng import RandomStream
from repro.processor.refgen import (
    SyntheticReferenceSource,
    WorkloadShape,
    default_layout,
)
from repro.reporting import Column, TextTable
from repro.trace import reduce_trace, working_set_curve
from repro.trace.format import TraceRecord


def characterise_workload(instructions=25_000):
    """Step 1: trace the workload and reduce it to model inputs."""
    source = SyntheticReferenceSource(
        rng=RandomStream(1987, "plan"),
        layout=default_layout(0),
        shape=WorkloadShape(shared_write_fraction=0.0,
                            shared_read_fraction=0.0),
        instruction_limit=instructions)
    records = []
    while True:
        bundle = source.next_instruction(None)
        if bundle is None:
            break
        records.append(TraceRecord(refs=bundle.refs, is_jump=bundle.is_jump))
    reduction = reduce_trace(records, CacheGeometry.MICROVAX)
    curve = working_set_curve(records, (300, 1000, 3000, 10000))
    return reduction, curve


def main():
    reduction, curve = characterise_workload()
    print("workload characterisation (trace-driven, as in §5.2):")
    print(f"  {reduction.instructions} instructions, "
          f"{reduction.refs_per_instruction:.2f} refs/instruction "
          f"(IR={reduction.mix.instruction_reads:.2f}, "
          f"DR={reduction.mix.data_reads:.2f}, "
          f"DW={reduction.mix.data_writes:.2f})")
    print(f"  on the 16 KB Firefly cache: M={reduction.miss_rate:.3f}, "
          f"D={reduction.dirty_fraction:.3f}")
    print("  working-set curve (mean distinct words per window):")
    for window, size in curve.items():
        print(f"    {window:>6} refs: {size:8.0f} words")

    params = AnalyticParameters(
        mix=reduction.mix,
        miss_rate=reduction.miss_rate,
        dirty_fraction=reduction.dirty_fraction,
        shared_write_fraction=0.1)   # the paper's assumed S
    open_model = FireflyAnalyticModel(params)
    closed_model = ClosedFireflyModel(params)

    table = TextTable([
        Column("NP", "d"),
        Column("L (open)", ".2f"), Column("TP (open)", ".2f"),
        Column("L (closed)", ".2f"), Column("TP (closed)", ".2f"),
    ])
    for np in (1, 2, 4, 5, 6, 8, 10, 12, 16):
        c = closed_model.operating_point(np)
        try:
            o = open_model.operating_point(np)
            table.add_row(np, o.load, o.total_performance, c.load,
                          c.total_performance)
        except Exception:
            table.add_row(np, None, None, c.load, c.total_performance)
    print()
    print(table.render())
    knee = open_model.knee_processors()
    bound = closed_model.asymptotic_bound()
    print(f"\nmarginal-gain knee (open model): ~{knee} processors")
    print(f"asymptotic MBus bound (closed model): "
          f"TP <= {bound:.1f} no-wait processors' worth")
    print("\nFor the paper's parameters this lands on its 'perhaps nine "
          "processors';\nfor a leaner workload (lower M) the bus carries "
          "more — rerun with your own trace.")


if __name__ == "__main__":
    main()
