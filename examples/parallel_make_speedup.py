#!/usr/bin/env python3
"""Parallel make: the paper's flagship coarse-grained application (§6).

"We have implemented a parallel version of the Unix make utility,
which forks multiple compilations in parallel when possible."

Builds an eight-module project on Fireflies of 1, 2, 4 and 6
processors (with matching -j) and prints the build-time speedup.  The
disk is shared, so the speedup bends below ideal — compile is
parallel, seeks are not.

Run:  python examples/parallel_make_speedup.py
"""

from repro.io.subsystem import IoSubsystem
from repro.reporting import Column, TextTable
from repro.topaz.kernel import TopazKernel
from repro.workloads.parallel_make import ParallelMake, sample_project


def build_with(processors):
    kernel = TopazKernel.build(processors=processors, threads_hint=24,
                               io_enabled=True, seed=3)
    io = IoSubsystem(kernel.machine)
    make = ParallelMake(kernel, io, sample_project(8),
                        max_parallel=processors)
    return make.run(max_cycles=200_000_000)


def main():
    table = TextTable([
        Column("processors / -j", "d"),
        Column("build time (ms)", ".1f"),
        Column("speedup", ".2f"),
    ])
    baseline = None
    for processors in (1, 2, 4, 6):
        span = build_with(processors)
        milliseconds = span * 1e-7 * 1e3
        if baseline is None:
            baseline = span
        table.add_row(processors, milliseconds, baseline / span)
    print(table.render())
    print("\nCompilation parallelises; the shared disk's seeks do not —")
    print("the coarse-grained win the Firefly was built to deliver, with")
    print("an honest Amdahl bend.")


if __name__ == "__main__":
    main()
