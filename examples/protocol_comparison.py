#!/usr/bin/env python3
"""Coherence-protocol shoot-out on identical reference streams.

Runs the same calibrated four-processor workload (same seed, so the
CPUs issue the same references) under all seven implemented protocols at
three sharing intensities, and prints what the paper's §5.1 argues in
prose: write-through-invalidate saturates the bus; ownership protocols
pay reload misses under true sharing; the Firefly (and the similar
Dragon) pay for sharing only while it exists.

Run:  python examples/protocol_comparison.py
"""

from repro.cache.protocols import available_protocols
from repro.processor.refgen import WorkloadShape
from repro.reporting import Column, TextTable
from repro.system import FireflyConfig, FireflyMachine

SHARING_LEVELS = {
    "light (S=0.02)": WorkloadShape(shared_write_fraction=0.02,
                                    shared_read_fraction=0.01),
    "paper default (S=0.10)": WorkloadShape(),
    "heavy (S=0.33)": WorkloadShape(shared_write_fraction=0.33,
                                    shared_read_fraction=0.15),
}


def main():
    table = TextTable([
        Column("sharing", "s", align_left=True),
        Column("protocol", "s", align_left=True),
        Column("bus load", ".3f"),
        Column("miss rate", ".3f"),
        Column("TPI", ".2f"),
        Column("rel. perf", ".2f"),
    ])
    for label, shape in SHARING_LEVELS.items():
        for protocol in sorted(available_protocols()):
            machine = FireflyMachine(FireflyConfig(
                processors=4, protocol=protocol, workload=shape, seed=23))
            metrics = machine.run(warmup_cycles=120_000,
                                  measure_cycles=200_000)
            table.add_row(label, protocol, metrics.bus_load,
                          metrics.mean_miss_rate, metrics.mean_tpi,
                          11.9 / metrics.mean_tpi)
        table.add_separator()
    print(table.render())
    print("\nReadings:")
    print(" - write-through floods the bus at every sharing level;")
    print(" - under heavy sharing, mesi/berkeley/write-once miss rates "
          "rise (invalidate-then-reload ping-pong);")
    print(" - firefly and dragon track each other — 'the Xerox Dragon "
          "uses a similar scheme'.")


if __name__ == "__main__":
    main()
