#!/bin/sh
# Tier-1 check: the full test suite plus a bytecode compile sweep.
#
# Usage: scripts/check.sh [extra pytest args]
# e.g.:  scripts/check.sh -m telemetry
set -eu
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src examples benchmarks

echo "== pytest =="
python -m pytest -x -q "$@"
