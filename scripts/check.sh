#!/bin/sh
# Tier-1 check: compile sweep, tracked-bytecode guard, full test suite,
# then the static verification gate (protocol model checker + structural
# checks + simulation-safety linter; see docs/VERIFY.md).
#
# Usage: scripts/check.sh [extra pytest args]
# e.g.:  scripts/check.sh -m telemetry
set -eu
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src examples benchmarks

echo "== no tracked bytecode =="
if git ls-files | grep -E '(__pycache__|\.py[co]$)' >/dev/null 2>&1; then
    echo "error: compiled bytecode is tracked by git:" >&2
    git ls-files | grep -E '(__pycache__|\.py[co]$)' >&2
    echo "run: git rm -r --cached <paths> (see .gitignore)" >&2
    exit 1
fi

echo "== pytest =="
python -m pytest -x -q "$@"

echo "== static verification (firefly-sim verify) =="
python -m repro.cli verify --all-protocols

echo "== bench smoke + overhead gate (firefly-sim bench --jobs 2) =="
# Quick suite with two parallel workers into a scratch dir: proves the
# deterministic trial executor end-to-end and enforces the <=2%
# disabled-telemetry overhead budget (no --skip-overhead: a breach
# fails this script).  Nothing touches BENCH_*.json at the repo root.
BENCH_TMP=$(mktemp -d)
trap 'rm -rf "$BENCH_TMP"' EXIT
python -m repro.cli bench --quick --trials 1 --jobs 2 \
    --scenario exerciser-1cpu --scenario table1-sweep \
    --scenario core-microbench --scenario vector-stat \
    --out-dir "$BENCH_TMP"

echo "== bench regression gate vs committed baseline =="
# The scheduler-only microbenchmark compared against the newest
# committed BENCH_*.json at the repo root: an event-core regression
# fails CI here before any model-level scenario would notice.  The
# committed baselines are full-mode runs from a different host, so the
# threshold is deliberately loose (the noise-aware margin widens it
# further) — it catches order-of-magnitude scheduler breakage, not
# single-digit host drift.  Heap engine smoke rides along, proving the
# equivalence-oracle path stays runnable.
python -m repro.cli bench --quick --trials 1 \
    --scenario core-microbench --engine heap \
    --skip-overhead --out-dir "$BENCH_TMP" >/dev/null
python -m repro.cli bench --quick --trials 1 \
    --scenario core-microbench --scenario vector-stat \
    --skip-overhead --out-dir "$BENCH_TMP" \
    --baseline-dir . --compare --threshold 0.6

echo "== chaos smoke (firefly-sim chaos) =="
# One quick seeded fault campaign: proves every recovery path end to
# end (see docs/FAULTS.md); exits nonzero if any scenario fails.
python -m repro.cli chaos --quick --scenario bus-parity \
    --scenario cpu-offline

echo "== serve smoke + SLO gate (firefly-sim serve --jobs 2) =="
# One quick open-loop serving scenario under the resilience layer: the
# SLO gate exits nonzero on a p99 or success-rate breach (see
# docs/SERVING.md).  Run twice at different job counts and require
# byte-identical reports — the serving layer's determinism contract.
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$BENCH_TMP" "$SERVE_TMP"' EXIT
SERVE_OUT="${ARTIFACTS_DIR:-$SERVE_TMP}/serve.json"
python -m repro.cli serve --quick --scenario steady-poisson \
    --jobs 2 --json "$SERVE_OUT" --force
python -m repro.cli serve --quick --scenario steady-poisson \
    --jobs 1 --json "$SERVE_TMP/serve-j1.json" --force >/dev/null
cmp "$SERVE_OUT" "$SERVE_TMP/serve-j1.json"

echo "== campaign smoke (firefly-sim campaign run + report) =="
# The quick example campaign through the resumable ledger into a
# scratch store (golden digests included — drift exits nonzero), then
# the HTML dashboard over the committed BENCH trajectory plus that
# ledger (see docs/CAMPAIGNS.md).
CAMPAIGN_TMP=$(mktemp -d)
trap 'rm -rf "$BENCH_TMP" "$SERVE_TMP" "$CAMPAIGN_TMP"' EXIT
python -m repro.cli campaign run examples/campaigns/quick.yaml \
    --jobs 2 --store-dir "$CAMPAIGN_TMP/store" \
    --report "$CAMPAIGN_TMP/report.json"
python -m repro.cli campaign report --bench-dir . \
    --store-dir "$CAMPAIGN_TMP/store" --out "$CAMPAIGN_TMP/dashboard.html"

echo "== postmortem smoke (firefly-sim postmortem) =="
# Induce the pinned AB/BA deadlock, capture the firefly-crash/1 report
# and render it (see docs/CAUSAL.md).  The grep pins the acceptance
# criterion: the postmortem names the exact wait-for cycle.  The crash
# JSON lands in ARTIFACTS_DIR when CI exports one (kept as an artifact),
# else in the scratch dir.
CRASH_OUT="${ARTIFACTS_DIR:-$CAMPAIGN_TMP}/crash.json"
python -m repro.cli postmortem --scenario deadlock \
    --json "$CRASH_OUT" --force | tee "$CAMPAIGN_TMP/postmortem.txt"
grep -q "wait-for cycle" "$CAMPAIGN_TMP/postmortem.txt"
grep -q "left-fork waits on lock:fork-b held by right-fork" \
    "$CAMPAIGN_TMP/postmortem.txt"
python -m repro.cli postmortem "$CRASH_OUT" >/dev/null
