"""The stochastic processor model.

A :class:`Processor` is a kernel process that repeatedly asks its
*reference source* for the next instruction — a small bundle of memory
references plus control-flow metadata — and executes it against its
cache with cycle-exact timing:

- the instruction's base cost comes from the timing model's
  ``base_cycles_per_instruction`` (11.9 ticks on the MicroVAX),
  converted to integer cycles by error diffusion so the long-run mean
  is exact;
- each reference that has to visit the MBus consumes its budgeted tick
  *during* the bus wait, so a miss on a free bus costs exactly one tick
  more than a hit, and a dirty victim adds one full bus operation —
  matching the paper's accounting;
- a CPU access that collides with a snoop probe of its own tag store
  stalls one tick (the analytic model's SP term);
- the MicroVAX instruction prefetcher is modelled behaviourally:
  sequential instruction fetches that hit are partially overlapped with
  execution (refunding base cycles, raising the issue rate toward the
  paper's 10.5 TPI perfect-prefetch figure), and jumps waste prefetches
  — extra instruction reads that raise the reference rate without
  raising the issue rate.  The prefetcher defers wasted fetches when
  the bus is busy, which reproduces Table 2's observation that the
  read:write ratio drops as bus load rises.

The source abstraction lets the same CPU model run synthetic workloads
(:mod:`repro.processor.refgen`), Topaz threads
(:mod:`repro.topaz.runtime`) or recorded traces (:mod:`repro.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple, Union

from repro.cache.cache import SnoopyCache
from repro.common.errors import ConfigurationError
from repro.common.events import Event, Simulator
from repro.common.rng import FractionalAccumulator, RandomStream
from repro.common.stats import StatSet
from repro.common.types import SECONDS_PER_CYCLE, AccessKind, MemRef
from repro.processor.onchip import OnChipICache
from repro.processor.timing import ProcessorTiming


class InstructionBundle:
    """One instruction's worth of memory references.

    ``is_jump`` marks a control-flow discontinuity (the prefetcher's
    queued fetches beyond it are wasted).  ``prefetch_addresses`` are
    the sequential instruction addresses the prefetcher had speculated
    past the jump; the CPU may issue some of them as wasted fetches.
    ``write_values`` supplies the value for each DATA_WRITE ref in
    order; sources that don't care get monotonic tokens instead.
    ``base_cycles`` overrides the CPU's per-instruction base cost for
    this bundle — sources use it to model workload-dependent
    instruction mixes (the Threads exerciser of Table 2 executes
    simpler, faster instructions than the VAX-average 11.9 TPI).

    Treat instances as immutable.  Slotted plain class (not a frozen
    dataclass): reference sources build one per simulated instruction,
    so construction cost is hot — see docs/PERFORMANCE.md.
    """

    __slots__ = ("refs", "is_jump", "prefetch_addresses", "write_values",
                 "base_cycles")

    def __init__(self, refs: Tuple[MemRef, ...], is_jump: bool = False,
                 prefetch_addresses: Tuple[int, ...] = (),
                 write_values: Tuple[int, ...] = (),
                 base_cycles: Optional[int] = None) -> None:
        self.refs = refs
        self.is_jump = is_jump
        self.prefetch_addresses = prefetch_addresses
        self.write_values = write_values
        self.base_cycles = base_cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"InstructionBundle(refs={self.refs!r}, "
                f"is_jump={self.is_jump!r}, "
                f"prefetch_addresses={self.prefetch_addresses!r}, "
                f"write_values={self.write_values!r}, "
                f"base_cycles={self.base_cycles!r})")


class ReferenceSource(Protocol):
    """Supplies instructions to a :class:`Processor`.

    ``next_instruction`` returns an :class:`InstructionBundle` to
    execute, an :class:`Event` to sleep on (CPU idle — e.g. no runnable
    thread), or ``None`` to halt the processor permanently.
    """

    def next_instruction(self, cpu: "Processor") -> Union[
            InstructionBundle, Event, None]:
        ...


@dataclass(frozen=True)
class PrefetchConfig:
    """Behavioural prefetcher parameters.

    ``refund_cycles`` — base cycles refunded per sequential instruction
    fetch that hits (overlap with execution).  The default of 3 cycles
    yields an effective ~10.7 TPI at full coverage on the MicroVAX,
    close to the paper's perfect-prefetch estimate of 10.5.

    ``wasted_per_jump`` — mean discarded prefetches per jump; each is
    an extra instruction read on the reference stream.
    """

    enabled: bool = False
    refund_cycles: int = 3
    wasted_per_jump: float = 1.5

    def __post_init__(self) -> None:
        if self.refund_cycles < 0:
            raise ConfigurationError("refund_cycles must be >= 0")
        if self.wasted_per_jump < 0:
            raise ConfigurationError("wasted_per_jump must be >= 0")


class InterleavedSource:
    """Round-robin merge of two reference sources (CPU failover).

    Created by :meth:`Processor.absorb_source` when a survivor takes
    over a failed board's stream.  A constituent source that halts
    (returns ``None``) drops out; the other keeps the CPU busy.  An
    idle :class:`Event` from one source is passed through unchanged —
    the CPU sleeps on it exactly as it would single-sourced.
    """

    def __init__(self, primary: "ReferenceSource",
                 orphan: "ReferenceSource") -> None:
        self._sources = [primary, orphan]
        self._turn = 0

    def next_instruction(self, cpu: "Processor") -> Union[
            "InstructionBundle", Event, None]:
        for _ in range(len(self._sources)):
            source = self._sources[self._turn % len(self._sources)]
            self._turn += 1
            item = source.next_instruction(cpu)
            if item is None:
                self._sources.remove(source)
                if not self._sources:
                    return None
                continue
            return item
        return None


class Processor:
    """One CPU: timing model + cache + reference source, as a process."""

    __slots__ = ("sim", "cpu_id", "timing", "cache", "source", "prefetch",
                 "_rng", "stats", "_base_acc", "_wasted_acc", "onchip",
                 "_write_token", "_halted", "failed", "_window_start",
                 "process", "fast_path",
                 "_c_refs_ifetch", "_c_refs_dread", "_c_refs_dwrite",
                 "_c_sp_stalls", "_c_bus_stall_cycles", "_c_instructions",
                 "_c_prefetch_covered")

    def __init__(self, sim: Simulator, cpu_id: int, timing: ProcessorTiming,
                 cache: SnoopyCache, source: ReferenceSource,
                 prefetch: Optional[PrefetchConfig] = None,
                 rng: Optional[RandomStream] = None) -> None:
        self.sim = sim
        self.cpu_id = cpu_id
        self.timing = timing
        self.cache = cache
        self.source = source
        self.prefetch = prefetch or PrefetchConfig()
        if self.prefetch.enabled and rng is None:
            raise ConfigurationError(
                "prefetch modelling requires a random stream")
        self._rng = rng
        self.stats = StatSet(f"cpu{cpu_id}")
        self._base_acc = FractionalAccumulator(
            timing.base_cycles_per_instruction)
        self._wasted_acc = FractionalAccumulator(self.prefetch.wasted_per_jump)
        self.onchip: Optional[OnChipICache] = None
        if timing.has_onchip_icache:
            self.onchip = OnChipICache(timing.onchip_icache_lines,
                                       name=f"cpu{cpu_id}.onchip")
            # Stale-code safety: any snooped bus write to a line this
            # CPU holds on-chip drops the on-chip copy (the board logic
            # the CVAX docs describe).
            words = cache.geometry.words_per_line

            def invalidate_onchip(line_address, _onchip=self.onchip,
                                  _words=words):
                for offset in range(_words):
                    _onchip.invalidate_line(line_address + offset)

            cache.on_snooped_write = invalidate_onchip
        self._write_token = (cpu_id + 1) << 40
        self._halted = False
        self.failed = False
        self._window_start = 0
        self.process = None  # set by start()
        #: When True (the default), hit accesses are serviced by the
        #: cache's non-generator fast paths.  Timing, statistics and
        #: telemetry are identical either way (tests/test_fastpath.py
        #: asserts it); the flag exists so those tests can compare.
        self.fast_path = True
        # Per-reference counters, pre-created so the execute loop does
        # bound Counter.add calls instead of keyed StatSet lookups.
        stats = self.stats
        self._c_refs_ifetch = stats.counter("refs.ifetch")
        self._c_refs_dread = stats.counter("refs.dread")
        self._c_refs_dwrite = stats.counter("refs.dwrite")
        self._c_sp_stalls = stats.counter("sp_stalls")
        self._c_bus_stall_cycles = stats.counter("bus_stall_cycles")
        self._c_instructions = stats.counter("instructions")
        self._c_prefetch_covered = stats.counter("prefetch_covered")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Register the CPU's execution loop with the simulator."""
        self.process = self.sim.process(self._run(), name=f"cpu{self.cpu_id}")

    def halt(self) -> None:
        """Stop fetching after the current instruction completes."""
        self._halted = True

    def fail(self) -> None:
        """Mark this CPU board as failed (fault injection).

        The execution loop stops at the next fetch boundary; the board-
        level recovery (cache flush, bus detach, work re-sourcing) is
        orchestrated by :meth:`FireflyMachine.offline_cpu`.
        """
        self.failed = True
        self._halted = True
        self.stats.incr("failed_at", self.sim.now)

    def absorb_source(self, orphan: "ReferenceSource") -> None:
        """Interleave a failed CPU's reference stream into this one's.

        The survivor alternates between its own work and the orphaned
        stream — the simplest work-conserving re-sourcing, standing in
        for the scheduler migrating the dead board's runnable threads.
        """
        self.source = InterleavedSource(self.source, orphan)
        self.stats.incr("absorbed_sources")

    def _run(self):
        while not self._halted:
            item = self.source.next_instruction(self)
            if item is None:
                break
            if isinstance(item, Event):
                idle_from = self.sim.now
                yield item
                self.stats.incr("idle_cycles", self.sim.now - idle_from)
                continue
            yield from self.execute(item)
        self.stats.incr("halted_at", self.sim.now)

    # -- execution ---------------------------------------------------------

    def execute(self, bundle: InstructionBundle):
        """Generator: run one instruction with cycle-exact timing."""
        timing = self.timing
        budget = (bundle.base_cycles if bundle.base_cycles is not None
                  else self._base_acc.next())
        spent = 0
        refund = 0
        write_index = 0
        # Hot-loop locals: every name below is touched once or more per
        # reference, and the per-tick reference loop IS the simulator's
        # profile peak (see docs/PERFORMANCE.md).
        sim = self.sim
        cache = self.cache
        onchip = self.onchip
        fast = self.fast_path
        tick = timing.tick_cycles
        miss_overhead = timing.miss_overhead_cycles
        prefetch_enabled = self.prefetch.enabled
        refund_cycles = self.prefetch.refund_cycles

        for ref in bundle.refs:
            if sim.now < cache.tag_busy_until:
                self._c_sp_stalls.add()
                yield sim.timeout(tick)

            # Hits are serviced by the cache's non-generator fast paths
            # (no generator construction, no suspension); only misses
            # and protocol-loud hits pay for the coroutine machinery.
            # Counter ordering matters: the reference counters increment
            # after the access completes, exactly as the generator path
            # did, so a measurement window opened mid-miss attributes
            # the reference to the same side of the mark.
            kind = ref.kind
            if kind is AccessKind.DATA_WRITE:
                value = self._next_write_value(bundle, write_index)
                write_index += 1
                if fast and cache.cpu_write_fast(ref, value):
                    elapsed = 0
                else:
                    started = sim.now
                    yield from cache.cpu_write(ref, value)
                    elapsed = sim.now - started
                self._c_refs_dwrite.add()
            elif kind is AccessKind.INSTRUCTION_READ:
                if onchip is not None and onchip.access(ref.address):
                    elapsed = 0
                elif fast and cache.cpu_read_fast(ref):
                    elapsed = 0
                else:
                    started = sim.now
                    yield from cache.cpu_read(ref)
                    elapsed = sim.now - started
                self._c_refs_ifetch.add()
            else:
                if fast and cache.cpu_read_fast(ref):
                    elapsed = 0
                else:
                    started = sim.now
                    yield from cache.cpu_read(ref)
                    elapsed = sim.now - started
                self._c_refs_dread.add()

            if elapsed > 0:
                # This reference visited the bus: its budgeted tick was
                # consumed during the wait, plus any fixed overhead.
                spent += tick
                self._c_bus_stall_cycles.add(elapsed)
                if miss_overhead:
                    yield sim.timeout(miss_overhead)
            elif (prefetch_enabled
                  and kind is AccessKind.INSTRUCTION_READ
                  and not bundle.is_jump):
                # Sequential fetch that hit: overlapped with execution.
                refund += refund_cycles
                self._c_prefetch_covered.add()

        if prefetch_enabled and bundle.is_jump:
            yield from self._wasted_prefetches(bundle)

        remaining = budget - spent - refund
        if remaining > 0:
            yield sim.timeout(remaining)
        self._c_instructions.add()

    def _timed(self, access):
        """Generator: run a cache access, returning elapsed cycles."""
        started = self.sim.now
        yield from access
        return self.sim.now - started

    def _wasted_prefetches(self, bundle: InstructionBundle):
        """Generator: issue the prefetches discarded by a jump.

        The prefetcher defers when the bus is busy — under load it
        fetches less aggressively, so wasted traffic self-throttles
        (the mechanism behind Table 2's read:write ratio shift).
        """
        count = self._wasted_acc.next()
        for address in bundle.prefetch_addresses[:count]:
            if self.cache.mbus.busy:
                self.stats.incr("prefetch_deferred")
                continue
            ref = MemRef(address, AccessKind.INSTRUCTION_READ, prefetch=True)
            if self.onchip is not None and self.onchip.access(address):
                continue
            yield from self._timed(self.cache.cpu_read(ref))
            self.stats.incr("refs.ifetch")
            self.stats.incr("wasted_prefetches")

    def _next_write_value(self, bundle: InstructionBundle, index: int) -> int:
        if index < len(bundle.write_values):
            return bundle.write_values[index]
        self._write_token += 1
        return self._write_token

    # -- measurement -------------------------------------------------------------

    def mark_window(self) -> None:
        """Open a measurement window (start counting after warm-up)."""
        self.stats.mark_all()
        self._window_start = self.sim.now

    def window_seconds(self) -> float:
        return (self.sim.now - self._window_start) * SECONDS_PER_CYCLE

    def measured_tpi(self) -> float:
        """Realised ticks per instruction over the open window."""
        instructions = self.stats["instructions"].windowed
        if instructions == 0:
            return 0.0
        busy = (self.sim.now - self._window_start
                - self.stats["idle_cycles"].windowed)
        return busy / self.timing.tick_cycles / instructions

    def reference_rate(self) -> float:
        """References per second over the open window."""
        seconds = self.window_seconds()
        if seconds <= 0:
            return 0.0
        refs = (self.stats["refs.ifetch"].windowed
                + self.stats["refs.dread"].windowed
                + self.stats["refs.dwrite"].windowed)
        return refs / seconds

    def read_rate(self) -> float:
        """Reads (instruction + data) per second over the open window."""
        seconds = self.window_seconds()
        if seconds <= 0:
            return 0.0
        return (self.stats["refs.ifetch"].windowed
                + self.stats["refs.dread"].windowed) / seconds

    def write_rate(self) -> float:
        """Writes per second over the open window."""
        seconds = self.window_seconds()
        if seconds <= 0:
            return 0.0
        return self.stats["refs.dwrite"].windowed / seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Processor {self.cpu_id} {self.timing.name}>"
