"""Processor timing parameter sets.

Timing vocabulary (everything in 100 ns MBus cycles):

``tick_cycles``
    The budgeted duration of one cache access that hits.  Both CPU
    generations complete a cache hit in 200 ns — the MicroVAX because
    its tick is 200 ns, the CVAX because its 64 KB cache "is fast
    enough so that memory cycles that hit in the cache complete in
    200 ns with no wait states".

``base_cycles_per_instruction``
    Execution time with an always-hitting memory (includes the hit time
    of the instruction's references).  MicroVAX: 11.9 ticks x 200 ns =
    23.8 cycles.  CVAX: chosen at 9.0 cycles (900 ns) so the raw core
    is ~2.6x a MicroVAX; realised speedup lands in the paper's measured
    2.0-2.5x once the unchanged MBus timing and data-side off-chip
    traffic take their toll (ablation A1).

``miss_overhead_cycles``
    Fixed resynchronisation cost a bus-visiting access pays beyond the
    bus transaction itself.  Zero on the MicroVAX ("misses add only one
    cycle [one 200 ns tick] to a MicroVAX CPU access": the 4-cycle bus
    op minus the 2 budgeted cycles).  Two on the CVAX ("cache misses
    add four CVAX cycles": 2 budgeted + 2 bus-beyond-budget + 2
    overhead = 6 cycles total, i.e. hit + 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import MICROVAX_TICK_CYCLES


@dataclass(frozen=True)
class ProcessorTiming:
    """One CPU generation's timing constants (see module docstring)."""

    name: str
    tick_cycles: int
    base_cycles_per_instruction: float
    miss_overhead_cycles: int = 0
    has_onchip_icache: bool = False
    onchip_icache_lines: int = 0

    def __post_init__(self) -> None:
        if self.tick_cycles < 1:
            raise ConfigurationError("tick_cycles must be >= 1")
        if self.base_cycles_per_instruction < self.tick_cycles:
            raise ConfigurationError(
                "an instruction cannot be shorter than one cache access")
        if self.miss_overhead_cycles < 0:
            raise ConfigurationError("miss_overhead_cycles must be >= 0")
        if self.has_onchip_icache and self.onchip_icache_lines <= 0:
            raise ConfigurationError(
                "on-chip i-cache requires a positive line count")

    @property
    def base_tpi(self) -> float:
        """Base ticks-per-instruction (11.9 for the MicroVAX)."""
        return self.base_cycles_per_instruction / self.tick_cycles

    @property
    def instructions_per_second_nowait(self) -> float:
        """Issue rate with an always-hitting memory."""
        return 1e7 / self.base_cycles_per_instruction  # 1e7 cycles/sec


MICROVAX_TIMING = ProcessorTiming(
    name="MicroVAX 78032",
    tick_cycles=MICROVAX_TICK_CYCLES,
    base_cycles_per_instruction=11.9 * MICROVAX_TICK_CYCLES,
    miss_overhead_cycles=0,
)
"""The original Firefly CPU: 11.9 TPI at 200 ns ticks (~420K VAX
instructions/second with no-wait-state memory)."""

CVAX_TIMING = ProcessorTiming(
    name="CVAX 78034",
    tick_cycles=2,
    base_cycles_per_instruction=9.0,
    miss_overhead_cycles=2,
    has_onchip_icache=True,
    onchip_icache_lines=256,
)
"""The second-generation CPU: 100 ns cycles, ~2.6x raw speed, with a
1 KB on-chip cache configured for instruction references only."""
