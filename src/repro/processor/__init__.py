"""Processor timing models: MicroVAX 78032 and CVAX 78034.

The paper's performance analysis depends only on aggregate reference
behaviour — 2.13 references per instruction (0.95 instruction reads,
0.78 data reads, 0.40 data writes, from Emer & Clark's VAX-11/780
characterisation) and an 11.9 tick-per-instruction base implementation
— so the models here are stochastic timing models, not VAX emulators.
"""

from repro.processor.cpu import InstructionBundle, Processor, ReferenceSource
from repro.processor.mix import VAX_MIX, ReferenceMix
from repro.processor.onchip import OnChipICache
from repro.processor.refgen import SharedRegion, SyntheticReferenceSource, WorkloadShape
from repro.processor.timing import CVAX_TIMING, MICROVAX_TIMING, ProcessorTiming

__all__ = [
    "CVAX_TIMING",
    "InstructionBundle",
    "MICROVAX_TIMING",
    "OnChipICache",
    "Processor",
    "ProcessorTiming",
    "ReferenceMix",
    "ReferenceSource",
    "SharedRegion",
    "SyntheticReferenceSource",
    "VAX_MIX",
    "WorkloadShape",
]
