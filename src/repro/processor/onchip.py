"""The CVAX's 1 KB on-chip cache, configured for instructions only.

Paper §5: "The CVAX processor itself includes a 1024 byte on-chip
cache.  To simplify the problem of maintaining memory coherence, we
have chosen to configure that cache to store only instruction
references, not data."

Because it never holds data, it needs no coherence machinery — with
one exception the model must honour: when *any* bus write touches a
line it holds, the copy must be dropped, otherwise a processor could
execute stale code after another processor (or DMA) rewrites an
instruction page.  The board logic achieves this by invalidation on
snooped writes; we mirror that with :meth:`invalidate_line`, wired to
the off-chip cache's snoop path by the CPU model.

An on-chip hit is free (covered by the CVAX's base CPI); a miss falls
through to the off-chip 64 KB cache.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import StatSet


class OnChipICache:
    """Tiny direct-mapped, instruction-only, presence-tracking cache.

    Only tags are tracked: the data always also lives in the off-chip
    cache or memory, and instruction words are never modified locally,
    so the model does not need to duplicate the bytes.
    """

    def __init__(self, lines: int, name: str = "onchip") -> None:
        if lines <= 0 or (lines & (lines - 1)) != 0:
            raise ConfigurationError(
                f"on-chip line count must be a power of two, got {lines}")
        self.lines = lines
        self._tags: List[Optional[int]] = [None] * lines
        self.stats = StatSet(name)

    def access(self, word_address: int) -> bool:
        """Look up an instruction fetch; allocate on miss.  True = hit."""
        index = word_address % self.lines
        tag = word_address // self.lines
        if self._tags[index] == tag:
            self.stats.incr("hit")
            return True
        self._tags[index] = tag
        self.stats.incr("miss")
        return False

    def invalidate_line(self, word_address: int) -> None:
        """Drop the copy of a word that a bus write just modified."""
        index = word_address % self.lines
        tag = word_address // self.lines
        if self._tags[index] == tag:
            self._tags[index] = None
            self.stats.incr("invalidated")

    def flush(self) -> None:
        """Invalidate everything (context-switch cost model hooks)."""
        self._tags = [None] * self.lines

    @property
    def hit_rate(self) -> float:
        hits = self.stats["hit"].total
        misses = self.stats["miss"].total
        total = hits + misses
        return hits / total if total else 0.0
