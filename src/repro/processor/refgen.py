"""Synthetic, locality-calibrated reference generation.

The paper's trace-driven inputs are unavailable (Zukowski's VAX traces
were DEC-internal), so this module is the documented substitution: a
stochastic reference source whose streams have the locality *structure*
of real programs — instruction loops, a hot data working set, a recent
write set, a shared segment — with parameters calibrated so a
single-CPU 16 KB / one-longword-line direct-mapped cache reproduces the
paper's trace-derived statistics:

- overall miss rate M ~= 0.2 (footnote 4 calls this "abnormally large
  for a 16 kilobyte cache" — the 4-byte line forfeits spatial locality,
  and this generator inherently has no spatial locality to forfeit,
  which is exactly the right substitute);
- dirty fraction D ~= 0.25 of valid lines;
- fraction S of writes directed at shared data (default 0.1, the
  paper's "arbitrarily assumed" estimate, adjustable per workload).

Streams are per-CPU-private except for an explicit shared region, so
all sharing is true sharing under program control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.common.events import Event
from repro.common.rng import FractionalAccumulator, RandomStream
from repro.common.types import AccessKind, MemRef
from repro.processor.cpu import InstructionBundle, Processor
from repro.processor.mix import VAX_MIX, ReferenceMix


@dataclass(frozen=True)
class WorkloadShape:
    """Locality parameters of the synthetic workload.

    The defaults are the calibrated values: see
    ``tests/test_calibration.py``, which pins the resulting M and D
    against the paper's figures.
    """

    loop_length: int = 40
    loop_iterations: float = 8.0
    data_working_set: int = 900
    data_reuse: float = 0.89
    read_after_write: float = 0.20
    write_set_size: int = 1024
    write_locality: float = 0.80
    shared_write_fraction: float = 0.10
    shared_read_fraction: float = 0.05
    partial_write_fraction: float = 0.05
    prefill_working_set: bool = False
    """Populate the hot/write sets with heap addresses at construction,
    so high-reuse (slow-fill) shapes reach their steady-state working
    set immediately — used by capacity-sensitivity experiments."""

    def __post_init__(self) -> None:
        if self.loop_length < 1:
            raise ConfigurationError("loop_length must be >= 1")
        if self.loop_iterations < 1:
            raise ConfigurationError("loop_iterations must be >= 1")
        if self.data_working_set < 1 or self.write_set_size < 1:
            raise ConfigurationError("working sets must be non-empty")
        for name in ("data_reuse", "read_after_write", "write_locality",
                     "shared_write_fraction", "shared_read_fraction",
                     "partial_write_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {value}")
        if self.shared_write_fraction + self.partial_write_fraction > 1.0:
            raise ConfigurationError(
                "shared + partial write fractions exceed 1")


class SharedRegion:
    """A block of words accessed by every processor.

    Models the shared segment of a parallel program: scheduler queues,
    mutexes, shared buffers.  One instance is passed to every CPU's
    source; the paper's S parameter is the probability a write lands
    here.
    """

    def __init__(self, base_word: int, words: int) -> None:
        if words < 1:
            raise ConfigurationError("shared region must be non-empty")
        if base_word < 0:
            raise ConfigurationError("shared region base must be >= 0")
        self.base_word = base_word
        self.words = words

    def pick(self, rng: RandomStream) -> int:
        """A uniformly random shared word address."""
        return self.base_word + rng.randint(0, self.words - 1)

    def contains(self, word_address: int) -> bool:
        return self.base_word <= word_address < self.base_word + self.words


@dataclass(frozen=True)
class RegionLayout:
    """One CPU's private address regions (word addresses)."""

    code_base: int
    code_words: int
    heap_base: int
    heap_words: int

    def __post_init__(self) -> None:
        if self.code_words < 1 or self.heap_words < 1:
            raise ConfigurationError("regions must be non-empty")
        code_end = self.code_base + self.code_words
        if not (code_end <= self.heap_base
                or self.heap_base + self.heap_words <= self.code_base):
            raise ConfigurationError("code and heap regions overlap")


def default_layout(cpu_id: int, code_words: int = 65536,
                   heap_words: int = 131072,
                   region_span: int = 262144) -> RegionLayout:
    """Disjoint per-CPU regions: 256K words (1 MB) per processor."""
    base = cpu_id * region_span
    if code_words + heap_words > region_span:
        raise ConfigurationError("regions exceed the per-CPU span")
    return RegionLayout(code_base=base, code_words=code_words,
                        heap_base=base + code_words, heap_words=heap_words)


class SyntheticReferenceSource:
    """Per-CPU synthetic instruction stream with calibrated locality.

    Instruction fetches walk loops: ``loop_length`` sequential words
    re-executed a geometrically distributed number of times (mean
    ``loop_iterations``), then a jump to fresh code.  Data reads mix
    hot-set reuse, read-after-write, shared reads and fresh addresses;
    data writes mix recent-write-set locality, shared writes and fresh
    addresses.
    """

    def __init__(self, rng: RandomStream, layout: RegionLayout,
                 shared: Optional[SharedRegion] = None,
                 shape: Optional[WorkloadShape] = None,
                 mix: ReferenceMix = VAX_MIX,
                 instruction_limit: Optional[int] = None) -> None:
        self.rng = rng
        self.layout = layout
        self.shared = shared
        self.shape = shape or WorkloadShape()
        self.mix = mix
        self.instruction_limit = instruction_limit
        if self.shared is None and (self.shape.shared_write_fraction > 0
                                    or self.shape.shared_read_fraction > 0):
            raise ConfigurationError(
                "workload shape references shared data but no shared "
                "region was provided")

        self._ir_acc = FractionalAccumulator(mix.instruction_reads)
        self._dr_acc = FractionalAccumulator(mix.data_reads)
        self._dw_acc = FractionalAccumulator(mix.data_writes)

        self._pc = layout.code_base
        self._loop_start = layout.code_base
        self._loop_left = self.shape.loop_length
        self._iters_left = self._draw_iterations()
        self._code_cursor = layout.code_base
        self._jumped = False

        self._heap_cursor = layout.heap_base
        self._hot: List[int] = []
        self._writes: List[int] = []
        self._issued = 0
        if self.shape.prefill_working_set:
            for _ in range(min(self.shape.data_working_set,
                               layout.heap_words)):
                self._hot.append(self._fresh_heap_word())
            for _ in range(min(self.shape.write_set_size,
                               layout.heap_words)):
                self._writes.append(self._fresh_heap_word())

    # -- ReferenceSource ------------------------------------------------

    def next_instruction(self, cpu: Processor) -> Union[
            InstructionBundle, Event, None]:
        if (self.instruction_limit is not None
                and self._issued >= self.instruction_limit):
            return None
        self._issued += 1
        self._jumped = False
        refs: List[MemRef] = []
        for _ in range(self._ir_acc.next()):
            refs.append(MemRef(self._next_code_address(),
                               AccessKind.INSTRUCTION_READ))
        for _ in range(self._dr_acc.next()):
            refs.append(MemRef(self._next_read_address(),
                               AccessKind.DATA_READ))
        for _ in range(self._dw_acc.next()):
            address, partial = self._next_write_address()
            refs.append(MemRef(address, AccessKind.DATA_WRITE, partial=partial))
        prefetch = (self._pc, self._pc + 1, self._pc + 2)
        return InstructionBundle(refs=tuple(refs), is_jump=self._jumped,
                                 prefetch_addresses=prefetch)

    # -- streams ------------------------------------------------------------

    def _draw_iterations(self) -> int:
        return self.rng.geometric(self.shape.loop_iterations)

    def _next_code_address(self) -> int:
        if self._loop_left == 0:
            self._jumped = True
            self._iters_left -= 1
            if self._iters_left > 0:
                self._pc = self._loop_start
            else:
                # Fresh loop: advance through the code segment.
                span = self.layout.code_words
                self._code_cursor = (self.layout.code_base
                                     + (self._code_cursor
                                        - self.layout.code_base
                                        + self.shape.loop_length) % span)
                self._loop_start = self._code_cursor
                self._pc = self._loop_start
                self._iters_left = self._draw_iterations()
            self._loop_left = self.shape.loop_length
        address = self._pc
        self._pc += 1
        self._loop_left -= 1
        return address

    def _fresh_heap_word(self) -> int:
        address = self._heap_cursor
        self._heap_cursor += 1
        if self._heap_cursor >= self.layout.heap_base + self.layout.heap_words:
            self._heap_cursor = self.layout.heap_base
        return address

    def _next_read_address(self) -> int:
        shape = self.shape
        roll = self.rng.random()
        if self.shared is not None and roll < shape.shared_read_fraction:
            return self.shared.pick(self.rng)
        if self._writes and self.rng.bernoulli(shape.read_after_write):
            return self.rng.choice(self._writes)
        if self._hot and self.rng.bernoulli(shape.data_reuse):
            return self.rng.choice(self._hot)
        address = self._fresh_heap_word()
        self._remember_hot(address)
        return address

    def _next_write_address(self) -> Tuple[int, bool]:
        shape = self.shape
        partial = self.rng.bernoulli(shape.partial_write_fraction)
        roll = self.rng.random()
        if self.shared is not None and roll < shape.shared_write_fraction:
            return self.shared.pick(self.rng), partial
        if self._writes and self.rng.bernoulli(shape.write_locality):
            return self.rng.choice(self._writes), partial
        address = self._fresh_heap_word()
        self._remember_written(address)
        self._remember_hot(address)
        return address, partial

    def _remember_hot(self, address: int) -> None:
        if len(self._hot) >= self.shape.data_working_set:
            victim = self.rng.randint(0, len(self._hot) - 1)
            self._hot[victim] = address
        else:
            self._hot.append(address)

    def _remember_written(self, address: int) -> None:
        if len(self._writes) >= self.shape.write_set_size:
            victim = self.rng.randint(0, len(self._writes) - 1)
            self._writes[victim] = address
        else:
            self._writes.append(address)
