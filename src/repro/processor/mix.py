"""The VAX reference mix.

Paper §5.2: "Measurements made on the VAX [Emer & Clark] show that a
typical instruction does .95 (=IR) instruction reads per instruction,
.78 (=DR) data reads, and .40 (=DW) data writes, for a total of 2.13
(=TR) references per instruction.  This is an architectural property
valid across a wide range of applications, and does not depend on the
particular CPU implementation."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ReferenceMix:
    """Per-instruction reference rates.

    All three rates may exceed 1 (an instruction can make several data
    reads); the defaults are the paper's measured VAX averages.
    """

    instruction_reads: float = 0.95
    data_reads: float = 0.78
    data_writes: float = 0.40

    def __post_init__(self) -> None:
        for field_name in ("instruction_reads", "data_reads", "data_writes"):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be >= 0, got {value}")

    @property
    def total(self) -> float:
        """TR: total references per instruction."""
        return self.instruction_reads + self.data_reads + self.data_writes

    @property
    def read_write_ratio(self) -> float:
        """Reads per write (the paper reports 4.7:1 / 3.8:1 in Table 2)."""
        if self.data_writes == 0:
            return float("inf")
        return (self.instruction_reads + self.data_reads) / self.data_writes


VAX_MIX = ReferenceMix()
"""The Emer & Clark VAX mix used throughout the paper: TR = 2.13."""
