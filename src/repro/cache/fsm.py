"""Protocol FSM enumeration: regenerating Figure 3 from live code.

The paper's Figure 3 is the state-transition diagram of a cache line
under processor (P) and memory-bus (M) stimuli, with the MShared
response in parentheses where it selects the successor.  Rather than
transcribing the figure, this module *measures* it: it builds a real
two-cache rig, places the focal cache's line in each state, applies
each stimulus, and records the observed successor state and bus
operations.  The Figure 3 benchmark then checks the enumeration against
a golden table typed in from the paper — so the figure is evidence that
the implemented protocol is the published one.

The same machinery enumerates the baseline protocols (their diagrams
appear in the Archibald & Baer survey), which the protocol unit tests
use to pin each baseline's state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bus.mbus import MBus
from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.line import LineState
from repro.cache.protocols import PROTOCOL_FACTS, protocol_by_name
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.types import AccessKind, BusOp, MemRef
from repro.memory.main_memory import MainMemory, MemoryModule

#: States each protocol's lines can occupy (besides INVALID), and the
#: state a *peer* cache naturally holds when it shares the line.
#: Generated from the DSL definitions' facts tables — these used to be
#: hand-maintained dictionaries that every new protocol had to edit.
PROTOCOL_STATES: Dict[str, Tuple[LineState, ...]] = {
    name: facts.states for name, facts in PROTOCOL_FACTS.items()
}

PEER_COSTATE: Dict[str, LineState] = {
    name: facts.peer_costate for name, facts in PROTOCOL_FACTS.items()
}


@dataclass(frozen=True)
class Transition:
    """One observed arc of the protocol FSM.

    ``peer_end`` records where the stimulus left the *peer* cache's
    line, when a peer was present (None otherwise) — the static
    verifier's structural pass uses it to prove that no arc parks the
    focal cache in a silent-write state while the peer still holds a
    copy.
    """

    start: LineState
    stimulus: str
    peer_holds: bool
    end: LineState
    bus_ops: Tuple[str, ...]
    peer_end: Optional[LineState] = None

    def label(self) -> str:
        """Compact rendering, e.g. ``S --P-write (MShared)--> S [MWrite]``.

        The parenthesised MShared response (the figure's convention) is
        only meaningful on processor-initiated arcs that reached the
        bus; M-side arcs are annotated with the operation alone.
        """
        annotation = ""
        if self.bus_ops and self.stimulus.startswith("P-"):
            annotation = " (MShared)" if self.peer_holds else " (not MShared)"
        ops = f" [{', '.join(self.bus_ops)}]" if self.bus_ops else ""
        return (f"{self.start.value:>3} --{self.stimulus}{annotation}--> "
                f"{self.end.value}{ops}")


class _Rig:
    """A minimal two-cache machine for transition probing."""

    ADDRESS = 64  # arbitrary line-aligned word

    def __init__(self, protocol_name: str, protocol=None) -> None:
        self.sim = Simulator()
        memory = MainMemory([MemoryModule(0, 1 << 20, is_master=True)])
        self.memory = memory
        self.mbus = MBus(self.sim, memory)
        self.protocol = (protocol if protocol is not None
                         else protocol_by_name(protocol_name))
        geometry = CacheGeometry(64, 1)
        self.focal = SnoopyCache(self.mbus, self.protocol, 0, geometry)
        self.peer = SnoopyCache(self.mbus, self.protocol, 1, geometry)

    def inject(self, cache: SnoopyCache, state: LineState, value: int) -> None:
        """Place the probe line directly into ``state``.

        Injection (rather than replaying a reachability prefix) lets us
        enumerate the *transition function* over its whole domain.  The
        surrounding data is kept self-consistent: clean states match
        memory, dirty states deliberately differ from it.
        """
        line, _, tag, _ = cache.lookup(self.ADDRESS)
        line.fill(tag, (value,), state)

    def run(self, gen) -> None:
        self.sim.process(gen, "stimulus")
        self.sim.run()

    def ops_snapshot(self) -> Dict[str, int]:
        return {key: counter.total for key, counter in self.mbus.stats.items()
                if key.startswith("op.") or key == "write.victim"}

    def ops_delta(self, before: Dict[str, int]) -> Tuple[str, ...]:
        after = self.ops_snapshot()
        labels: List[str] = []
        for key in sorted(set(before) | set(after)):
            count = after.get(key, 0) - before.get(key, 0)
            if key == "write.victim" or count <= 0:
                continue
            name = key[len("op."):]
            labels.extend([name] * count)
        victims = (after.get("write.victim", 0)
                   - before.get("write.victim", 0))
        for _ in range(victims):
            # One of the MWrites was a victim write; relabel it.
            labels.remove("MWrite")
            labels.append("MWrite(victim)")
        return tuple(sorted(labels))


def _probe(protocol_name: str, start: LineState, stimulus: str,
           peer_holds: bool, protocol=None) -> Optional[Transition]:
    """Apply one stimulus in a fresh rig; None if it does not apply."""
    rig = _Rig(protocol_name, protocol=protocol)
    address = rig.ADDRESS
    clean_value = 111
    rig.memory.poke(address, clean_value)

    if start is not LineState.INVALID:
        value = clean_value if not start.is_dirty else 222
        rig.inject(rig.focal, start, value)
        if start.is_dirty:
            # Memory is stale relative to the dirty copy.
            rig.memory.poke(address, clean_value)
    if peer_holds:
        peer_state = PEER_COSTATE[protocol_name]
        peer_value = rig.focal.peek(address)
        if peer_value is None:
            peer_value = clean_value
        rig.inject(rig.peer, peer_state, peer_value)

    before = rig.ops_snapshot()

    if stimulus == "P-read":
        if start is LineState.INVALID:
            def gen():
                yield from rig.focal.cpu_read(
                    MemRef(address, AccessKind.DATA_READ))
        else:
            def gen():
                yield from rig.focal.cpu_read(
                    MemRef(address, AccessKind.DATA_READ))
        rig.run(gen())
    elif stimulus == "P-write":
        def gen():
            yield from rig.focal.cpu_write(
                MemRef(address, AccessKind.DATA_WRITE), 333)
        rig.run(gen())
    elif stimulus == "M-read":
        if start is LineState.INVALID:
            return None  # an M stimulus needs a resident line to probe
        def gen():
            yield from rig.mbus.transaction(
                1, BusOp.MREAD, address, initiator=1)
        rig.run(gen())
    elif stimulus == "M-write":
        if start is LineState.INVALID:
            return None
        def gen():
            yield from rig.mbus.transaction(
                1, BusOp.MWRITE, address, initiator=1, data=(444,))
        rig.run(gen())
    else:
        raise ConfigurationError(f"unknown stimulus {stimulus!r}")

    return Transition(
        start=start,
        stimulus=stimulus if start is not LineState.INVALID
        else stimulus + "-miss",
        peer_holds=peer_holds,
        end=rig.focal.state_of(address),
        bus_ops=rig.ops_delta(before),
        peer_end=rig.peer.state_of(address) if peer_holds else None,
    )


def enumerate_transitions(protocol_name: str,
                          protocol=None) -> List[Transition]:
    """Every (state, stimulus, peer-presence) arc of a protocol's FSM.

    Redundant arcs — where the peer's presence cannot matter because no
    bus operation occurs — are collapsed to the ``peer_holds=False``
    variant.  ``protocol`` optionally overrides the instance probed
    (the static verifier passes deliberately mutated protocols through
    here); the name still selects the state vocabulary.
    """
    if protocol_name not in PROTOCOL_STATES:
        raise ConfigurationError(f"unknown protocol {protocol_name!r}")
    states = (LineState.INVALID,) + PROTOCOL_STATES[protocol_name]
    transitions: List[Transition] = []
    seen = set()
    for start in states:
        for stimulus in ("P-read", "P-write", "M-read", "M-write"):
            for peer_holds in (False, True):
                if stimulus.startswith("M-") and peer_holds:
                    continue  # the peer IS the M-side initiator
                result = _probe(protocol_name, start, stimulus, peer_holds,
                                protocol=protocol)
                if result is None:
                    continue
                if not result.bus_ops and peer_holds:
                    continue  # peer unobservable without a bus op
                key = (result.start, result.stimulus, result.peer_holds,
                       result.end, result.bus_ops)
                if key in seen:
                    continue
                seen.add(key)
                transitions.append(result)
    return transitions


def full_transition_table(
        protocol_name: str, protocol=None,
) -> Dict[Tuple[LineState, str, bool], Transition]:
    """The complete, un-collapsed transition function over its domain.

    Unlike :func:`enumerate_transitions` (which drops arcs that a
    figure would not draw), every applicable (state, stimulus,
    peer-presence) combination is probed and kept: the static
    verifier's totality and determinism checks need the whole domain.
    M-side stimuli only apply to resident lines, and always with the
    peer as initiator, so their domain is (valid state, stimulus,
    False).
    """
    if protocol_name not in PROTOCOL_STATES:
        raise ConfigurationError(f"unknown protocol {protocol_name!r}")
    states = (LineState.INVALID,) + PROTOCOL_STATES[protocol_name]
    table: Dict[Tuple[LineState, str, bool], Transition] = {}
    for start in states:
        for stimulus in ("P-read", "P-write", "M-read", "M-write"):
            for peer_holds in (False, True):
                if stimulus.startswith("M-") and peer_holds:
                    continue
                if stimulus.startswith("M-") and start is LineState.INVALID:
                    continue
                result = _probe(protocol_name, start, stimulus, peer_holds,
                                protocol=protocol)
                if result is not None:
                    table[(start, stimulus, peer_holds)] = result
    return table


def transition_map(protocol_name: str) -> Dict[Tuple[str, str, bool], str]:
    """{(start, stimulus, peer_holds): end} — handy for golden checks."""
    return {
        (t.start.value, t.stimulus, t.peer_holds): t.end.value
        for t in enumerate_transitions(protocol_name)
    }
