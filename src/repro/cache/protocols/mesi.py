"""Illinois MESI: the canonical write-invalidate write-back baseline.

From the Archibald & Baer survey the paper cites.  Writes to shared
lines invalidate every other copy; a modified holder answering a bus
read supplies the data and the bus *snarfs* it into main memory in the
same transaction (``write_back=True``), after which the holder demotes
to ``SHARED`` — unlike the Firefly, which inhibits memory and keeps
the dirty copy.

State mapping: M = ``DIRTY``, E = ``VALID``, S = ``SHARED``,
I = ``INVALID``.  Illinois-style clean cache-to-cache supply is
modelled: clean holders also drive read data (it equals memory's).
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    AcquireThenWrite,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    TakeData,
    WriteHitRule,
    WriteMissRule,
)

MESI = ProtocolDef(
    name="mesi",
    states=(LineState.VALID, LineState.DIRTY, LineState.SHARED),
    peer_costate=LineState.SHARED,
    read_miss=ReadMissRule(shared_state=LineState.SHARED,
                           exclusive_state=LineState.VALID),
    write_hit=(
        WriteHitRule(frozenset({LineState.VALID, LineState.DIRTY}),
                     SilentWrite(LineState.DIRTY)),
        # Shared: claim exclusivity with an MInvalidate first.
        WriteHitRule(frozenset({LineState.SHARED}),
                     AcquireThenWrite(next_state=LineState.DIRTY,
                                      counter="invalidations_sent")),
    ),
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.DIRTY)),),
    snoop=(
        # Supply and let the bus snarf the data into memory; we keep a
        # now-clean shared copy.
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.SHARED), supply=True, write_back=True),
        # Illinois: clean holders also supply (identical to memory).
        SnoopRule(BusOp.MREAD,
                  frozenset({LineState.VALID, LineState.SHARED}),
                  Goto(LineState.SHARED), supply=True),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.DIRTY}),
                  Invalidate(), supply=True, write_back=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX,
                  frozenset({LineState.VALID, LineState.SHARED}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED}),
                  Invalidate(), counter="invalidations_received"),
        # Only DMA writes can hit a MESI snooper (victim writes come
        # from exclusive holders).  Memory is updated by the same
        # transaction; refresh the copy and demote to shared-clean.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED}),
                  TakeData(LineState.SHARED)),
    ),
    silent_write_states=frozenset({LineState.VALID, LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    dma_shared_state=LineState.SHARED,
    dma_exclusive_state=LineState.VALID,
)


class MesiProtocol(DSLProtocol):
    """Write-invalidate, write-back, with exclusive-clean state."""

    definition = MESI
