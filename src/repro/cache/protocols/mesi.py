"""Illinois MESI: the canonical write-invalidate write-back baseline.

From the Archibald & Baer survey the paper cites.  Writes to shared
lines invalidate every other copy; a modified holder answering a bus
read supplies the data and the bus *snarfs* it into main memory in the
same transaction (``SnoopResult.write_back``), after which the holder
demotes to ``SHARED`` — unlike the Firefly, which inhibits memory and
keeps the dirty copy.

State mapping: M = ``DIRTY``, E = ``VALID``, S = ``SHARED``,
I = ``INVALID``.  Illinois-style clean cache-to-cache supply is
modelled: clean holders also drive read data (it equals memory's).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import CoherenceProtocol, _line_data
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class MesiProtocol(CoherenceProtocol):
    """Write-invalidate, write-back, with exclusive-clean state."""

    name = "mesi"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is LineState.SHARED:
            cache.stats.incr("invalidations_sent")
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            yield from cache.bus_op(BusOp.MINVALIDATE, line_address)
            if not (line.valid and line.tag == tag):
                # A competing writer's invalidation serialised first.
                yield from self.write_miss(cache, line, index, tag, offset,
                                           value, partial=False)
                return
        line.data[offset] = value
        line.state = LineState.DIRTY

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Supply and let the bus snarf the data into memory;
                # we keep a now-clean shared copy.
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                line.state = LineState.SHARED
                return result
            # Illinois: clean holders also supply (identical to memory).
            line.state = LineState.SHARED
            return SnoopResult(shared=True, data=line.snapshot())
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state.is_dirty else None,
                write_back=line.state.is_dirty)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op is BusOp.MINVALIDATE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # Only DMA writes can hit a MESI snooper (victim writes come
            # from exclusive holders).  Memory is updated by the same
            # transaction; refresh the copy and demote to shared-clean.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(f"MESI cache snooped unknown bus op {op}")
