"""A BedRock-style directory protocol family member (MSI), in the DSL.

"The BlackParrot BedRock Cache Coherence System" (PAPERS.md) describes
a *directory-based* MSI/MESI/MOESI family in which a central coherence
engine serialises requests and sends directed commands (invalidations,
write-back demands, data grants) to the caches holding a line — there
is no broadcast snooping and no MShared-style combined response.

This definition expresses the family's base MSI member in the same
guarded-action vocabulary as the snoopy protocols, demonstrating that
the DSL is not snoopy-specific.  The MBus stands in for the directory's
serialisation point, and each bus operation models the corresponding
directed command arriving at a cache (``MReadEx`` a read-with-
invalidate, ``MInvalidate`` an upgrade, an observed ``MWrite`` a
write-back notification):

- There is no exclusive-clean state and the combined response is never
  consulted: a fill is ``SHARED`` whether or not other copies exist,
  exactly as a BedRock S-grant.
- A dirty holder answering a read demotes to ``SHARED`` and the data
  is written back to the home node in the same transaction
  (``write_back=True``) — BedRock's downgrade-with-writeback command.
- Writing a shared line requires an upgrade (invalidate) round trip.

State mapping: M = ``DIRTY``, S = ``SHARED``, I = ``INVALID``.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    AcquireThenWrite,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteHitRule,
    WriteMissRule,
)

BEDROCK = ProtocolDef(
    name="bedrock",
    states=(LineState.SHARED, LineState.DIRTY),
    peer_costate=LineState.SHARED,
    # Every read fill is an S-grant; the directory does not reveal
    # whether other sharers exist.
    read_miss=ReadMissRule(shared_state=LineState.SHARED,
                           exclusive_state=LineState.SHARED),
    write_hit=(
        WriteHitRule(frozenset({LineState.DIRTY}), SilentWrite()),
        # Upgrade: ask the directory to invalidate the other sharers.
        WriteHitRule(frozenset({LineState.SHARED}),
                     AcquireThenWrite(next_state=LineState.DIRTY,
                                      counter="invalidations_sent")),
    ),
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.DIRTY)),),
    snoop=(
        # Downgrade-with-writeback: supply, home node is updated in the
        # same transaction, keep a clean shared copy.
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.SHARED), supply=True, write_back=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.SHARED}), Stay()),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.DIRTY}),
                  Invalidate(), supply=True, write_back=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.SHARED}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.SHARED, LineState.DIRTY}),
                  Invalidate(), counter="invalidations_received"),
        # A write-back notification (another cache's victim, or DMA):
        # the home node now holds the data; refresh as a clean sharer.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.SHARED, LineState.DIRTY}),
                  TakeData(LineState.SHARED)),
    ),
    silent_write_states=frozenset({LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    # No exclusive-clean state exists; a post-DMA resident copy is a
    # plain sharer either way.
    dma_shared_state=LineState.SHARED,
    dma_exclusive_state=LineState.SHARED,
)


class BedrockProtocol(DSLProtocol):
    """Directory-style MSI: S-grants, upgrades, downgrade-writebacks."""

    definition = BEDROCK
