"""The DSL compiler's runtime target: definitions become protocols.

``class FireflyProtocol(DSLProtocol): definition = FIREFLY`` is the
whole of a protocol implementation now.  ``__init_subclass__`` is the
compiler driver: it runs the static guard checker over the definition
(**before any simulation** — an ill-formed definition cannot even be
imported), then wires the generated artefacts onto the class:

- ``name`` / ``silent_write_states`` / ``silent_write_result`` and the
  full :class:`~repro.protodsl.defs.ProtocolFacts` table (``facts``)
  that the cache fast paths and the DMA hook consume,
- dispatch indexes (state → write-hit action, (bus op, state) → snoop
  rule) the generator handlers below interpret.

The handlers reproduce the legacy hand-written protocols action for
action — same bus operations, same statistics counters, same
grant-time payload merging — which the oracle-equivalence and fastpath
tests pin for every registered protocol.  Subclasses *without* their
own ``definition`` (the verifier's deliberately-broken mutants) inherit
the parent's compiled tables and may override individual handlers.

This module lives inside the protocols package (rather than in
:mod:`repro.protodsl`) so the import graph stays acyclic from every
entry point: ``repro.protodsl`` never imports the protocols package,
and the protocol modules import this sibling.  The public name is
re-exported as :mod:`repro.protodsl.runtime`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import (
    CoherenceProtocol,
    _line_data,
    merged_payload,
)
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.types import BusOp
from repro.protodsl.check import check_guards
from repro.protodsl.defs import (
    AcquireThenWrite,
    AsWriteMiss,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadThenWrite,
    SilentWrite,
    TakeData,
    WriteAllocate,
    WriteThrough,
)


class ProtocolDefinitionError(ConfigurationError):
    """A protocol definition failed the static guard checker.

    Raised at class-creation (import) time, so a broken definition can
    never reach a simulator.  ``findings`` carries the individual
    :class:`~repro.protodsl.check.GuardFinding` counterexamples.
    """

    def __init__(self, name, findings):
        lines = "\n".join(f"  {finding}" for finding in findings)
        super().__init__(
            f"protocol definition {name!r} failed the guard checker "
            f"({len(findings)} finding(s)):\n{lines}")
        self.findings = tuple(findings)


class DSLProtocol(CoherenceProtocol):  # lint: allow(V105)
    """Interprets a :class:`~repro.protodsl.defs.ProtocolDef`.

    ``read_hit`` is deliberately *not* overridden: the cache's read
    fast path keys on the base-class implementation being in force.
    """

    #: Set by subclasses; compiled by ``__init_subclass__``.
    definition: Optional[ProtocolDef] = None
    facts = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        defn = cls.__dict__.get("definition")
        if defn is None:
            # A behavioural subclass (e.g. a verifier mutant): it
            # inherits the parent's compiled tables untouched.
            return
        findings = check_guards(defn)
        if findings:
            raise ProtocolDefinitionError(defn.name, findings)
        cls.name = defn.name
        cls.silent_write_states = frozenset(defn.silent_write_states)
        cls.silent_write_result = defn.silent_write_result
        cls.facts = defn.facts()
        cls._write_hit_index = {
            state: rule.action
            for rule in defn.write_hit
            for state in rule.states
        }
        cls._snoop_index = {
            (rule.op, state): rule
            for rule in defn.snoop
            for state in rule.states
        }

    # -- processor side -------------------------------------------------

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        rule = self.definition.read_miss
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=rule.shared_state,
            exclusive_state=rule.exclusive_state)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        action = self._write_hit_index.get(line.state)
        if action is None:
            raise ProtocolError(
                f"{self.name} write hit in unhandled state "
                f"{line.state.value}")

        if isinstance(action, SilentWrite):
            line.data[offset] = value
            if action.next_state is not None:
                line.state = action.next_state
            return

        if isinstance(action, WriteThrough):
            # The copy updates at grant time (merged_payload): eager
            # update would let this cache answer an intervening bus
            # read with data the other sharers do not yet have.
            cache.stats.incr(action.counter)
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            txn = yield from cache.bus_op(
                BusOp.MWRITE, line_address,
                data=merged_payload(line, offset, value),
                update_memory=action.update_memory)
            if line.valid and line.tag == tag:
                line.state = (action.shared_state if txn.shared_response
                              else action.exclusive_state)
            # else: a concurrent writer serialised first and
            # invalidated us; our write still reached the bus, so the
            # line stays dropped.
            return

        if isinstance(action, AcquireThenWrite):
            cache.stats.incr(action.counter)
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            yield from cache.bus_op(BusOp.MINVALIDATE, line_address)
            if not (line.valid and line.tag == tag):
                # A competing writer's invalidation serialised first;
                # our copy is gone, so this is now a write miss.
                yield from self.write_miss(cache, line, index, tag,
                                           offset, value, partial=False)
                return
            line.data[offset] = value
            line.state = action.next_state
            return

        # AsWriteMiss: the clean hit cannot trust its copy is current
        # once ownership moves — re-fetch exactly as a miss would.
        tag = line.tag
        yield from self.write_miss(cache, line, index, tag, offset, value,
                                   partial=False)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        aligned_longword = (not partial
                            and cache.geometry.words_per_line == 1)
        rule = self.definition.write_miss_rule(aligned_longword)
        if rule is None:
            raise ProtocolError(
                f"{self.name} write miss has no rule for "
                f"aligned_longword={aligned_longword}")
        action = rule.action

        if isinstance(action, ReadThenWrite):
            yield from self.read_miss(cache, line, index, tag, offset)
            yield from self.write_hit(cache, line, index, offset, value)
            return

        if isinstance(action, ReadForOwnership):
            yield from self.victimize(cache, line, index)
            line_address = cache.geometry.rebuild_address(index, tag)
            txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
            data = list(_line_data(txn, cache.geometry.words_per_line))
            data[offset] = value
            line.fill(tag, tuple(data), action.fill_state)
            return

        if isinstance(action, WriteAllocate):
            yield from self.victimize(cache, line, index)
            cache.stats.incr(action.counter)
            line_address = cache.geometry.rebuild_address(index, tag)
            txn = yield from cache.bus_op(BusOp.MWRITE, line_address,
                                          data=(value,))
            state = (action.shared_state if txn.shared_response
                     else action.exclusive_state)
            line.fill(tag, (value,), state)
            return

        # WriteNoAllocate: send the write to memory, leave the cache
        # untouched (any resident line at this index belongs to some
        # other address and stays).
        cache.stats.incr(action.counter)
        line_address = cache.geometry.rebuild_address(index, tag)
        if cache.geometry.words_per_line == 1:
            yield from cache.bus_op(BusOp.MWRITE, line_address,
                                    data=(value,))
            return
        # Multi-word lines need the rest of the line's current contents.
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        yield from cache.bus_op(BusOp.MWRITE, line_address,
                                data=tuple(data))

    # -- bus side ---------------------------------------------------------

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        rule = self._snoop_index.get((op, line.state))
        if rule is None:
            raise ProtocolError(
                f"{self.name} cache snooped foreign bus op {op} "
                f"at {line_address:#x}")
        # Snapshot before the effect runs: an invalidating supplier
        # (Synapse's surrender) still drives its pre-drop contents.
        supplied = line.snapshot() if rule.supply else None
        if rule.counter is not None:
            cache.stats.incr(rule.counter)
        effect = rule.effect
        if isinstance(effect, Goto):
            line.state = effect.state
        elif isinstance(effect, TakeData):
            line.data[:] = data
            line.state = effect.state
        elif isinstance(effect, Invalidate):
            line.invalidate()
        return SnoopResult(shared=rule.shared, data=supplied,
                           write_back=rule.write_back)

    # -- DMA side ---------------------------------------------------------

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        facts = self.facts
        return (facts.dma_shared_state if shared_response
                else facts.dma_exclusive_state)


#: Handler names a "pure DSL" protocol must inherit untouched for the
#: definition alone to predict its behaviour.
_HANDLER_NAMES = ("read_hit", "read_miss", "write_hit", "write_miss",
                  "snoop", "resident_after_dma_write", "victimize",
                  "fill_from_read")


def definition_of(protocol) -> ProtocolDef:
    """The definition governing ``protocol`` — or raise.

    Raises :class:`~repro.common.errors.ConfigurationError` when the
    protocol is not DSL-derived, or when some class below
    :class:`DSLProtocol` overrides a handler (the definition would
    then mispredict the runtime behaviour — the verifier's mutants do
    exactly this, and the pure-oracle path must refuse them).
    """
    cls = protocol if isinstance(protocol, type) else type(protocol)
    if not issubclass(cls, DSLProtocol):
        raise ConfigurationError(
            f"{cls.__name__} is not DSL-derived; no definition exists")
    defn = cls.definition
    if defn is None:
        raise ConfigurationError(
            f"{cls.__name__} declares no protocol definition")
    for klass in cls.__mro__:
        if klass is DSLProtocol:
            break
        for handler in _HANDLER_NAMES:
            if handler in klass.__dict__:
                raise ConfigurationError(
                    f"{cls.__name__} overrides {handler}() below the "
                    f"DSL interpreter; its definition does not govern "
                    f"its behaviour")
    return defn
