"""Goodman's write-once: the original snoopy protocol.

From the Archibald & Baer survey the paper cites.  The first write to a
line is written through (announcing the write so other caches can
invalidate); subsequent writes to the now-``RESERVED`` line stay local,
making the line ``DIRTY``.

State mapping: Invalid = ``INVALID``, Valid = ``VALID``,
Reserved = ``RESERVED``, Dirty = ``DIRTY``.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    Stay,
    WriteHitRule,
    WriteMissRule,
    WriteThrough,
)

WRITE_ONCE = ProtocolDef(
    name="write-once",
    states=(LineState.VALID, LineState.RESERVED, LineState.DIRTY),
    peer_costate=LineState.VALID,
    read_miss=ReadMissRule(shared_state=LineState.VALID,
                           exclusive_state=LineState.VALID),
    write_hit=(
        # RESERVED or DIRTY: local, write-back from here on.
        WriteHitRule(frozenset({LineState.RESERVED, LineState.DIRTY}),
                     SilentWrite(LineState.DIRTY)),
        # The once: write through, invalidating other copies; the
        # MShared response is not consulted (RESERVED either way).
        WriteHitRule(frozenset({LineState.VALID}),
                     WriteThrough(counter="write_throughs",
                                  shared_state=LineState.RESERVED,
                                  exclusive_state=LineState.RESERVED)),
    ),
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.DIRTY)),),
    snoop=(
        # Supply; bus snarfs into memory; we demote to VALID.
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.VALID), supply=True, write_back=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.RESERVED}),
                  Goto(LineState.VALID)),
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}), Stay()),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.DIRTY}),
                  Invalidate(), supply=True, write_back=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX,
                  frozenset({LineState.VALID, LineState.RESERVED}),
                  Invalidate(), counter="invalidations_received"),
        # A write-once write-through from another cache (or DMA):
        # memory is updated and our copy is stale — invalidate.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.RESERVED,
                             LineState.DIRTY}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.VALID, LineState.RESERVED,
                             LineState.DIRTY}),
                  Invalidate(), counter="invalidations_received"),
    ),
    silent_write_states=frozenset({LineState.RESERVED, LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    # Write-once has no shared-clean state: every non-VALID state
    # writes silently, so a leaked SHARED tag would suppress the
    # announcing write-through and strand other copies stale.
    dma_shared_state=LineState.VALID,
    dma_exclusive_state=LineState.VALID,
)


class WriteOnceProtocol(DSLProtocol):
    """First write goes through; later writes are local write-back."""

    definition = WRITE_ONCE
