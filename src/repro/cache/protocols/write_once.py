"""Goodman's write-once: the original snoopy protocol.

From the Archibald & Baer survey the paper cites.  The first write to a
line is written through (announcing the write so other caches can
invalidate); subsequent writes to the now-``RESERVED`` line stay local,
making the line ``DIRTY``.

State mapping: Invalid = ``INVALID``, Valid = ``VALID``,
Reserved = ``RESERVED``, Dirty = ``DIRTY``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import (
    CoherenceProtocol,
    _line_data,
    merged_payload,
)
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class WriteOnceProtocol(CoherenceProtocol):
    """First write goes through; later writes are local write-back."""

    name = "write-once"
    silent_write_states = frozenset({LineState.RESERVED, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is not LineState.VALID:
            # RESERVED or DIRTY: local, write-back from here on.
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # The once: write through, invalidating other copies.  The
        # copy updates at grant time (merged_payload).
        cache.stats.incr("write_throughs")
        tag = line.tag
        line_address = cache.geometry.rebuild_address(index, tag)
        yield from cache.bus_op(BusOp.MWRITE, line_address,
                                data=merged_payload(line, offset, value))
        if line.valid and line.tag == tag:
            line.state = LineState.RESERVED
        # else: a concurrent write-once serialised first and
        # invalidated us; memory has our value, line stays dropped.

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Write-once has no shared-clean state: every non-VALID state
        # writes silently, so a leaked SHARED tag would suppress the
        # announcing write-through and strand other copies stale.
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Supply; bus snarfs into memory; we demote to VALID.
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                line.state = LineState.VALID
                return result
            if line.state is LineState.RESERVED:
                line.state = LineState.VALID
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state is LineState.DIRTY else None,
                write_back=line.state is LineState.DIRTY)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op in (BusOp.MWRITE, BusOp.MINVALIDATE):
            # A write-once write-through from another cache (or DMA):
            # memory is updated and our copy is stale — invalidate.
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(f"write-once cache snooped unknown bus op {op}")
