"""Synapse N+1: the ownership-bit baseline without cache-to-cache supply.

From the Archibald & Baer survey the paper cites — the seventh and
final protocol of the survey's comparison set.  The Synapse N+1 fault-
tolerant multiprocessor tagged each main-memory line with a *bus
ownership* bit; a cache must acquire ownership (via a read-exclusive)
before writing, and a dirty holder answering a bus read surrenders the
line entirely: it writes the data back and invalidates, rather than
demoting to a shared state the way Illinois/MESI does.  There is no
shared-clean/exclusive-clean distinction — a single Valid state covers
every clean copy — so a write hit on a clean line cannot tell whether
other copies exist and must always re-fetch with a read-exclusive.

State mapping: Invalid = ``INVALID``, Valid = ``VALID``,
Dirty = ``DIRTY``.

The survey's verdict (which the ablations reproduce): Synapse behaves
like Berkeley with extra misses, because the dirty holder's total
surrender forces it to reload the line if it is referenced again.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import CoherenceProtocol, _line_data
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class SynapseProtocol(CoherenceProtocol):
    """Ownership-before-write; dirty holders surrender on bus reads."""

    name = "synapse"
    silent_write_states = frozenset({LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        # One undifferentiated Valid state, shared or not: Synapse has
        # no MShared-style wire, so the response cannot be consulted.
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is LineState.DIRTY:
            # Already the owner: pure write-back, no bus traffic.
            line.data[offset] = value
            return
        # Valid (clean) hit: ownership must be acquired first, and the
        # cached copy cannot be trusted to be unique — re-fetch with a
        # read-exclusive exactly as a write miss would.
        tag = line.tag
        yield from self.write_miss(cache, line, index, tag, offset, value,
                                   partial=False)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        # Read-for-ownership: fetches the line and invalidates all copies.
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.DIRTY)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Synapse's single clean state already means "possibly shared".
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                # Total surrender: supply the data, let the bus snarf it
                # into memory, and drop the line (no shared-dirty state).
                result = SnoopResult(shared=True, data=line.snapshot(),
                                     write_back=True)
                cache.stats.incr("surrenders")
                line.invalidate()
                return result
            # Clean holders keep their copies; memory supplies the data.
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(
                shared=True,
                data=line.snapshot() if line.state is LineState.DIRTY
                else None,
                write_back=line.state is LineState.DIRTY)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op in (BusOp.MWRITE, BusOp.MINVALIDATE):
            # Another cache's victim write-back or a DMA write: memory is
            # updated by the transaction and the ownership bit moves with
            # it, so our copy is stale — invalidate.
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(f"Synapse cache snooped unknown bus op {op}")
