"""Synapse N+1: the ownership-bit baseline without cache-to-cache supply.

From the Archibald & Baer survey the paper cites — the seventh and
final protocol of the survey's comparison set.  The Synapse N+1 fault-
tolerant multiprocessor tagged each main-memory line with a *bus
ownership* bit; a cache must acquire ownership (via a read-exclusive)
before writing, and a dirty holder answering a bus read surrenders the
line entirely: it writes the data back and invalidates, rather than
demoting to a shared state the way Illinois/MESI does.  There is no
shared-clean/exclusive-clean distinction — a single Valid state covers
every clean copy — so a write hit on a clean line cannot tell whether
other copies exist and must always re-fetch with a read-exclusive
(the ``AsWriteMiss`` rule).

State mapping: Invalid = ``INVALID``, Valid = ``VALID``,
Dirty = ``DIRTY``.

The survey's verdict (which the ablations reproduce): Synapse behaves
like Berkeley with extra misses, because the dirty holder's total
surrender forces it to reload the line if it is referenced again.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    AsWriteMiss,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    Stay,
    WriteHitRule,
    WriteMissRule,
)

SYNAPSE = ProtocolDef(
    name="synapse",
    states=(LineState.VALID, LineState.DIRTY),
    peer_costate=LineState.VALID,
    # One undifferentiated Valid state, shared or not: Synapse has no
    # MShared-style wire, so the response cannot be consulted.
    read_miss=ReadMissRule(shared_state=LineState.VALID,
                           exclusive_state=LineState.VALID),
    write_hit=(
        # Already the owner: pure write-back, no bus traffic.
        WriteHitRule(frozenset({LineState.DIRTY}), SilentWrite()),
        # Valid (clean) hit: ownership must be acquired first, and the
        # cached copy cannot be trusted to be unique — re-fetch with a
        # read-exclusive exactly as a write miss would.
        WriteHitRule(frozenset({LineState.VALID}), AsWriteMiss()),
    ),
    # Read-for-ownership: fetches the line and invalidates all copies.
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.DIRTY)),),
    snoop=(
        # Total surrender: supply the data, let the bus snarf it into
        # memory, and drop the line (no shared-dirty state).
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Invalidate(), supply=True, write_back=True,
                  counter="surrenders"),
        # Clean holders keep their copies; memory supplies the data.
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}), Stay()),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.DIRTY}),
                  Invalidate(), supply=True, write_back=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.VALID}),
                  Invalidate(), counter="invalidations_received"),
        # Another cache's victim write-back or a DMA write: memory is
        # updated by the transaction and the ownership bit moves with
        # it, so our copy is stale — invalidate.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.DIRTY}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.VALID, LineState.DIRTY}),
                  Invalidate(), counter="invalidations_received"),
    ),
    silent_write_states=frozenset({LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    # Synapse's single clean state already means "possibly shared".
    dma_shared_state=LineState.VALID,
    dma_exclusive_state=LineState.VALID,
)


class SynapseProtocol(DSLProtocol):
    """Ownership-before-write; dirty holders surrender on bus reads."""

    definition = SYNAPSE
