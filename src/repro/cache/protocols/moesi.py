"""MOESI: MESI plus an owned-shared state (AMD/SPARC style).

The first protocol added purely as a DSL definition — no imperative
code, no ``SnoopyCache`` changes.  MOESI extends MESI with an *Owned*
state: a modified holder answering a bus read keeps the dirty data and
becomes the line's owner instead of pushing it back to memory (the
Berkeley move), so read sharing of a written line costs one bus
transfer instead of a transfer plus a memory update.  The owner
supplies subsequent readers and performs the eventual victim
write-back.

State mapping: M = ``DIRTY``, O = ``SHARED_DIRTY``, E = ``VALID``,
S = ``SHARED``, I = ``INVALID``.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    AcquireThenWrite,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteHitRule,
    WriteMissRule,
)

MOESI = ProtocolDef(
    name="moesi",
    states=(LineState.VALID, LineState.DIRTY, LineState.SHARED,
            LineState.SHARED_DIRTY),
    peer_costate=LineState.SHARED,
    read_miss=ReadMissRule(shared_state=LineState.SHARED,
                           exclusive_state=LineState.VALID),
    write_hit=(
        WriteHitRule(frozenset({LineState.VALID, LineState.DIRTY}),
                     SilentWrite(LineState.DIRTY)),
        # Shared (owner or not): invalidate the other copies, then
        # write locally — the line becomes modified-exclusive.
        WriteHitRule(frozenset({LineState.SHARED, LineState.SHARED_DIRTY}),
                     AcquireThenWrite(next_state=LineState.DIRTY,
                                      counter="invalidations_sent")),
    ),
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.DIRTY)),),
    snoop=(
        # The MOESI move: supply without a memory update and keep the
        # dirty data as the owner.
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.SHARED_DIRTY), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.SHARED_DIRTY}),
                  Stay(), supply=True),
        # Clean holders supply too (Illinois-style; equals memory).
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}),
                  Goto(LineState.SHARED), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.SHARED}),
                  Stay(), supply=True),
        # Read-for-ownership: the requester fills dirty, so a dirty
        # holder hands over without a memory update.
        SnoopRule(BusOp.MREAD_EX,
                  frozenset({LineState.DIRTY, LineState.SHARED_DIRTY}),
                  Invalidate(), supply=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX,
                  frozenset({LineState.VALID, LineState.SHARED}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED, LineState.SHARED_DIRTY}),
                  Invalidate(), counter="invalidations_received"),
        # A victim write-back or DMA write updates memory; everyone
        # left holding the line is a clean sharer.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED, LineState.SHARED_DIRTY}),
                  TakeData(LineState.SHARED)),
    ),
    silent_write_states=frozenset({LineState.VALID, LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    dma_shared_state=LineState.SHARED,
    dma_exclusive_state=LineState.VALID,
)


class MoesiProtocol(DSLProtocol):
    """MESI plus owner-held dirty sharing (no memory update on supply)."""

    definition = MOESI
