"""Coherence protocols.

:class:`FireflyProtocol` is the paper's contribution.  The baselines
are the protocols the paper's §5.1 discusses as alternatives: simple
write-through with invalidation ("not practical for more than a few
processors"), ownership protocols (Berkeley), the Xerox Dragon ("uses a
similar scheme"), plus Illinois MESI and Goodman write-once from the
Archibald & Baer survey the paper cites.

All protocols are stateless singletons: per-line state lives in the
caches, and one protocol instance may serve every cache in a machine.
"""

from repro.cache.protocols.base import CoherenceProtocol
from repro.cache.protocols.berkeley import BerkeleyProtocol
from repro.cache.protocols.dragon import DragonProtocol
from repro.cache.protocols.firefly import FireflyProtocol
from repro.cache.protocols.mesi import MesiProtocol
from repro.cache.protocols.synapse import SynapseProtocol
from repro.cache.protocols.write_once import WriteOnceProtocol
from repro.cache.protocols.write_through import WriteThroughInvalidateProtocol

_REGISTRY = {
    cls().name: cls
    for cls in (
        FireflyProtocol,
        WriteThroughInvalidateProtocol,
        BerkeleyProtocol,
        DragonProtocol,
        MesiProtocol,
        SynapseProtocol,
        WriteOnceProtocol,
    )
}


def protocol_by_name(name: str) -> CoherenceProtocol:
    """Instantiate a protocol from its registry name.

    >>> protocol_by_name("firefly").name
    'firefly'
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown protocol {name!r}; known: {known}") from None


def available_protocols() -> tuple:
    """Names of every registered protocol."""
    return tuple(sorted(_REGISTRY))


__all__ = [
    "BerkeleyProtocol",
    "CoherenceProtocol",
    "DragonProtocol",
    "FireflyProtocol",
    "MesiProtocol",
    "SynapseProtocol",
    "WriteOnceProtocol",
    "WriteThroughInvalidateProtocol",
    "available_protocols",
    "protocol_by_name",
]
