"""Coherence protocols.

:class:`FireflyProtocol` is the paper's contribution.  The baselines
are the protocols the paper's §5.1 discusses as alternatives: simple
write-through with invalidation ("not practical for more than a few
processors"), ownership protocols (Berkeley), the Xerox Dragon ("uses a
similar scheme"), plus Illinois MESI and Goodman write-once from the
Archibald & Baer survey the paper cites.  MOESI and the BedRock-style
directory MSI extend the set — both are pure DSL definitions.

Every protocol is a declarative
:class:`~repro.protodsl.defs.ProtocolDef` compiled by
:class:`~repro.cache.protocols.dsl.DSLProtocol`; the hand-maintained
per-protocol fact tables (state vocabularies, peer co-states,
silent-write facts, DMA result states) are *generated* here from the
definitions — see :data:`PROTOCOL_DEFINITIONS` / :data:`PROTOCOL_FACTS`.

All protocols are stateless singletons: per-line state lives in the
caches, and one protocol instance may serve every cache in a machine.
"""

from repro.cache.protocols.base import CoherenceProtocol
from repro.cache.protocols.bedrock import BedrockProtocol
from repro.cache.protocols.berkeley import BerkeleyProtocol
from repro.cache.protocols.dragon import DragonProtocol
from repro.cache.protocols.dsl import (
    DSLProtocol,
    ProtocolDefinitionError,
    definition_of,
)
from repro.cache.protocols.firefly import FireflyProtocol
from repro.cache.protocols.mesi import MesiProtocol
from repro.cache.protocols.moesi import MoesiProtocol
from repro.cache.protocols.synapse import SynapseProtocol
from repro.cache.protocols.write_once import WriteOnceProtocol
from repro.cache.protocols.write_through import WriteThroughInvalidateProtocol

_REGISTRY = {
    cls.name: cls
    for cls in (
        FireflyProtocol,
        WriteThroughInvalidateProtocol,
        BerkeleyProtocol,
        DragonProtocol,
        MesiProtocol,
        SynapseProtocol,
        WriteOnceProtocol,
        MoesiProtocol,
        BedrockProtocol,
    )
}

#: name -> the declarative definition (the single source of truth).
PROTOCOL_DEFINITIONS = {
    name: cls.definition for name, cls in _REGISTRY.items()
}

#: name -> the generated facts table (states, peer co-state, silent-
#: write facts, DMA result states).  ``repro.cache.fsm`` derives its
#: state/co-state dictionaries from this; nothing transcribes these
#: facts by hand any more.
PROTOCOL_FACTS = {
    name: defn.facts() for name, defn in PROTOCOL_DEFINITIONS.items()
}


def protocol_by_name(name: str) -> CoherenceProtocol:
    """Instantiate a protocol from its registry name.

    >>> protocol_by_name("firefly").name
    'firefly'
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown protocol {name!r}; known: {known}") from None


def available_protocols() -> tuple:
    """Names of every registered protocol."""
    return tuple(sorted(_REGISTRY))


__all__ = [
    "BedrockProtocol",
    "BerkeleyProtocol",
    "CoherenceProtocol",
    "DSLProtocol",
    "DragonProtocol",
    "FireflyProtocol",
    "MesiProtocol",
    "MoesiProtocol",
    "PROTOCOL_DEFINITIONS",
    "PROTOCOL_FACTS",
    "ProtocolDefinitionError",
    "SynapseProtocol",
    "WriteOnceProtocol",
    "WriteThroughInvalidateProtocol",
    "available_protocols",
    "definition_of",
    "protocol_by_name",
]
