"""The Firefly coherence protocol: conditional write-through.

This is the paper's contribution (§5.1, Figure 3).  The key idea is
that a cache can *detect* whether a line is shared, via the ``MShared``
wire, and chooses its write policy per line:

- **Not shared** — pure write-back: reads and writes stay in the cache,
  memory is updated only when a dirty victim is replaced.
- **Shared** — write-through: a processor write sends an MWrite that
  updates the other caches *and* main memory; the writer's line is left
  clean.  No prearrangement (no ownership acquisition) is ever needed
  to write a shared location.

The Shared tag is refreshed by every bus operation the line is involved
in, so when a location ceases to be shared the *last* write-through
(which receives no ``MShared``) clears the tag and the cache reverts to
write-back — "only one extra write-through is done by the last cache
that contains the location".

Line states are the four Dirty x Shared tag combinations.  The fourth
combination, ``SHARED_DIRTY``, arises because memory is *inhibited*
when sharing caches supply an MRead: a dirty supplier keeps its Dirty
tag (it still owes memory a victim write) while learning the line is
shared.  Its Dirty tag clears if it later snoops an MWrite to the line,
because that transaction updates main memory.

The longword write-miss optimisation: with one-longword lines, an
aligned full-word write miss skips the read-for-allocate and simply
writes through, allocating the line clean with Shared set from the
response.  Sub-longword (``partial``) writes, and any geometry with
multi-word lines, take the read-miss-then-write-hit path instead —
the definition's two write-miss guards.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALIGNED_LONGWORD,
    GUARD_NOT_ALIGNED_LONGWORD,
    Goto,
    ProtocolDef,
    ReadMissRule,
    ReadThenWrite,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteAllocate,
    WriteHitRule,
    WriteMissRule,
    WriteThrough,
)

FIREFLY = ProtocolDef(
    name="firefly",
    states=(LineState.VALID, LineState.DIRTY, LineState.SHARED,
            LineState.SHARED_DIRTY),
    peer_costate=LineState.SHARED,
    # MRead; MShared picks clean-shared vs clean-exclusive.
    read_miss=ReadMissRule(shared_state=LineState.SHARED,
                           exclusive_state=LineState.VALID),
    write_hit=(
        # Private line: pure write-back, no bus traffic.
        WriteHitRule(frozenset({LineState.VALID, LineState.DIRTY}),
                     SilentWrite(LineState.DIRTY)),
        # Shared line: conditional write-through.  The response says
        # whether anyone still shares it; if not, revert to write-back.
        WriteHitRule(frozenset({LineState.SHARED, LineState.SHARED_DIRTY}),
                     WriteThrough(counter="write_throughs",
                                  shared_state=LineState.SHARED,
                                  exclusive_state=LineState.VALID)),
    ),
    write_miss=(
        # Aligned-longword optimisation: write through directly, leaving
        # the line clean; Shared comes from the MShared response.
        WriteMissRule(GUARD_ALIGNED_LONGWORD,
                      WriteAllocate(counter="write_throughs",
                                    shared_state=LineState.SHARED,
                                    exclusive_state=LineState.VALID)),
        # "A write miss is treated as a read miss followed immediately
        # by a write hit."
        WriteMissRule(GUARD_NOT_ALIGNED_LONGWORD, ReadThenWrite()),
    ),
    snoop=(
        # Assert MShared and supply the data (memory is inhibited).
        # Every holder drives identical values, clean or dirty.
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}),
                  Goto(LineState.SHARED), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.SHARED_DIRTY), supply=True),
        SnoopRule(BusOp.MREAD,
                  frozenset({LineState.SHARED, LineState.SHARED_DIRTY}),
                  Stay(), supply=True),
        # Another cache's write-through or victim write, or a DMA
        # write: take the data.  Main memory is updated by the same
        # transaction, so the copy is clean afterwards.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED, LineState.SHARED_DIRTY}),
                  TakeData(LineState.SHARED)),
    ),
    silent_write_states=frozenset({LineState.VALID, LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    dma_shared_state=LineState.SHARED,
    dma_exclusive_state=LineState.VALID,
)


class FireflyProtocol(DSLProtocol):
    """Conditional write-through with bus-update of shared lines."""

    definition = FIREFLY
