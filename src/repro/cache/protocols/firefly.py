"""The Firefly coherence protocol: conditional write-through.

This is the paper's contribution (§5.1, Figure 3).  The key idea is
that a cache can *detect* whether a line is shared, via the ``MShared``
wire, and chooses its write policy per line:

- **Not shared** — pure write-back: reads and writes stay in the cache,
  memory is updated only when a dirty victim is replaced.
- **Shared** — write-through: a processor write sends an MWrite that
  updates the other caches *and* main memory; the writer's line is left
  clean.  No prearrangement (no ownership acquisition) is ever needed
  to write a shared location.

The Shared tag is refreshed by every bus operation the line is involved
in, so when a location ceases to be shared the *last* write-through
(which receives no ``MShared``) clears the tag and the cache reverts to
write-back — "only one extra write-through is done by the last cache
that contains the location".

Line states are the four Dirty x Shared tag combinations.  The fourth
combination, ``SHARED_DIRTY``, arises because memory is *inhibited*
when sharing caches supply an MRead: a dirty supplier keeps its Dirty
tag (it still owes memory a victim write) while learning the line is
shared.  Its Dirty tag clears if it later snoops an MWrite to the line,
because that transaction updates main memory.

The longword write-miss optimisation: with one-longword lines, an
aligned full-word write miss skips the read-for-allocate and simply
writes through, allocating the line clean with Shared set from the
response.  Sub-longword (``partial``) writes, and any geometry with
multi-word lines, take the read-miss-then-write-hit path instead.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import CoherenceProtocol, merged_payload
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class FireflyProtocol(CoherenceProtocol):
    """Conditional write-through with bus-update of shared lines."""

    name = "firefly"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    # -- processor side ------------------------------------------------

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if not line.state.is_shared:
            # Private line: pure write-back, no bus traffic.
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # Shared line: conditional write-through.  The response tells us
        # whether anyone still shares it; if not, revert to write-back.
        #
        # The cached copy is NOT updated until the transaction is
        # granted (merged_payload applies the word then): updating it
        # eagerly would let this cache answer an intervening bus read
        # with a value the other sharers do not yet have — two sharers
        # driving different data, which the hardware forbids.  The CPU
        # is stalled for the write-through anyway, so it cannot observe
        # its own store's delay.
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, line.tag)
        txn = yield from cache.bus_op(
            BusOp.MWRITE, line_address,
            data=merged_payload(line, offset, value))
        line.state = (LineState.SHARED if txn.shared_response
                      else LineState.VALID)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        if partial or cache.geometry.words_per_line != 1:
            # "A write miss is treated as a read miss followed
            # immediately by a write hit."
            yield from self.read_miss(cache, line, index, tag, offset)
            yield from self.write_hit(cache, line, index, offset, value)
            return
        # Aligned-longword optimisation: write through directly, leaving
        # the line clean; Shared comes from the MShared response.
        yield from self.victimize(cache, line, index)
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MWRITE, line_address,
                                      data=(value,))
        state = LineState.SHARED if txn.shared_response else LineState.VALID
        line.fill(tag, (value,), state)

    # -- bus side ---------------------------------------------------------

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            # Assert MShared and supply the data (memory is inhibited).
            # Every holder drives identical values, clean or dirty.
            if line.state is LineState.VALID:
                line.state = LineState.SHARED
            elif line.state is LineState.DIRTY:
                line.state = LineState.SHARED_DIRTY
            return SnoopResult(shared=True, data=line.snapshot())
        if op is BusOp.MWRITE:
            # Another cache's write-through or victim write, or a DMA
            # write: take the data.  Main memory is updated by the same
            # transaction, so the copy is clean afterwards.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(
            f"Firefly cache snooped foreign bus op {op} at {line_address:#x}")
