"""Write-through with invalidation: the simplest snoopy protocol.

The paper's strawman (§5.1): "all writes are sent to the main memory
bus.  Whenever a cache observes a write directed to a line it contains,
it invalidates its copy.  This is not a practical protocol for more
than a few processors, because the substantial write traffic will
rapidly saturate the bus, and extra misses will be required to reload
invalidated lines."

Lines are only ever ``VALID`` (memory is always current, so nothing is
ever dirty and victims are dropped silently).  The policy here is
no-write-allocate, the common pairing for write-through caches.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import (
    CoherenceProtocol,
    _line_data,
    merged_payload,
)
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class WriteThroughInvalidateProtocol(CoherenceProtocol):
    """Every write goes to the bus; snooped writes invalidate copies."""

    name = "write-through"

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        # No victim write can ever be needed; just replace.
        line.invalidate()
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        # Copy updated at grant time (merged_payload): see the Firefly
        # protocol's write_hit for why eager update is unsound.
        cache.stats.incr("write_throughs")
        tag = line.tag
        line_address = cache.geometry.rebuild_address(index, tag)
        yield from cache.bus_op(BusOp.MWRITE, line_address,
                                data=merged_payload(line, offset, value))
        # A concurrent writer serialised ahead of us invalidated our
        # copy; our write still reached memory, so leave it dropped
        # (no-write-allocate).  Otherwise the line stays VALID.
        if line.valid and line.tag == tag:
            line.state = LineState.VALID

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        # No-write-allocate: send the write to memory, leave the cache
        # untouched (the resident line at this index belongs to some
        # other address and stays).
        cache.stats.incr("write_throughs")
        line_address = cache.geometry.rebuild_address(index, tag)
        if cache.geometry.words_per_line == 1:
            yield from cache.bus_op(BusOp.MWRITE, line_address, data=(value,))
            return
        # Multi-word lines need the rest of the line's current contents.
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        yield from cache.bus_op(BusOp.MWRITE, line_address, data=tuple(data))

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            # Memory is always current; let it supply the data.
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        raise ProtocolError(
            f"write-through cache snooped foreign bus op {op}")
