"""Write-through with invalidation: the simplest snoopy protocol.

The paper's strawman (§5.1): "all writes are sent to the main memory
bus.  Whenever a cache observes a write directed to a line it contains,
it invalidates its copy.  This is not a practical protocol for more
than a few processors, because the substantial write traffic will
rapidly saturate the bus, and extra misses will be required to reload
invalidated lines."

Lines are only ever ``VALID`` (memory is always current, so nothing is
ever dirty and victims are dropped silently).  The policy here is
no-write-allocate, the common pairing for write-through caches.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    Invalidate,
    ProtocolDef,
    ReadMissRule,
    SnoopRule,
    Stay,
    WriteHitRule,
    WriteMissRule,
    WriteNoAllocate,
    WriteThrough,
)

WRITE_THROUGH = ProtocolDef(
    name="write-through",
    states=(LineState.VALID,),
    peer_costate=LineState.VALID,
    read_miss=ReadMissRule(shared_state=LineState.VALID,
                           exclusive_state=LineState.VALID),
    # Every write hit goes to the bus; the line stays VALID (unless a
    # concurrent writer's invalidation serialised first).
    write_hit=(WriteHitRule(frozenset({LineState.VALID}),
                            WriteThrough(counter="write_throughs",
                                         shared_state=LineState.VALID,
                                         exclusive_state=LineState.VALID)),),
    # No-write-allocate: send the write to memory, leave the cache
    # untouched.
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, WriteNoAllocate(counter="write_throughs")),),
    snoop=(
        # Memory is always current; let it supply the data.
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}), Stay()),
        SnoopRule(BusOp.MWRITE, frozenset({LineState.VALID}),
                  Invalidate(), counter="invalidations_received"),
    ),
    silent_write_states=frozenset(),
    silent_write_result=None,
    dma_shared_state=LineState.VALID,
    dma_exclusive_state=LineState.VALID,
)


class WriteThroughInvalidateProtocol(DSLProtocol):
    """Every write goes to the bus; snooped writes invalidate copies."""

    definition = WRITE_THROUGH
