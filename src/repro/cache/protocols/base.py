"""The coherence-protocol interface.

A protocol answers two kinds of stimulus (Figure 3's P and M arcs):

- **Processor side** — ``read_hit`` / ``read_miss`` / ``write_hit`` /
  ``write_miss``.  The miss and write paths are generators so they can
  perform bus transactions with ``yield from cache.bus_op(...)``; a
  processor access therefore takes exactly as long as the bus work the
  protocol performs.
- **Bus side** — ``snoop``, called synchronously by the MBus for every
  transaction that probes a line this cache holds.  It applies the
  M-arc transition and returns the MShared / data-supply response.

Protocols are stateless; all per-line state lives in
:class:`~repro.cache.line.CacheLine`.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.common.types import BusOp


class CoherenceProtocol(abc.ABC):
    """Abstract snoopy coherence protocol."""

    #: Registry name; subclasses override.
    name = "abstract"

    #: States in which a write hit performs NO bus operation.  The
    #: coherence checker uses this: when a word has several holders,
    #: none may be in a silent-write state (a local write would leave
    #: the other copies stale).
    silent_write_states: frozenset = frozenset()

    #: State a silent write hit leaves the line in, or ``None`` to keep
    #: the current state.  The cache's non-generator write-hit fast
    #: path applies ``line.data[offset] = value`` plus this state; it
    #: must match what :meth:`write_hit` does for every state in
    #: :attr:`silent_write_states` (the fast-path equivalence test in
    #: tests/test_fastpath.py checks all registered protocols).
    silent_write_result: Optional[LineState] = LineState.DIRTY

    # -- processor side -------------------------------------------------

    def read_hit(self, cache, line: CacheLine, offset: int) -> int:
        """A read hit is silent in every implemented protocol."""
        return line.data[offset]

    @abc.abstractmethod
    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        """Generator: fill the line and return the requested word."""

    @abc.abstractmethod
    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        """Generator: apply a write that hit in the cache."""

    @abc.abstractmethod
    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        """Generator: apply a write that missed."""

    # -- bus side ----------------------------------------------------------

    @abc.abstractmethod
    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        """Apply the bus-induced transition; return the snoop response.

        Called only when ``line`` is valid and matches ``line_address``
        (the cache filters misses).
        """

    # -- DMA side ---------------------------------------------------------

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        """State of a clean resident copy after a DMA write through us.

        Main memory was updated by the same transaction, so the copy is
        clean; the default keeps the MShared response in the tag.
        Protocols without a shared-clean state override this — leaking
        ``SHARED`` into a protocol whose write policy does not know the
        state can silently disable its write announcement (the static
        verifier's write-once DMA counterexample).
        """
        return LineState.SHARED if shared_response else LineState.VALID

    # -- shared helpers ---------------------------------------------------------

    def victimize(self, cache, line: CacheLine, index: int):
        """Generator: evict the line currently at ``index``.

        Dirty victims are written back with a victim MWrite; clean
        victims are dropped silently.  Safe to call on invalid lines.
        """
        if line.valid and line.state.is_dirty:
            victim_address = cache.geometry.rebuild_address(index, line.tag)
            cache.stats.incr("victim_writes")
            # Payload evaluated at grant: a write queued ahead of this
            # victim may refresh the line via snooping, and the victim
            # write must not regress memory to the older contents.
            yield from cache.bus_op(BusOp.MWRITE, victim_address,
                                    data=line.snapshot, is_victim=True)
        line.invalidate()

    def fill_from_read(self, cache, line: CacheLine, index: int, tag: int,
                       shared_state: LineState, exclusive_state: LineState):
        """Generator: victimize, MRead the line, fill with the right state.

        Returns the filled line's data tuple.
        """
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        state = shared_state if txn.shared_response else exclusive_state
        line.fill(tag, data, state)
        return data


def _line_data(txn, words_per_line: int) -> Tuple[int, ...]:
    """Normalise a transaction's returned data to a words tuple."""
    if isinstance(txn.data, tuple):
        return txn.data
    if txn.data is None:
        return (0,) * words_per_line
    return (txn.data,)


def merged_payload(line: CacheLine, offset: int, value: int):
    """A grant-time MWrite payload: this write merged into the line.

    Re-applies ``value`` at ``offset`` when the bus grants, so a write
    that queued behind another write to the same line drives the
    freshest other-words contents (delivered to it by snooping) with
    its own word on top — the byte-enable merge real hardware does.
    """
    def payload():
        line.data[offset] = value
        return line.snapshot()
    return payload
