"""Berkeley Ownership: the invalidation-based ownership baseline.

The paper cites Berkeley Ownership (Katz et al., ISCA 1985) as the
canonical "acquire permission to write" protocol: a cache must own a
location before writing it, and acquiring ownership invalidates every
other copy.  Main memory is *not* updated on cache-to-cache transfers;
the owner is responsible for the eventual write-back.

States used here:

- ``VALID`` — unowned, possibly shared, read-only without a bus op.
- ``OWNED`` — owned exclusively (dirty).
- ``OWNED_SHARED`` — owned but other read-only copies exist (dirty).

The paper's critique of this family (§5.1): it "performs poorly when
actual sharing occurs, since the invalidated information must be
reloaded when the CPU next references it" — the ping-ponging the
protocol-comparison ablation (A2 in DESIGN.md) demonstrates.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import CoherenceProtocol, _line_data
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class BerkeleyProtocol(CoherenceProtocol):
    """Ownership with invalidation; no memory update on transfers."""

    name = "berkeley"
    silent_write_states = frozenset({LineState.OWNED})
    # A silent write hit (already OWNED) stays OWNED.
    silent_write_result = None

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        txn = yield from cache.bus_op(BusOp.MREAD, line_address)
        data = _line_data(txn, cache.geometry.words_per_line)
        # A plain read never confers ownership.
        line.fill(tag, data, LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if line.state is not LineState.OWNED:
            # VALID or OWNED_SHARED: must (re)claim exclusive ownership.
            cache.stats.incr("invalidations_sent")
            tag = line.tag
            line_address = cache.geometry.rebuild_address(index, tag)
            yield from cache.bus_op(BusOp.MINVALIDATE, line_address)
            if not (line.valid and line.tag == tag):
                # A competing owner's invalidation serialised first; our
                # copy is gone, so this is now a write miss.
                yield from self.write_miss(cache, line, index, tag, offset,
                                           value, partial=False)
                return
            line.state = LineState.OWNED
        line.data[offset] = value

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        yield from self.victimize(cache, line, index)
        line_address = cache.geometry.rebuild_address(index, tag)
        # Read-for-ownership: fetches the data and invalidates all copies.
        txn = yield from cache.bus_op(BusOp.MREAD_EX, line_address)
        data = list(_line_data(txn, cache.geometry.words_per_line))
        data[offset] = value
        line.fill(tag, tuple(data), LineState.OWNED)

    def resident_after_dma_write(self, shared_response: bool) -> LineState:
        # Berkeley's unowned clean state is VALID regardless of sharers.
        return LineState.VALID

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        owned = line.state in (LineState.OWNED, LineState.OWNED_SHARED)
        if op is BusOp.MREAD:
            if owned:
                # Supply the data; memory is NOT updated (no write_back),
                # and this cache remains the owner.
                line.state = LineState.OWNED_SHARED
                return SnoopResult(shared=True, data=line.snapshot())
            return SnoopResult(shared=True)
        if op is BusOp.MREAD_EX:
            result = SnoopResult(shared=True,
                                 data=line.snapshot() if owned else None)
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return result
        if op is BusOp.MINVALIDATE:
            cache.stats.incr("invalidations_received")
            line.invalidate()
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # Victim write-back from another cache, or a DMA write: the
            # bus transaction updates memory, so our copy refreshes and
            # any ownership we held is now redundant — demote to VALID.
            line.data[:] = data
            line.state = LineState.VALID
            return SnoopResult(shared=True)
        raise ProtocolError(f"Berkeley cache snooped unknown bus op {op}")
