"""Berkeley Ownership: the invalidation-based ownership baseline.

The paper cites Berkeley Ownership (Katz et al., ISCA 1985) as the
canonical "acquire permission to write" protocol: a cache must own a
location before writing it, and acquiring ownership invalidates every
other copy.  Main memory is *not* updated on cache-to-cache transfers;
the owner is responsible for the eventual write-back.

States used here:

- ``VALID`` — unowned, possibly shared, read-only without a bus op.
- ``OWNED`` — owned exclusively (dirty).
- ``OWNED_SHARED`` — owned but other read-only copies exist (dirty).

The paper's critique of this family (§5.1): it "performs poorly when
actual sharing occurs, since the invalidated information must be
reloaded when the CPU next references it" — the ping-ponging the
protocol-comparison ablation (A2 in DESIGN.md) demonstrates.
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    AcquireThenWrite,
    Goto,
    Invalidate,
    ProtocolDef,
    ReadForOwnership,
    ReadMissRule,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteHitRule,
    WriteMissRule,
)

BERKELEY = ProtocolDef(
    name="berkeley",
    states=(LineState.VALID, LineState.OWNED, LineState.OWNED_SHARED),
    peer_costate=LineState.VALID,
    # A plain read never confers ownership.
    read_miss=ReadMissRule(shared_state=LineState.VALID,
                           exclusive_state=LineState.VALID),
    write_hit=(
        # Already the exclusive owner: silent, stays OWNED.
        WriteHitRule(frozenset({LineState.OWNED}), SilentWrite()),
        # VALID or OWNED_SHARED: must (re)claim exclusive ownership.
        WriteHitRule(frozenset({LineState.VALID, LineState.OWNED_SHARED}),
                     AcquireThenWrite(next_state=LineState.OWNED,
                                      counter="invalidations_sent")),
    ),
    # Read-for-ownership: fetches the data and invalidates all copies.
    write_miss=(WriteMissRule(
        GUARD_ALWAYS, ReadForOwnership(fill_state=LineState.OWNED)),),
    snoop=(
        # Owners supply the data; memory is NOT updated (no
        # write_back), and this cache remains the owner.
        SnoopRule(BusOp.MREAD,
                  frozenset({LineState.OWNED, LineState.OWNED_SHARED}),
                  Goto(LineState.OWNED_SHARED), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}), Stay()),
        SnoopRule(BusOp.MREAD_EX,
                  frozenset({LineState.OWNED, LineState.OWNED_SHARED}),
                  Invalidate(), supply=True,
                  counter="invalidations_received"),
        SnoopRule(BusOp.MREAD_EX, frozenset({LineState.VALID}),
                  Invalidate(), counter="invalidations_received"),
        SnoopRule(BusOp.MINVALIDATE,
                  frozenset({LineState.VALID, LineState.OWNED,
                             LineState.OWNED_SHARED}),
                  Invalidate(), counter="invalidations_received"),
        # Victim write-back from another cache, or a DMA write: the
        # bus transaction updates memory, so our copy refreshes and
        # any ownership we held is now redundant — demote to VALID.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.OWNED,
                             LineState.OWNED_SHARED}),
                  TakeData(LineState.VALID)),
    ),
    silent_write_states=frozenset({LineState.OWNED}),
    # A silent write hit (already OWNED) stays OWNED.
    silent_write_result=None,
    # Berkeley's unowned clean state is VALID regardless of sharers.
    dma_shared_state=LineState.VALID,
    dma_exclusive_state=LineState.VALID,
)


class BerkeleyProtocol(DSLProtocol):
    """Ownership with invalidation; no memory update on transfers."""

    definition = BERKELEY
