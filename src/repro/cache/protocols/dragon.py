"""The Xerox Dragon protocol: the update-based sibling of the Firefly.

The paper (§5.1): "The Xerox Dragon uses a similar scheme."  Dragon,
like the Firefly, updates other caches on writes to shared lines
instead of invalidating them.  The difference is what happens to main
memory on a shared write: the Firefly writes through (the line ends up
clean everywhere), while the Dragon broadcasts the update to caches
*only* — memory stays stale, and the most recent writer remains the
line's owner (``SHARED_DIRTY``, Dragon's *Sm*), responsible for
supplying future readers and for the eventual victim write-back.

State mapping onto :class:`~repro.cache.line.LineState`:

======== ==================== =============================
Dragon   LineState            meaning
======== ==================== =============================
E        ``VALID``            clean exclusive
Sc       ``SHARED``           shared clean (non-owner)
Sm       ``SHARED_DIRTY``     shared modified (owner)
M        ``DIRTY``            modified exclusive
======== ==================== =============================
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bus.mbus import SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols.base import CoherenceProtocol, merged_payload
from repro.common.errors import ProtocolError
from repro.common.types import BusOp


class DragonProtocol(CoherenceProtocol):
    """Write-update with owner-held dirty data (memory not updated)."""

    name = "dragon"
    silent_write_states = frozenset({LineState.VALID, LineState.DIRTY})

    def read_miss(self, cache, line: CacheLine, index: int, tag: int,
                  offset: int):
        data = yield from self.fill_from_read(
            cache, line, index, tag,
            shared_state=LineState.SHARED,
            exclusive_state=LineState.VALID)
        return data[offset]

    def write_hit(self, cache, line: CacheLine, index: int, offset: int,
                  value: int):
        if not line.state.is_shared:
            line.data[offset] = value
            line.state = LineState.DIRTY
            return
        # Shared: broadcast the update to the other caches.  Memory is
        # NOT updated (update_memory=False); we become/remain the owner.
        # The copy updates at grant time (merged_payload) so this cache
        # never answers a read with a value other sharers lack.
        cache.stats.incr("bus_updates")
        line_address = cache.geometry.rebuild_address(index, line.tag)
        txn = yield from cache.bus_op(
            BusOp.MWRITE, line_address,
            data=merged_payload(line, offset, value),
            update_memory=False)
        line.state = (LineState.SHARED_DIRTY if txn.shared_response
                      else LineState.DIRTY)

    def write_miss(self, cache, line: CacheLine, index: int, tag: int,
                   offset: int, value: int, partial: bool):
        # Dragon has no write-miss shortcut: read the line (learning
        # whether it is shared), then apply the write-hit logic.
        yield from self.read_miss(cache, line, index, tag, offset)
        yield from self.write_hit(cache, line, index, offset, value)

    def snoop(self, cache, line: CacheLine, line_address: int, op: BusOp,
              data: Optional[Tuple[int, ...]]) -> SnoopResult:
        if op is BusOp.MREAD:
            if line.state is LineState.DIRTY:
                line.state = LineState.SHARED_DIRTY
                return SnoopResult(shared=True, data=line.snapshot())
            if line.state is LineState.SHARED_DIRTY:
                return SnoopResult(shared=True, data=line.snapshot())
            if line.state is LineState.VALID:
                line.state = LineState.SHARED
            return SnoopResult(shared=True)
        if op is BusOp.MWRITE:
            # An update broadcast from the new owner, a victim write, or
            # a DMA write.  Take the data; the writer (or memory) now
            # holds responsibility, so we are a clean sharer.
            line.data[:] = data
            line.state = LineState.SHARED
            return SnoopResult(shared=True)
        raise ProtocolError(f"Dragon cache snooped foreign bus op {op}")
