"""The Xerox Dragon protocol: the update-based sibling of the Firefly.

The paper (§5.1): "The Xerox Dragon uses a similar scheme."  Dragon,
like the Firefly, updates other caches on writes to shared lines
instead of invalidating them.  The difference is what happens to main
memory on a shared write: the Firefly writes through (the line ends up
clean everywhere), while the Dragon broadcasts the update to caches
*only* (``update_memory=False``) — memory stays stale, and the most
recent writer remains the line's owner (``SHARED_DIRTY``, Dragon's
*Sm*), responsible for supplying future readers and for the eventual
victim write-back.

State mapping onto :class:`~repro.cache.line.LineState`:

======== ==================== =============================
Dragon   LineState            meaning
======== ==================== =============================
E        ``VALID``            clean exclusive
Sc       ``SHARED``           shared clean (non-owner)
Sm       ``SHARED_DIRTY``     shared modified (owner)
M        ``DIRTY``            modified exclusive
======== ==================== =============================
"""

from __future__ import annotations

from repro.cache.line import LineState
from repro.cache.protocols.dsl import DSLProtocol
from repro.common.types import BusOp
from repro.protodsl.defs import (
    GUARD_ALWAYS,
    Goto,
    ProtocolDef,
    ReadMissRule,
    ReadThenWrite,
    SilentWrite,
    SnoopRule,
    Stay,
    TakeData,
    WriteHitRule,
    WriteMissRule,
    WriteThrough,
)

DRAGON = ProtocolDef(
    name="dragon",
    states=(LineState.VALID, LineState.DIRTY, LineState.SHARED,
            LineState.SHARED_DIRTY),
    peer_costate=LineState.SHARED,
    read_miss=ReadMissRule(shared_state=LineState.SHARED,
                           exclusive_state=LineState.VALID),
    write_hit=(
        WriteHitRule(frozenset({LineState.VALID, LineState.DIRTY}),
                     SilentWrite(LineState.DIRTY)),
        # Shared: broadcast the update to the other caches.  Memory is
        # NOT updated; we become/remain the owner.
        WriteHitRule(frozenset({LineState.SHARED, LineState.SHARED_DIRTY}),
                     WriteThrough(counter="bus_updates",
                                  shared_state=LineState.SHARED_DIRTY,
                                  exclusive_state=LineState.DIRTY,
                                  update_memory=False)),
    ),
    # Dragon has no write-miss shortcut: read the line (learning
    # whether it is shared), then apply the write-hit logic.
    write_miss=(WriteMissRule(GUARD_ALWAYS, ReadThenWrite()),),
    snoop=(
        SnoopRule(BusOp.MREAD, frozenset({LineState.DIRTY}),
                  Goto(LineState.SHARED_DIRTY), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.SHARED_DIRTY}),
                  Stay(), supply=True),
        SnoopRule(BusOp.MREAD, frozenset({LineState.VALID}),
                  Goto(LineState.SHARED)),
        SnoopRule(BusOp.MREAD, frozenset({LineState.SHARED}), Stay()),
        # An update broadcast from the new owner, a victim write, or a
        # DMA write.  Take the data; the writer (or memory) now holds
        # responsibility, so we are a clean sharer.
        SnoopRule(BusOp.MWRITE,
                  frozenset({LineState.VALID, LineState.DIRTY,
                             LineState.SHARED, LineState.SHARED_DIRTY}),
                  TakeData(LineState.SHARED)),
    ),
    silent_write_states=frozenset({LineState.VALID, LineState.DIRTY}),
    silent_write_result=LineState.DIRTY,
    dma_shared_state=LineState.SHARED,
    dma_exclusive_state=LineState.VALID,
)


class DragonProtocol(DSLProtocol):
    """Write-update with owner-held dirty data (memory not updated)."""

    definition = DRAGON
