"""Cache models: the direct-mapped snoopy cache and coherence protocols.

The Firefly cache (paper §5.1) is direct mapped with one-longword
lines — 4096 lines (16 KB) on MicroVAX boards, 16384 lines (64 KB) on
CVAX boards.  Its purpose is *not* to reduce access time but to shield
the MBus from most CPU references, so several processors can share a
modest memory system.

``repro.cache.protocols`` contains the Firefly protocol (the paper's
contribution) and five baselines discussed in its related-work: simple
write-through-invalidate, Berkeley Ownership, the Xerox Dragon, Illinois
MESI, and Goodman's write-once.
"""

from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.line import CacheLine, LineState
from repro.cache.protocols import (
    BerkeleyProtocol,
    CoherenceProtocol,
    DragonProtocol,
    FireflyProtocol,
    MesiProtocol,
    WriteOnceProtocol,
    WriteThroughInvalidateProtocol,
    protocol_by_name,
)

__all__ = [
    "BerkeleyProtocol",
    "CacheGeometry",
    "CacheLine",
    "CoherenceProtocol",
    "DragonProtocol",
    "FireflyProtocol",
    "LineState",
    "MesiProtocol",
    "SnoopyCache",
    "WriteOnceProtocol",
    "WriteThroughInvalidateProtocol",
    "protocol_by_name",
]
