"""The direct-mapped snoopy cache.

:class:`SnoopyCache` owns the *structure* — tag array, indexing, the
snoop port, DMA port, statistics, and tag-store contention tracking —
and delegates every coherence decision to a
:class:`~repro.cache.protocols.base.CoherenceProtocol`.

CPU-side entry points (``cpu_read`` / ``cpu_write``) are generators run
inside a kernel process: a hit returns without advancing time (the
CPU's tick already covers it), a miss advances time by exactly the bus
transactions the protocol performs.  The DMA entry points implement the
paper's rule that QBus DMA goes *through* the I/O processor's cache but
misses do not allocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bus.mbus import MBus, SnoopResult
from repro.cache.line import CacheLine, LineState
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.stats import Histogram, StatSet
from repro.common.types import AccessKind, BusOp, MemRef
from repro.telemetry.probe import NULL_PROBE


@dataclass(frozen=True)
class CacheGeometry:
    """Size and shape of a direct-mapped cache.

    The MicroVAX Firefly cache is ``CacheGeometry(4096, 1)`` (16 KB);
    the CVAX board uses ``CacheGeometry(16384, 1)`` (64 KB).  Larger
    ``words_per_line`` values exist for the line-size ablation (the
    paper's footnote 4 discusses why 4-byte lines were chosen).
    """

    lines: int
    words_per_line: int = 1

    def __post_init__(self) -> None:
        if self.lines <= 0 or (self.lines & (self.lines - 1)) != 0:
            raise ConfigurationError(
                f"line count must be a positive power of two, got {self.lines}")
        if self.words_per_line <= 0 or \
                (self.words_per_line & (self.words_per_line - 1)) != 0:
            raise ConfigurationError(
                f"words_per_line must be a positive power of two, "
                f"got {self.words_per_line}")

    @property
    def size_bytes(self) -> int:
        return self.lines * self.words_per_line * 4

    def split(self, word_address: int) -> Tuple[int, int, int]:
        """Return (index, tag, word offset) for a word address."""
        line_number = word_address // self.words_per_line
        return (line_number % self.lines, line_number // self.lines,
                word_address % self.words_per_line)

    def line_address(self, word_address: int) -> int:
        """First word address of the line containing ``word_address``."""
        return (word_address // self.words_per_line) * self.words_per_line

    def rebuild_address(self, index: int, tag: int) -> int:
        """Word address of the first word of the line (index, tag)."""
        return (tag * self.lines + index) * self.words_per_line

    MICROVAX = None  # populated below
    CVAX = None


CacheGeometry.MICROVAX = CacheGeometry(4096, 1)
CacheGeometry.CVAX = CacheGeometry(16384, 1)

#: Shared "no match" snoop response (immutable; see SnoopyCache.snoop).
_SNOOP_MISS = SnoopResult(shared=False)


class SnoopyCache:
    """One processor's cache, attached to the MBus as a snooper.

    Parameters
    ----------
    mbus:
        The shared memory bus.
    protocol:
        Coherence protocol instance (stateless; shared across caches is
        fine).
    cache_id:
        Snooper id; doubles as the default arbitration priority, so
        cache 0 (the I/O processor's) has the highest priority, like
        the hardware's fixed priority chain.
    geometry:
        Cache shape; must agree with the bus's ``words_per_line``.
    """

    __slots__ = ("mbus", "_sim", "protocol", "snooper_id", "priority",
                 "geometry", "lines", "stats", "miss_latency", "probe",
                 "_track", "tag_busy_until", "on_snooped_write",
                 "_wpl_shift", "_off_mask", "_idx_mask", "_tag_shift",
                 "_silent_states", "_silent_result", "_read_hit_is_base",
                 "_c_ifetch_hit", "_c_ifetch_miss", "_c_dread_hit",
                 "_c_dread_miss", "_c_dwrite_hit", "_c_dwrite_miss",
                 "_c_snoop_probes", "_c_snoop_hits")

    def __init__(self, mbus: MBus, protocol, cache_id: int,
                 geometry: CacheGeometry,
                 priority: Optional[int] = None) -> None:
        if geometry.words_per_line != mbus.words_per_line:
            raise ConfigurationError(
                f"cache line of {geometry.words_per_line} words does not "
                f"match bus line of {mbus.words_per_line} words")
        self.mbus = mbus
        self._sim = mbus.sim
        self.protocol = protocol
        self.snooper_id = cache_id
        self.priority = cache_id if priority is None else priority
        self.geometry = geometry
        self.lines = [CacheLine(geometry.words_per_line)
                      for _ in range(geometry.lines)]
        self.stats = StatSet(f"cache{cache_id}")
        #: Miss service time distribution (cycles from miss detection to
        #: the protocol's fill/write completing on the bus).
        self.miss_latency = Histogram(f"cache{cache_id}.miss_latency")
        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE
        self._track = f"cache{cache_id}"
        self.tag_busy_until = 0
        #: Optional hook invoked with the line address of every snooped
        #: bus write (or invalidating operation).  The CVAX CPU wires
        #: its instruction-only on-chip cache here so another
        #: processor's (or DMA's) code modification drops the stale
        #: on-chip copy.
        self.on_snooped_write = None
        # Geometry as shifts and masks (both dimensions are validated
        # powers of two), so the hit fast path splits an address with
        # two shifts and two ands instead of divmod.
        self._wpl_shift = geometry.words_per_line.bit_length() - 1
        self._off_mask = geometry.words_per_line - 1
        self._idx_mask = geometry.lines - 1
        self._tag_shift = geometry.lines.bit_length() - 1
        # Protocol facts the fast path needs per access, hoisted.  The
        # generated facts table (DSL-compiled protocols) is preferred;
        # hand-written protocol classes fall back to the class attrs.
        facts = getattr(protocol, "facts", None)
        if facts is not None:
            self._silent_states = facts.silent_write_states
            self._silent_result = facts.silent_write_result
        else:
            self._silent_states = protocol.silent_write_states
            self._silent_result = protocol.silent_write_result
        # Every shipped protocol inherits the base read_hit, which only
        # returns line.data[offset]; when that's the case the fast path
        # can skip the call outright (the CPU discards the value).
        from repro.cache.protocols.base import CoherenceProtocol
        self._read_hit_is_base = (
            type(protocol).read_hit is CoherenceProtocol.read_hit)
        # Hot counters pre-created (the MBus does the same) so the hit
        # path increments a bound Counter instead of formatting a key
        # and resolving it through the StatSet dict on every access.
        stats = self.stats
        self._c_ifetch_hit = stats.counter("ifetch.hit")
        self._c_ifetch_miss = stats.counter("ifetch.miss")
        self._c_dread_hit = stats.counter("dread.hit")
        self._c_dread_miss = stats.counter("dread.miss")
        self._c_dwrite_hit = stats.counter("dwrite.hit")
        self._c_dwrite_miss = stats.counter("dwrite.miss")
        self._c_snoop_probes = stats.counter("snoop.probes")
        self._c_snoop_hits = stats.counter("snoop.hits")
        mbus.attach_snooper(self)

    # -- lookup helpers --------------------------------------------------

    def lookup(self, word_address: int) -> Tuple[CacheLine, int, int, int]:
        """Return (line, index, tag, offset); the line may not match."""
        # Shift/mask address split (precomputed in __init__); same
        # result as geometry.split for the validated power-of-two shape.
        line_number = word_address >> self._wpl_shift
        index = line_number & self._idx_mask
        return (self.lines[index], index, line_number >> self._tag_shift,
                word_address & self._off_mask)

    def present(self, word_address: int) -> bool:
        """Whether the word's line is valid in this cache (no side effects)."""
        line, _, tag, _ = self.lookup(word_address)
        return line.valid and line.tag == tag

    def state_of(self, word_address: int) -> LineState:
        """Current state of the word's line (INVALID if absent)."""
        line, _, tag, _ = self.lookup(word_address)
        if line.valid and line.tag == tag:
            return line.state
        return LineState.INVALID

    def peek(self, word_address: int) -> Optional[int]:
        """Read a cached word without side effects (checker/tests)."""
        line, _, tag, offset = self.lookup(word_address)
        if line.valid and line.tag == tag:
            return line.data[offset]
        return None

    # -- CPU port ----------------------------------------------------------

    def cpu_read_fast(self, ref: MemRef) -> bool:
        """Service a read hit without suspending; True if fully handled.

        The non-generator twin of :meth:`cpu_read` for the
        overwhelmingly common case: a tag match under a protocol whose
        ``read_hit`` is the silent base implementation.  Takes zero
        simulated time, performs the same counter update as the
        generator path, and emits nothing (read hits never emit).  The
        CPU discards the value, so none is returned.  Returns False —
        with no side effects at all — when the generator path must run
        (a miss, or a protocol with a side-effecting ``read_hit``).
        """
        if not self._read_hit_is_base:
            return False
        line_number = ref.address >> self._wpl_shift
        line = self.lines[line_number & self._idx_mask]
        if (line.state is LineState.INVALID
                or line.tag != line_number >> self._tag_shift):
            return False
        if ref.kind is AccessKind.INSTRUCTION_READ:
            self._c_ifetch_hit.add()
        else:
            self._c_dread_hit.add()
        return True

    def cpu_write_fast(self, ref: MemRef, value: int) -> bool:
        """Service a silent write hit without suspending; True if handled.

        Handles the tag-match case where the protocol's
        :attr:`~repro.cache.protocols.base.CoherenceProtocol.silent_write_states`
        says the write needs no bus operation: stores the word, applies
        the protocol's declared
        :attr:`~repro.cache.protocols.base.CoherenceProtocol.silent_write_result`
        state, and (when telemetry is live) emits the same zero-elapsed
        ``Pwrite.hit`` transition event the generator path would.
        Returns False with no side effects for misses and loud hits.
        """
        line_number = ref.address >> self._wpl_shift
        line = self.lines[line_number & self._idx_mask]
        if (line.state is LineState.INVALID
                or line.tag != line_number >> self._tag_shift):
            return False
        before = line.state
        if before not in self._silent_states:
            return False
        self._c_dwrite_hit.add()
        line.data[ref.address & self._off_mask] = value
        result = self._silent_result
        if result is not None:
            line.state = result
        probe = self.probe
        if probe.active and line.state is not before:
            now = self.mbus.sim.now
            probe.complete(
                "cache.transition", self._track, now, 0,
                stimulus="Pwrite.hit", before=before.name,
                after=line.state.name,
                address=self.geometry.line_address(ref.address))
        return True

    def cpu_read(self, ref: MemRef):
        """Generator: service a CPU read, returning the word value."""
        line, index, tag, offset = self.lookup(ref.address)
        ifetch = ref.kind is AccessKind.INSTRUCTION_READ
        if line.state is not LineState.INVALID and line.tag == tag:
            (self._c_ifetch_hit if ifetch else self._c_dread_hit).add()
            value = self.protocol.read_hit(self, line, offset)
            return value
        (self._c_ifetch_miss if ifetch else self._c_dread_miss).add()
        start = self.mbus.sim.now
        value = yield from self.protocol.read_miss(self, line, index, tag, offset)
        elapsed = self.mbus.sim.now - start
        self.miss_latency.record(elapsed)
        if self.probe.active:
            # Figure 3 FSM event: a miss is the P-arc out of INVALID.
            self.probe.complete(
                "cache.transition", self._track, start, elapsed,
                stimulus="Pifetch.miss" if ifetch else "Pdread.miss",
                before=LineState.INVALID.name,
                after=line.state.name,
                address=self.geometry.line_address(ref.address))
        return value

    def cpu_write(self, ref: MemRef, value: int):
        """Generator: service a CPU write."""
        if ref.kind is not AccessKind.DATA_WRITE:
            raise SimulationError(f"cpu_write given non-write ref {ref}")
        line, index, tag, offset = self.lookup(ref.address)
        probe = self.probe
        if line.state is not LineState.INVALID and line.tag == tag:
            self._c_dwrite_hit.add()
            if not probe.active:
                yield from self.protocol.write_hit(self, line, index, offset,
                                                   value)
                return
            before = line.state
            start = self.mbus.sim.now
            yield from self.protocol.write_hit(self, line, index, offset,
                                               value)
            # Self-loops with no bus work (e.g. DIRTY write-back hits)
            # are the common case and carry no FSM information.
            if line.state is not before or self.mbus.sim.now != start:
                probe.complete(
                    "cache.transition", self._track, start,
                    self.mbus.sim.now - start, stimulus="Pwrite.hit",
                    before=before.name, after=line.state.name,
                    address=self.geometry.line_address(ref.address))
        else:
            self._c_dwrite_miss.add()
            start = self.mbus.sim.now
            yield from self.protocol.write_miss(
                self, line, index, tag, offset, value, ref.partial)
            elapsed = self.mbus.sim.now - start
            self.miss_latency.record(elapsed)
            if probe.active:
                probe.complete(
                    "cache.transition", self._track, start, elapsed,
                    stimulus="Pwrite.miss", before=LineState.INVALID.name,
                    after=line.state.name,
                    address=self.geometry.line_address(ref.address))

    # -- DMA port (the I/O processor's cache only, in practice) -------------

    def dma_read(self, word_address: int):
        """Generator: DMA read through this cache; misses do not allocate.

        DMA and the attached CPU share this cache, and a bus operation
        the DMA queued does NOT snoop its own cache (it is the
        initiator) — so a line the CPU filled or dirtied *while the DMA
        transaction waited for the bus* must be re-checked after the
        grant: at that serialisation point the cache's own copy is the
        freshest value.
        """
        line, _, tag, offset = self.lookup(word_address)
        if line.valid and line.tag == tag:
            self.stats.incr("dma.read_hit")
            return line.data[offset]
        self.stats.incr("dma.read_miss")
        line_addr = self.geometry.line_address(word_address)
        txn = yield from self.bus_op(BusOp.MREAD, line_addr)
        fresher = self.peek(word_address)
        if fresher is not None:
            return fresher
        data = self._txn_line_data(txn)
        return data[offset]

    def dma_write(self, word_address: int, value: int):
        """Generator: DMA write through this cache; misses do not allocate.

        The payload is built at the bus-grant instant (see
        :meth:`dma_read` for why): if the CPU filled the line while the
        write was queued, the write is merged into that copy — the own-
        cache equivalent of the snoop update the initiator exclusion
        skips — and driven to the bus from it.  The resident copy ends
        clean (memory is updated by the same transaction).
        """
        line_addr = self.geometry.line_address(word_address)
        _, _, _, offset = self.lookup(word_address)
        was_hit = self.present(word_address)
        self.stats.incr("dma.write_hit" if was_hit else "dma.write_miss")

        base: Optional[Tuple[int, ...]] = None
        if self.geometry.words_per_line > 1 and not was_hit:
            # Read-modify-write without allocation for multi-word lines.
            txn = yield from self.bus_op(BusOp.MREAD, line_addr)
            base = self._txn_line_data(txn)

        def payload():
            resident, _, tag_now, offset_now = self.lookup(word_address)
            if resident.valid and resident.tag == tag_now:
                resident.data[offset_now] = value
                return resident.snapshot()
            if self.geometry.words_per_line == 1:
                return (value,)
            merged = list(base if base is not None
                          else (0,) * self.geometry.words_per_line)
            merged[offset] = value
            return tuple(merged)

        txn = yield from self.bus_op(BusOp.MWRITE, line_addr, data=payload)
        # If the line is (still, or newly) resident, it now matches
        # memory exactly: mark it clean, letting the protocol choose
        # the state (not every vocabulary has a shared-clean state).
        resident, _, tag_now, _ = self.lookup(word_address)
        if resident.valid and resident.tag == tag_now:
            resident.state = self.protocol.resident_after_dma_write(
                txn.shared_response)

    # -- bus helpers ---------------------------------------------------------

    def bus_op(self, op: BusOp, line_address: int,
               data: Optional[Tuple[int, ...]] = None,
               is_victim: bool = False, update_memory: bool = True):
        """Generator: run one bus transaction as this cache."""
        txn = yield from self.mbus.transaction(
            self.priority, op, line_address, self.snooper_id,
            data=data, is_victim=is_victim, update_memory=update_memory)
        return txn

    def _txn_line_data(self, txn) -> Tuple[int, ...]:
        if txn.data is None:
            raise SimulationError("read transaction returned no data")
        if isinstance(txn.data, tuple):
            return txn.data
        return (txn.data,)

    # -- snoop port ------------------------------------------------------------

    def snoop(self, op: BusOp, line_address: int, data) -> SnoopResult:
        """Bus-side tag probe: delegate the transition to the protocol.

        Every probe occupies this cache's tag store for one cycle
        (semantically cycle 2 of the transaction), which is what delays
        concurrent CPU accesses — the paper's SP term.
        """
        self.tag_busy_until = self._sim.now + 2
        self._c_snoop_probes.add()
        if self.on_snooped_write is not None and (
                op.carries_write_data or op.invalidates):
            self.on_snooped_write(line_address)
        line_number = line_address >> self._wpl_shift
        line = self.lines[line_number & self._idx_mask]
        if (line.state is LineState.INVALID
                or line.tag != line_number >> self._tag_shift):
            # The overwhelmingly common outcome on a busy bus: the probe
            # misses this cache's tags.  A shared immutable result
            # avoids one allocation per (transaction x snooper).
            return _SNOOP_MISS
        self._c_snoop_hits.add()
        if not self.probe.active:
            return self.protocol.snoop(self, line, line_address, op, data)
        before = line.state
        result = self.protocol.snoop(self, line, line_address, op, data)
        after = (line.state
                 if line.state is not LineState.INVALID
                 and line.tag == line_number >> self._tag_shift
                 else LineState.INVALID)
        self.probe.instant(
            "cache.transition", self._track, stimulus=f"M{op.value}",
            before=before.name, after=after.name, address=line_address,
            shared=result.shared)
        return result

    def tag_contention_stall(self, now: int) -> bool:
        """Whether a CPU access at ``now`` collides with a snoop probe."""
        return now < self.tag_busy_until

    # -- maintenance --------------------------------------------------------------

    def flush_for_tests(self) -> None:
        """Invalidate every line without bus traffic (tests only)."""
        for line in self.lines:
            line.invalidate()

    def flush_lines(self):
        """Generator: write back every dirty line, then invalidate all.

        This is the graceful-offlining sweep a failing CPU board runs
        before detaching from the bus: dirty lines go to memory as
        victim writes (snooped by the survivors like any other
        write-back), clean lines are simply dropped.  Returns the
        number of write-backs performed.
        """
        written = 0
        for index, line in enumerate(self.lines):
            if not line.valid:
                continue
            if line.state.is_dirty:
                address = self.geometry.rebuild_address(index, line.tag)
                # Snapshot at the grant instant: a snooped update that
                # lands while this write-back waits for the bus must be
                # included, exactly as in dma_write.
                yield from self.bus_op(BusOp.MWRITE, address,
                                       data=line.snapshot, is_victim=True)
                written += 1
            line.invalidate()
        self.stats.incr("flush.writebacks", written)
        return written

    def valid_lines(self):
        """Yield (index, line) for every valid line (checker use)."""
        for index, line in enumerate(self.lines):
            if line.valid:
                yield index, line

    def dirty_fraction(self) -> float:
        """Fraction of valid lines whose state requires write-back (D)."""
        valid = dirty = 0
        for _, line in self.valid_lines():
            valid += 1
            if line.state.is_dirty:
                dirty += 1
        return dirty / valid if valid else 0.0

    def occupancy(self) -> float:
        """Fraction of lines that are valid."""
        return sum(1 for _ in self.valid_lines()) / self.geometry.lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SnoopyCache id={self.snooper_id} "
                f"{self.geometry.size_bytes // 1024}KB "
                f"protocol={self.protocol.name}>")
