"""Cache lines and the unified line-state vocabulary.

The Firefly names its states by two tag bits, Dirty and Shared
(paper Figure 3); the four valid combinations plus INVALID are:

========================= ======= ========
State                     Dirty   Shared
========================= ======= ========
``VALID``                 0       0
``DIRTY``                 1       0
``SHARED``                0       1
``SHARED_DIRTY``          1       1
========================= ======= ========

``SHARED_DIRTY`` arises because memory is *inhibited* when sharing
caches answer an MRead: the dirty supplier keeps its Dirty tag while
gaining Shared.

The baseline protocols reuse this vocabulary where it fits and add
their own distinctions via :class:`LineState`'s extra members:
``RESERVED`` (write-once's written-through-once state) and ``OWNED`` /
``OWNED_SHARED`` (Berkeley's ownership states).  Dragon's E/Sc/Sm/M map
onto VALID/SHARED/SHARED_DIRTY/DIRTY; MESI's E/S/M map onto
VALID/SHARED/DIRTY.  Keeping one enum lets the coherence checker and
the metrics layer reason about dirtiness and sharing uniformly.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple


class LineState(enum.Enum):
    """Unified cache-line states across all implemented protocols."""

    INVALID = "I"
    VALID = "V"              # clean, believed exclusive (Firefly V; MESI E)
    DIRTY = "D"              # modified, exclusive (Firefly D; MESI M; Dragon M)
    SHARED = "S"             # clean, shared (Firefly S; MESI S; Dragon Sc)
    SHARED_DIRTY = "SD"      # modified, shared (Firefly SD; Dragon Sm)
    RESERVED = "R"           # write-once: written through exactly once
    OWNED = "O"              # Berkeley: owned exclusively (dirty)
    OWNED_SHARED = "OS"      # Berkeley: owned but shared (dirty)

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def is_dirty(self) -> bool:
        """Whether victimising this line requires a write-back."""
        return self in _DIRTY_STATES

    @property
    def is_shared(self) -> bool:
        """Whether the holder believes another cache may hold the line."""
        return self in _SHARED_STATES

    @property
    def tag_bits(self) -> Tuple[int, int]:
        """(Dirty, Shared) tag-bit encoding, for the Figure 3 rendering."""
        return (1 if self.is_dirty else 0, 1 if self.is_shared else 0)


_DIRTY_STATES = frozenset({
    LineState.DIRTY, LineState.SHARED_DIRTY,
    LineState.OWNED, LineState.OWNED_SHARED,
})
_SHARED_STATES = frozenset({
    LineState.SHARED, LineState.SHARED_DIRTY, LineState.OWNED_SHARED,
})

FIREFLY_STATES = (
    LineState.VALID, LineState.DIRTY, LineState.SHARED, LineState.SHARED_DIRTY,
)
"""The four tag-bit combinations of Figure 3 (excluding INVALID)."""


class CacheLine:
    """One direct-mapped cache entry: tag, state and line data.

    ``data`` always holds ``words_per_line`` integers once the line is
    valid; an invalid line's contents are meaningless but kept allocated
    to avoid churn.
    """

    __slots__ = ("tag", "state", "data")

    def __init__(self, words_per_line: int) -> None:
        self.tag: Optional[int] = None
        self.state = LineState.INVALID
        self.data: List[int] = [0] * words_per_line

    @property
    def valid(self) -> bool:
        # Inlined is_valid: this property sits on every cache lookup.
        return self.state is not LineState.INVALID

    def fill(self, tag: int, data: Tuple[int, ...], state: LineState) -> None:
        """Load a line from the bus."""
        self.tag = tag
        self.state = state
        self.data[:] = data

    def invalidate(self) -> None:
        """Drop the line (state to INVALID; tag retained for debugging)."""
        self.state = LineState.INVALID

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy of the line data, for driving the bus."""
        return tuple(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.valid:
            return "<CacheLine invalid>"
        return f"<CacheLine tag={self.tag:#x} {self.state.value} {self.data}>"
