"""Fault plans: seeded, deterministic schedules of what breaks when.

A :class:`FaultPlan` is declarative — a list of :class:`FaultSpec`
entries saying "inject N faults of this kind inside this window, with
these parameters".  :meth:`FaultPlan.schedule` resolves it against a
horizon using a named :class:`~repro.common.rng.RandomStream`, yielding
an ordered tuple of :class:`ScheduledFault` — the *timeline*.  The
draw order is fixed (spec order, then count order), so one seed always
produces one timeline, and adding a new spec never perturbs the draws
of the specs before it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream


class FaultKind(enum.Enum):
    """The five modelled hardware failure modes."""

    BUS_CORRUPT = "bus-corrupt"      #: MBus transfer fails parity
    MEMORY_FLIP = "memory-flip"      #: DRAM bit flip(s) under SECDED
    SNOOP_DROP = "snoop-drop"        #: a cache misses one snoop probe
    CPU_FAIL = "cpu-fail"            #: a CPU board dies
    QBUS_TIMEOUT = "qbus-timeout"    #: a device misses its DMA slot


@dataclass(frozen=True)
class FaultSpec:
    """One declarative entry of a fault plan.

    ``window`` is a fraction pair of the campaign horizon — (0.2, 0.8)
    means "somewhere in the middle 60%".  ``params`` tunes the kind:

    - BUS_CORRUPT: ``burst`` — consecutive corrupted bus tenures.
    - MEMORY_FLIP: ``bits`` — flipped bits (1 correctable, 2+ not).
    - SNOOP_DROP: ``drops`` — consecutive snoop probes swallowed.
    - CPU_FAIL: ``cpu`` — board to kill (-1 = random survivor != 0).
    - QBUS_TIMEOUT: ``timeouts`` — consecutive missed DMA slots.
    """

    kind: FaultKind
    count: int = 1
    window: Tuple[float, float] = (0.1, 0.9)
    params: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"fault count must be >= 1, got {self.count}")
        lo, hi = self.window
        if not (0.0 <= lo <= hi <= 1.0):
            raise ConfigurationError(
                f"fault window must satisfy 0 <= lo <= hi <= 1, "
                f"got ({lo}, {hi})")

    def param(self, key: str, default: int) -> int:
        for name, value in self.params:
            if name == key:
                return value
        return default


def spec(kind: FaultKind, count: int = 1,
         window: Tuple[float, float] = (0.1, 0.9),
         **params: int) -> FaultSpec:
    """Convenience constructor: ``spec(FaultKind.MEMORY_FLIP, bits=2)``."""
    return FaultSpec(kind, count, window,
                     tuple(sorted(params.items())))


@dataclass(frozen=True)
class ScheduledFault:
    """One concrete fault on the resolved timeline."""

    fault_id: str           #: "F1", "F2", ... in firing order
    kind: FaultKind
    time: int               #: absolute simulation cycle
    spec: FaultSpec = field(compare=False)

    def describe(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.spec.params)
        tail = f"  {extras}" if extras else ""
        return f"{self.fault_id} {self.kind.value:<12} t={self.time}{tail}"


class FaultPlan:
    """An ordered set of fault specs, resolvable against a horizon."""

    def __init__(self, specs: Iterable[FaultSpec]) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        if not self.specs:
            raise ConfigurationError("a fault plan needs at least one spec")

    def schedule(self, rng: RandomStream, start: int,
                 horizon: int) -> Tuple[ScheduledFault, ...]:
        """Resolve the plan into a concrete timeline.

        Faults land in ``[start + lo*horizon, start + hi*horizon]``.
        The result is sorted by time (ties broken by draw order) and
        ids are assigned in firing order, so the timeline reads
        chronologically and is bit-identical for identical seeds.
        """
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        drawn = []
        for order, entry in enumerate(self.specs):
            lo = start + int(entry.window[0] * horizon)
            hi = start + int(entry.window[1] * horizon)
            for _ in range(entry.count):
                time = rng.randint(lo, max(lo, hi))
                drawn.append((time, order, entry))
        drawn.sort(key=lambda item: (item[0], item[1]))
        return tuple(
            ScheduledFault(f"F{i + 1}", entry.kind, time, entry)
            for i, (time, _, entry) in enumerate(drawn))

    def counts(self) -> Dict[str, int]:
        """Faults per kind (report header)."""
        totals: Dict[str, int] = {}
        for entry in self.specs:
            key = entry.kind.value
            totals[key] = totals.get(key, 0) + entry.count
        return totals
