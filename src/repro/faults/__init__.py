"""Deterministic fault injection and graceful degradation.

The Firefly was a machine meant to keep serving its user through
imperfect hardware; this package turns the reproduction's passive
monitors — the I1-I4 invariant checkers, the observatory — into an
active robustness rig:

- :mod:`repro.faults.plan` — *what* goes wrong and *when*: seeded,
  fully deterministic fault schedules drawn from the machine's own
  named RNG streams, so one seed reproduces one fault timeline.
- :mod:`repro.faults.models` — *how* each layer misbehaves: bus parity
  corruption, SECDED memory flips, dropped snoop updates, CPU board
  failure, QBus device timeouts.
- :mod:`repro.faults.injector` — arms the models against a live
  machine and keeps the per-fault ledger (injected / detected /
  recovered times, outcome), emitting ``fault.*`` telemetry.
- :mod:`repro.faults.chaos` — the ``firefly-sim chaos`` campaigns:
  pinned scenarios, detection/recovery reporting, degradation vs a
  fault-free twin run at the same seed.

See docs/FAULTS.md.
"""

from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    ChaosReport,
    ScenarioOutcome,
    chaos_scenario_names,
    run_campaign,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.models import (
    BusFaultModel,
    QBusFaultModel,
)
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScheduledFault,
    spec,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "BusFaultModel",
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "QBusFaultModel",
    "ScenarioOutcome",
    "ScheduledFault",
    "chaos_scenario_names",
    "run_campaign",
    "spec",
]
