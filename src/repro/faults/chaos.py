"""Seeded chaos campaigns behind ``firefly-sim chaos``.

Each campaign scenario builds a fresh machine, arms a
:class:`~repro.faults.injector.FaultInjector` with a pinned
:class:`~repro.faults.plan.FaultPlan`, and drives the simulation while
the observatory watches: span tracing attributes latency, the
divergence monitor compares the analytic model window by window, and
the I1-I4 coherence audit sweeps for injected damage.  Every scenario
also runs a *fault-free twin* — the identical build at the identical
seed with no injector constructed — so the report's degradation
numbers are true deltas, and the twin doubles as a standing proof that
an unarmed machine is byte-identical to a pre-faults one.

Determinism is the whole point: the report contains no wall-clock
times, no host identifiers, and no unordered iteration, so
``firefly-sim chaos --seed S`` twice produces byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    BusTransferError,
    ConfigurationError,
    UncorrectableMemoryError,
)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FaultKind, FaultPlan, spec
from repro.io.disk import WORDS_PER_BLOCK, DiskController, DiskParams
from repro.observatory.divergence import DivergenceMonitor
from repro.observatory.spans import trace_spans
from repro.system import FireflyConfig, FireflyMachine
from repro.system.checker import CoherenceChecker
from repro.system.metrics import collect_metrics
from repro.workloads.threads_exerciser import ExerciserParams, build_exerciser

CHAOS_SCHEMA = "firefly-chaos/1"

DEFAULT_SEED = 1987


@dataclass(frozen=True)
class ChaosHorizon:
    """Warm-up and measurement cycles for one campaign scenario."""

    warmup: int
    measure: int


@dataclass(frozen=True)
class ChaosScenario:
    """One pinned chaos scenario.

    ``runner(scenario, horizon, seed)`` builds the subject, injects the
    plan, and returns a :class:`ScenarioOutcome`.
    """

    name: str
    description: str
    full: ChaosHorizon
    quick: ChaosHorizon
    runner: Callable[["ChaosScenario", ChaosHorizon, int],
                     "ScenarioOutcome"]

    def horizon(self, quick: bool) -> ChaosHorizon:
        return self.quick if quick else self.full


# ---------------------------------------------------------------------------
# the campaign engine


@dataclass
class _EngineRun:
    """Everything :func:`_drive` measured about one armed run."""

    injector: FaultInjector
    metrics: Optional[object]          # MachineMetrics of the window
    measured: int
    data_loss: str
    violations_flagged: int
    words_repaired: int
    scrub_corrected: int
    scrub_uncorrectable: int
    divergence_samples: int
    out_of_band_windows: int
    span_kinds: int
    total_cycles: int
    crash: Optional[Dict] = None


def _drive(subject, plan: FaultPlan, horizon: ChaosHorizon,
           kernel=None, audit_interval: int = 0, scrub_interval: int = 0,
           repair: bool = True) -> _EngineRun:
    """Warm up, arm the plan, and run the measurement window.

    The window is advanced in slices so periodic audits (I1-I4 sweep,
    memory scrub) run between bus transactions; a data-loss exception
    (:class:`UncorrectableMemoryError` on a demand read,
    :class:`BusTransferError` on retry exhaustion) ends the window
    early and is reported, not swallowed.
    """
    from repro.causal.crash import capture_crash
    from repro.causal.recorder import FlightRecorder

    machine = getattr(subject, "machine", subject)
    sim = machine.sim
    hub, tracer = trace_spans(subject)
    # Ride-along flight recorder: subscribes to the span tracer's hub
    # (no probe slots touched), so an unrecovered fault yields a
    # postmortem-ready crash report with the recent causal timeline.
    recorder = FlightRecorder(subject, hub=hub)
    monitor = DivergenceMonitor(subject,
                                interval=max(2_000, horizon.measure // 5))
    injector = FaultInjector(machine, plan, kernel=kernel)
    injector.probe = hub.probe("faults")
    checker = CoherenceChecker(machine) if audit_interval else None

    machine.start()
    sim.run_until(sim.now + horizon.warmup)
    machine.mark_window()
    monitor.start()
    injector.arm(horizon.measure)
    start = sim.now
    end = start + horizon.measure

    violations_flagged = words_repaired = 0
    scrub_corrected = scrub_uncorrectable = 0
    data_loss = ""
    crash = None
    next_audit = start + audit_interval if audit_interval else None
    next_scrub = start + scrub_interval if scrub_interval else None

    def _audit() -> None:
        nonlocal violations_flagged, words_repaired
        found = checker.violations()
        if found:
            violations_flagged += len(found)
            injector.note_violations(found)
            if repair:
                words_repaired += injector.repair_coherence(found)

    while sim.now < end:
        target = end
        if next_audit is not None:
            target = min(target, next_audit)
        if next_scrub is not None:
            target = min(target, next_scrub)
        try:
            sim.run_until(target)
        except (UncorrectableMemoryError, BusTransferError) as exc:
            data_loss = str(exc)
            crash = capture_crash(exc, subject=subject, recorder=recorder)
            break
        if next_audit is not None and sim.now >= next_audit:
            _audit()
            next_audit += audit_interval
        if next_scrub is not None and sim.now >= next_scrub:
            corrected, uncorrectable = machine.memory.scrub()
            scrub_corrected += corrected
            scrub_uncorrectable += uncorrectable
            next_scrub += scrub_interval

    monitor.stop()
    if checker is not None and not data_loss:
        _audit()
    # Terminal classification for drops the audit never saw: a dropped
    # probe on a cache that held nothing relevant is harmless.
    for record in injector.records:
        if (record.kind is FaultKind.SNOOP_DROP
                and record.outcome == "injected"):
            now = sim.now
            record.detected_at = record.recovered_at = now
            if record.detail:
                record.outcome = "benign"
                record.detail += " (no audit-visible damage)"
            else:
                record.outcome = "not-triggered"

    measured = sim.now - start
    metrics = (collect_metrics(machine, window_cycles=measured)
               if measured > 0 else None)
    recorder.detach()
    tracer.close()
    return _EngineRun(
        injector=injector, metrics=metrics, measured=measured,
        data_loss=data_loss, violations_flagged=violations_flagged,
        words_repaired=words_repaired, scrub_corrected=scrub_corrected,
        scrub_uncorrectable=scrub_uncorrectable,
        divergence_samples=len(monitor.samples),
        out_of_band_windows=sum(
            monitor.out_of_band_counts[m]
            for m in sorted(monitor.out_of_band_counts)),
        span_kinds=len(tracer.kind_stats), total_cycles=sim.now,
        crash=crash)


# ---------------------------------------------------------------------------
# per-scenario outcomes


@dataclass
class ScenarioOutcome:
    """One scenario's campaign result, renderable and JSON-safe."""

    name: str
    description: str
    seed: int
    warmup: int
    measure: int
    measured: int = 0
    verdict: str = "FAIL"
    notes: List[str] = field(default_factory=list)
    timeline: List[str] = field(default_factory=list)
    records: List[FaultRecord] = field(default_factory=list)
    metrics: Dict = field(default_factory=dict)
    data_loss: str = ""
    violations_flagged: int = 0
    words_repaired: int = 0
    divergence_samples: int = 0
    out_of_band_windows: int = 0
    span_kinds: int = 0
    total_cycles: int = 0
    crash: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.verdict == "OK"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "measured": self.measured,
            "verdict": self.verdict,
            "notes": list(self.notes),
            "timeline": list(self.timeline),
            "faults": [record.to_dict() for record in self.records],
            "metrics": dict(self.metrics),
            "data_loss": self.data_loss,
            "violations_flagged": self.violations_flagged,
            "words_repaired": self.words_repaired,
            "divergence_samples": self.divergence_samples,
            "out_of_band_windows": self.out_of_band_windows,
            "span_kinds": self.span_kinds,
            "total_cycles": self.total_cycles,
            "crash": self.crash,
        }

    def render(self) -> str:
        lines = [f"scenario {self.name}: {self.description}  "
                 f"[{self.verdict}]"]
        lines.append(f"  horizon: warmup {self.warmup} + measure "
                     f"{self.measure} cycles (measured {self.measured})")
        lines.append("  timeline:")
        for entry in self.timeline:
            lines.append(f"    {entry}")
        lines.append("  faults:")
        for record in self.records:
            lines.append(f"    {record.render()}")
        if self.violations_flagged or self.words_repaired:
            lines.append(f"  audit: {self.violations_flagged} "
                         f"violation(s) flagged, {self.words_repaired} "
                         f"word(s) repaired")
        lines.append(f"  observatory: {self.span_kinds} span kind(s), "
                     f"{self.divergence_samples} divergence window(s), "
                     f"{self.out_of_band_windows} out of band")
        if self.data_loss:
            lines.append(f"  data loss: {self.data_loss}")
        if self.crash is not None:
            kept = len(self.crash.get("recent_events") or ())
            lines.append(f"  crash report captured ({kept} recent "
                         f"event(s); render with firefly-sim postmortem)")
        if self.metrics:
            lines.append("  metrics:")
            for key in sorted(self.metrics):
                lines.append(f"    {key} = {self.metrics[key]}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _outcome(scenario: ChaosScenario, horizon: ChaosHorizon, seed: int,
             run: _EngineRun) -> ScenarioOutcome:
    return ScenarioOutcome(
        name=scenario.name, description=scenario.description, seed=seed,
        warmup=horizon.warmup, measure=horizon.measure,
        measured=run.measured,
        timeline=[fault.describe() for fault in run.injector.schedule],
        records=list(run.injector.records), data_loss=run.data_loss,
        violations_flagged=run.violations_flagged,
        words_repaired=run.words_repaired,
        divergence_samples=run.divergence_samples,
        out_of_band_windows=run.out_of_band_windows,
        span_kinds=run.span_kinds, total_cycles=run.total_cycles,
        crash=run.crash)


def _verdict(outcome: ScenarioOutcome, ok: bool, note: str) -> None:
    outcome.verdict = "OK" if ok else "FAIL"
    outcome.notes.append(note)


def _perf_block(faulted, baseline) -> Dict:
    """Faulted-vs-twin metric deltas (the degradation numbers)."""
    block: Dict = {}
    for key in ("bus_load", "mean_tpi", "mean_miss_rate"):
        measured = getattr(faulted, key) if faulted is not None else 0.0
        expected = getattr(baseline, key)
        block[f"faulted.{key}"] = round(measured, 6)
        block[f"baseline.{key}"] = round(expected, 6)
    if faulted is not None and baseline.mean_tpi > 0:
        block["degradation.tpi_pct"] = round(
            (faulted.mean_tpi / baseline.mean_tpi - 1.0) * 100.0, 2)
    if faulted is not None and baseline.bus_load > 0:
        block["degradation.bus_load_pct"] = round(
            (faulted.bus_load / baseline.bus_load - 1.0) * 100.0, 2)
    return block


def _twin_metrics(build: Callable[[], object], horizon: ChaosHorizon):
    """Run the fault-free twin: same build, same seed, no injector."""
    twin = build()
    return twin.run(warmup_cycles=horizon.warmup,
                    measure_cycles=horizon.measure)


# ---------------------------------------------------------------------------
# pinned scenarios


def _run_bus_parity(scenario: ChaosScenario, horizon: ChaosHorizon,
                    seed: int) -> ScenarioOutcome:
    """Parity-corrupted MBus tenures recovered by retry-with-backoff."""
    def build():
        return FireflyMachine(FireflyConfig(processors=4, seed=seed))

    machine = build()
    plan = FaultPlan([
        spec(FaultKind.BUS_CORRUPT, window=(0.15, 0.30), burst=1),
        spec(FaultKind.BUS_CORRUPT, window=(0.45, 0.60), burst=2),
        spec(FaultKind.BUS_CORRUPT, window=(0.70, 0.80), burst=3),
    ])
    run = _drive(machine, plan, horizon)
    outcome = _outcome(scenario, horizon, seed, run)
    outcome.metrics.update(_perf_block(run.metrics,
                                       _twin_metrics(build, horizon)))
    outcome.metrics["parity.errors"] = (
        machine.mbus.stats["parity.errors"].total)
    outcome.metrics["parity.recovered"] = (
        machine.mbus.stats["parity.recovered"].total)
    retried = sum(1 for r in run.injector.records
                  if r.outcome == "retried")
    ok = retried == len(run.injector.records) and not run.data_loss
    _verdict(outcome, ok,
             f"{retried}/{len(run.injector.records)} corruption bursts "
             f"recovered by bounded retry")
    return outcome


def _run_ecc_scrub(scenario: ChaosScenario, horizon: ChaosHorizon,
                   seed: int) -> ScenarioOutcome:
    """SECDED: single-bit flips corrected, a double-bit flip detected."""
    def build():
        return FireflyMachine(FireflyConfig(processors=2, seed=seed))

    machine = build()
    plan = FaultPlan([
        spec(FaultKind.MEMORY_FLIP, count=4, window=(0.10, 0.45), bits=1),
        spec(FaultKind.MEMORY_FLIP, window=(0.60, 0.70), bits=2),
    ])
    run = _drive(machine, plan, horizon,
                 scrub_interval=max(1_000, horizon.measure // 12))
    outcome = _outcome(scenario, horizon, seed, run)
    outcome.metrics.update(_perf_block(run.metrics,
                                       _twin_metrics(build, horizon)))
    outcome.metrics["ecc.corrected"] = (
        machine.memory.stats["ecc.corrected"].total)
    outcome.metrics["ecc.uncorrectable"] = (
        machine.memory.stats["ecc.uncorrectable"].total)
    outcome.metrics["scrub.corrected"] = run.scrub_corrected
    outcome.metrics["scrub.uncorrectable"] = run.scrub_uncorrectable
    outcome.metrics["latent_at_end"] = machine.memory.latent_errors
    corrected = sum(1 for r in run.injector.records
                    if r.outcome == "corrected")
    uncorrectable = sum(1 for r in run.injector.records
                        if r.outcome == "uncorrectable")
    ok = (corrected == 4 and uncorrectable == 1
          and machine.memory.latent_errors == 0)
    _verdict(outcome, ok,
             f"{corrected} single-bit flip(s) corrected, "
             f"{uncorrectable} double-bit flip(s) detected as "
             f"uncorrectable, {machine.memory.latent_errors} latent "
             f"error(s) remaining")
    return outcome


def _run_snoop_storm(scenario: ChaosScenario, horizon: ChaosHorizon,
                     seed: int) -> ScenarioOutcome:
    """Dropped snoop probes caught by the I1-I4 audit and repaired."""
    def build():
        return FireflyMachine(FireflyConfig(processors=4, seed=seed))

    machine = build()
    plan = FaultPlan([
        spec(FaultKind.SNOOP_DROP, window=(0.15, 0.35), drops=3),
        spec(FaultKind.SNOOP_DROP, window=(0.50, 0.70), drops=3),
    ])
    run = _drive(machine, plan, horizon,
                 audit_interval=max(1_000, horizon.measure // 15))
    outcome = _outcome(scenario, horizon, seed, run)
    outcome.metrics.update(_perf_block(run.metrics,
                                       _twin_metrics(build, horizon)))
    outcome.metrics["snoop.dropped"] = (
        machine.mbus.stats["snoop.dropped"].total)
    flagged = sum(1 for r in run.injector.records
                  if r.outcome == "coherence-flagged")
    terminal = {"coherence-flagged", "benign", "not-triggered"}
    settled = all(r.outcome in terminal for r in run.injector.records)
    damage_caught = run.violations_flagged == 0 or flagged > 0
    ok = settled and damage_caught and not run.data_loss
    _verdict(outcome, ok,
             f"{flagged} drop(s) flagged by the I1-I4 audit; "
             f"{run.violations_flagged} violation(s) found, "
             f"{run.words_repaired} word(s) repaired")
    return outcome


def _run_cpu_offline(scenario: ChaosScenario, horizon: ChaosHorizon,
                     seed: int) -> ScenarioOutcome:
    """A CPU board fails under Topaz; survivors absorb its work."""
    def build():
        return build_exerciser(4, ExerciserParams(threads=12), seed=seed)

    kernel = build()
    plan = FaultPlan([spec(FaultKind.CPU_FAIL, window=(0.30, 0.45))])
    run = _drive(kernel, plan, horizon, kernel=kernel)
    outcome = _outcome(scenario, horizon, seed, run)
    machine = kernel.machine
    outcome.metrics.update(_perf_block(run.metrics,
                                       _twin_metrics(build, horizon)))
    outcome.metrics["offline.requeues"] = (
        kernel.stats["offline_requeues"].total)
    outcome.metrics["failed_cpus"] = list(machine.failed_cpus)
    survivors = machine.online_cpus
    for cpu in survivors:
        outcome.metrics[f"cpu{cpu.cpu_id}.instructions"] = (
            cpu.stats["instructions"].windowed)
    record = run.injector.records[0]
    survivor_work = sum(cpu.stats["instructions"].windowed
                        for cpu in survivors)
    ok = (record.outcome == "offlined"
          and len(machine.failed_cpus) == 1
          and survivor_work > 0
          and not run.data_loss)
    _verdict(outcome, ok,
             f"board {record.target or '?'} offlined "
             f"({record.detail or 'no write-backs'}); "
             f"{len(survivors)} survivor(s) retired "
             f"{survivor_work} instruction(s) in the window")
    return outcome


def _build_io_machine(seed: int):
    """A 2-CPU machine with a disk running a write/read-back loop."""
    machine = FireflyMachine(FireflyConfig(processors=2, io_enabled=True,
                                           seed=seed))
    disk = DiskController(
        machine.sim, machine.qbus,
        DiskParams(average_seek_cycles=2_000, max_seek_cycles=4_000,
                   half_rotation_cycles=1_000, cycles_per_word=4,
                   blocks=512, pio_cycles=8))
    blocks_per_op = 2
    words = blocks_per_op * WORDS_PER_BLOCK
    # Staging regions sit above both CPUs' private regions and well
    # inside the 16 MB DMA reach.
    out_base = 1 << 19
    in_base = out_base + words
    machine.qbus.map.map_region(0, out_base, words)
    machine.qbus.map.map_region(words, in_base, words)
    state = {"rounds": 0, "mismatches": 0}

    def driver():
        lbn = 0
        while True:
            state["rounds"] += 1
            tag = state["rounds"] << 16
            for i in range(words):
                machine.memory.poke(out_base + i, tag | i)
            yield from disk.write_blocks(lbn, blocks_per_op, 0)
            yield from disk.read_blocks(lbn, blocks_per_op, words)
            for i in range(words):
                if machine.memory.peek(in_base + i) != tag | i:
                    state["mismatches"] += 1
            lbn = (lbn + blocks_per_op) % 16

    machine.sim.process(driver(), name="disk-driver")
    return machine, state


def _run_device_degrade(scenario: ChaosScenario, horizon: ChaosHorizon,
                        seed: int) -> ScenarioOutcome:
    """QBus device timeouts: DMA retries, then the degraded slow path."""
    machine, state = _build_io_machine(seed)
    plan = FaultPlan([
        spec(FaultKind.QBUS_TIMEOUT, window=(0.20, 0.35), timeouts=2),
        spec(FaultKind.QBUS_TIMEOUT, window=(0.55, 0.70), timeouts=5),
    ])
    run = _drive(machine, plan, horizon)

    def build_twin():
        twin, _ = _build_io_machine(seed)
        return twin

    outcome = _outcome(scenario, horizon, seed, run)
    outcome.metrics.update(_perf_block(run.metrics,
                                       _twin_metrics(build_twin, horizon)))
    qbus = machine.qbus
    outcome.metrics["dma.timeouts"] = qbus.stats["dma.timeouts"].total
    outcome.metrics["dma.degraded_words"] = (
        qbus.stats["dma.degraded_words"].total)
    outcome.metrics["qbus.degraded"] = qbus.degraded
    outcome.metrics["disk.rounds"] = state["rounds"]
    outcome.metrics["disk.mismatches"] = state["mismatches"]
    outcomes = [r.outcome for r in run.injector.records]
    ok = (outcomes == ["retried", "degraded"] and qbus.degraded
          and state["mismatches"] == 0 and state["rounds"] >= 2
          and not run.data_loss)
    _verdict(outcome, ok,
             f"device outcomes {outcomes}; {state['rounds']} disk "
             f"round-trip(s), {state['mismatches']} data mismatch(es)")
    return outcome


CHAOS_SCENARIOS: Tuple[ChaosScenario, ...] = (
    ChaosScenario("bus-parity",
                  "MBus parity corruption under bounded retry",
                  full=ChaosHorizon(10_000, 40_000),
                  quick=ChaosHorizon(5_000, 20_000),
                  runner=_run_bus_parity),
    ChaosScenario("ecc-scrub",
                  "SECDED memory flips under the background scrubber",
                  full=ChaosHorizon(5_000, 40_000),
                  quick=ChaosHorizon(5_000, 24_000),
                  runner=_run_ecc_scrub),
    ChaosScenario("snoop-storm",
                  "dropped snoop probes vs the I1-I4 coherence audit",
                  full=ChaosHorizon(10_000, 40_000),
                  quick=ChaosHorizon(5_000, 20_000),
                  runner=_run_snoop_storm),
    ChaosScenario("cpu-offline",
                  "CPU board failure under Topaz with graceful offlining",
                  full=ChaosHorizon(10_000, 50_000),
                  quick=ChaosHorizon(5_000, 25_000),
                  runner=_run_cpu_offline),
    ChaosScenario("device-degrade",
                  "QBus device timeouts with DMA retry and degradation",
                  full=ChaosHorizon(5_000, 60_000),
                  quick=ChaosHorizon(2_000, 36_000),
                  runner=_run_device_degrade),
)


def chaos_scenario_names() -> List[str]:
    return [scenario.name for scenario in CHAOS_SCENARIOS]


# ---------------------------------------------------------------------------
# the campaign report


@dataclass
class ChaosReport:
    """A full campaign: one outcome per scenario, plus rollups."""

    seed: int
    mode: str
    outcomes: List[ScenarioOutcome]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def total_cycles(self) -> int:
        return sum(outcome.total_cycles for outcome in self.outcomes)

    def fault_counts(self) -> Dict[str, int]:
        injected = detected = recovered = 0
        for outcome in self.outcomes:
            for record in outcome.records:
                if record.injected_at is not None:
                    injected += 1
                if record.detected_at is not None:
                    detected += 1
                if record.recovered_at is not None:
                    recovered += 1
        return {"injected": injected, "detected": detected,
                "recovered": recovered}

    def to_dict(self) -> Dict:
        return {
            "schema": CHAOS_SCHEMA,
            "seed": self.seed,
            "mode": self.mode,
            "ok": self.ok,
            "total_cycles": self.total_cycles,
            "faults": self.fault_counts(),
            "scenarios": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        lines = [f"chaos campaign: seed={self.seed} mode={self.mode} "
                 f"scenarios={len(self.outcomes)}"]
        for outcome in self.outcomes:
            lines.append("")
            lines.append(outcome.render())
        counts = self.fault_counts()
        failed = [o.name for o in self.outcomes if not o.ok]
        lines.append("")
        lines.append(
            f"chaos: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.outcomes) - len(failed)}/{len(self.outcomes)} "
            f"scenarios; {counts['injected']} fault(s) injected, "
            f"{counts['detected']} detected, "
            f"{counts['recovered']} recovered)"
            + (f"; failing: {', '.join(failed)}" if failed else ""))
        return "\n".join(lines)


def run_campaign(seed: int = DEFAULT_SEED, quick: bool = False,
                 scenarios: Optional[List[str]] = None,
                 jobs: int = 1,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> ChaosReport:
    """Run the pinned chaos scenarios and return the campaign report.

    Every scenario derives its entire fault schedule and workload from
    ``seed`` alone, so ``jobs > 1`` fans the scenarios out over worker
    processes (via :mod:`repro.observatory.runner`) and merges the
    outcomes back in pinned order — the report, including its JSON
    form, is byte-identical at any job count.
    """
    selected = list(CHAOS_SCENARIOS)
    if scenarios:
        by_name = {s.name: s for s in CHAOS_SCENARIOS}
        unknown = sorted(set(scenarios) - set(by_name))
        if unknown:
            raise ConfigurationError(
                f"unknown chaos scenario(s) {', '.join(unknown)}; "
                f"pinned: {', '.join(chaos_scenario_names())}")
        selected = [by_name[name] for name in scenarios]
    outcomes: List[ScenarioOutcome] = []
    if jobs is not None and jobs > 1 and len(selected) > 1:
        from repro.observatory.runner import (chaos_scenario,
                                              describe_chaos_spec,
                                              run_ordered)
        specs = [(scenario.name, quick, seed) for scenario in selected]
        if progress is not None:
            for scenario in selected:
                progress(f"{scenario.name}: {scenario.description}")
        outcomes = run_ordered(specs, chaos_scenario, jobs=jobs,
                               describe=describe_chaos_spec)
        if progress is not None:
            for outcome in outcomes:
                progress(f"  {outcome.name}: {outcome.verdict}")
    else:
        for scenario in selected:
            if progress is not None:
                progress(f"{scenario.name}: {scenario.description}")
            horizon = scenario.horizon(quick)
            outcome = scenario.runner(scenario, horizon, seed)
            outcomes.append(outcome)
            if progress is not None:
                progress(f"  {scenario.name}: {outcome.verdict}")
    return ChaosReport(seed=seed, mode="quick" if quick else "full",
                       outcomes=outcomes)
