"""Per-layer fault models, armed by the injector, consumed by hardware.

Each model is a small stateful object a hardware layer polls on its
hot path (``mbus.faults``, ``qbus.faults``).  The polling contract
keeps the happy path untouched: a layer with ``faults is None`` takes
no draw, no branch, no extra cycle; a layer with a model attached but
nothing armed pays one integer test per opportunity.

Models never draw randomness themselves — the *schedule* decides when
to arm them, so all nondeterminism stays in
:meth:`repro.faults.plan.FaultPlan.schedule`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError

EventHook = Optional[Callable[..., None]]


class BusFaultModel:
    """MBus parity corruption and snoop-drop faults.

    ``corrupts`` is polled once per bus tenure at the grant instant; a
    positive answer voids the tenure (parity fails during the data
    cycles) and sends the initiator through retry-with-backoff.
    ``drops_snoop`` is polled once per (snooper, transaction) during
    the fan-out; a positive answer silently skips that cache's probe.
    """

    def __init__(self, max_retries: int = 4, base_backoff_cycles: int = 8,
                 on_event: EventHook = None) -> None:
        if max_retries < 0 or base_backoff_cycles < 1:
            raise ConfigurationError(
                f"invalid bus fault parameters (max_retries={max_retries}, "
                f"base_backoff_cycles={base_backoff_cycles})")
        self.max_retries = max_retries
        self.base_backoff_cycles = base_backoff_cycles
        self.on_event = on_event
        self._corrupt_remaining = 0
        self._drops: Dict[int, int] = {}

    # -- arming (injector side) ----------------------------------------

    def arm_corruption(self, burst: int = 1) -> None:
        """The next ``burst`` bus tenures fail parity."""
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self._corrupt_remaining += burst

    def arm_snoop_drops(self, snooper_id: int, drops: int = 1) -> None:
        """The next ``drops`` probes of ``snooper_id`` are swallowed."""
        if drops < 1:
            raise ConfigurationError(f"drops must be >= 1, got {drops}")
        self._drops[snooper_id] = self._drops.get(snooper_id, 0) + drops

    @property
    def idle(self) -> bool:
        """Whether nothing is currently armed."""
        return self._corrupt_remaining == 0 and not any(
            self._drops.get(key) for key in sorted(self._drops))

    # -- polling (bus side) --------------------------------------------

    def corrupts(self, op, line_address: int, initiator: int) -> bool:
        if self._corrupt_remaining <= 0:
            return False
        self._corrupt_remaining -= 1
        if self.on_event is not None:
            # The parity checker fires during this tenure's data
            # cycles: detection is immediate and local.
            self.on_event("bus_corrupted", op=op.value,
                          address=line_address, initiator=initiator)
        return True

    def backoff_cycles(self, attempt: int) -> int:
        """Exponential backoff before re-arbitrating after attempt N."""
        return self.base_backoff_cycles << (attempt - 1)

    def drops_snoop(self, snooper, op, line_address: int) -> bool:
        snooper_id = getattr(snooper, "snooper_id", snooper)
        remaining = self._drops.get(snooper_id, 0)
        if remaining <= 0:
            return False
        peek = getattr(snooper, "peek", None)
        if peek is not None and peek(line_address) is None:
            # This cache holds nothing at the probed line; dropping the
            # probe would change nothing.  Hold the armed fault until a
            # probe arrives that the cache would actually act on.
            return False
        self._drops[snooper_id] = remaining - 1
        if self.on_event is not None:
            self.on_event("snoop_dropped", snooper_id=snooper_id,
                          op=op.value, address=line_address)
        return True

    # -- notifications (bus side) --------------------------------------

    def notify_recovered(self, op, line_address: int, initiator: int,
                         attempts: int) -> None:
        if self.on_event is not None:
            self.on_event("bus_recovered", op=op.value,
                          address=line_address, initiator=initiator,
                          attempts=attempts)

    def notify_exhausted(self, op, line_address: int, initiator: int,
                         attempts: int) -> None:
        if self.on_event is not None:
            self.on_event("bus_exhausted", op=op.value,
                          address=line_address, initiator=initiator,
                          attempts=attempts)


class QBusFaultModel:
    """QBus device timeouts with retry, then a degraded-device state.

    ``times_out`` is polled at the head of each word tenure; each
    positive answer costs the device ``timeout_cycles`` of silence
    before the retry.  After ``max_retries`` misses in one word the
    QBus marks itself degraded (see :meth:`QBus._mark_degraded`): the
    transfer completes, but every word from then on pays
    ``degraded_penalty_cycles`` extra — data intact, bandwidth lost.
    """

    def __init__(self, timeout_cycles: int = 64, max_retries: int = 3,
                 degraded_penalty_cycles: int = 9,
                 on_event: EventHook = None) -> None:
        if timeout_cycles < 1 or max_retries < 1:
            raise ConfigurationError(
                f"invalid qbus fault parameters (timeout_cycles="
                f"{timeout_cycles}, max_retries={max_retries})")
        if degraded_penalty_cycles < 0:
            raise ConfigurationError("degraded penalty must be >= 0")
        self.timeout_cycles = timeout_cycles
        self.max_retries = max_retries
        self.degraded_penalty_cycles = degraded_penalty_cycles
        self.on_event = on_event
        self._timeouts_remaining = 0

    def arm_timeouts(self, timeouts: int = 1) -> None:
        """The next ``timeouts`` DMA slots are missed by the device."""
        if timeouts < 1:
            raise ConfigurationError(
                f"timeouts must be >= 1, got {timeouts}")
        self._timeouts_remaining += timeouts

    @property
    def idle(self) -> bool:
        return self._timeouts_remaining == 0

    def times_out(self) -> bool:
        if self._timeouts_remaining <= 0:
            return False
        self._timeouts_remaining -= 1
        return True

    def notify_timeouts(self, attempts: int, degraded: bool) -> None:
        if self.on_event is not None:
            self.on_event("qbus_timeouts", attempts=attempts,
                          degraded=degraded)
