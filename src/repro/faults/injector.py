"""The fault injector: arms fault models and keeps the fault ledger.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a live machine: it resolves the plan into a timeline, schedules an
activation callback per fault, and wires the per-layer models'
notification hooks back into per-fault :class:`FaultRecord` entries —
when each fault was injected, when the hardware *detected* it, when it
*recovered*, and how it ended.

Detection semantics per kind:

- ``bus-corrupt`` — detected by the parity checker in the corrupted
  tenure itself; recovered when a retry succeeds (outcome ``retried``)
  or the budget runs out (``retry-exhausted``,
  :class:`~repro.common.errors.BusTransferError`).
- ``memory-flip`` — latent until *some* read touches the word: the
  demand-fetch path or the background scrubber.  Single-bit flips end
  ``corrected``; multi-bit flips end ``uncorrectable``.
- ``snoop-drop`` — the hardware cannot see this one; detection is the
  I1-I4 audit's job (:meth:`note_violations`), outcome
  ``coherence-flagged``.
- ``cpu-fail`` — fail-stop, detected at once; recovered when the
  graceful-offline sweep (flush + detach) completes (``offlined``).
- ``qbus-timeout`` — detected at the missed DMA slot; ends ``retried``
  or ``degraded``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import RandomStream
from repro.faults.models import BusFaultModel, QBusFaultModel
from repro.faults.plan import FaultKind, FaultPlan, ScheduledFault
from repro.telemetry.probe import NULL_PROBE


@dataclass
class FaultRecord:
    """The ledger entry for one scheduled fault."""

    fault_id: str
    kind: FaultKind
    scheduled_at: int
    injected_at: Optional[int] = None
    detected_at: Optional[int] = None
    recovered_at: Optional[int] = None
    outcome: str = "pending"
    target: str = ""
    detail: str = ""

    @property
    def detection_latency(self) -> Optional[int]:
        if self.injected_at is None or self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def recovery_time(self) -> Optional[int]:
        if self.injected_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    def to_dict(self) -> Dict:
        return {
            "fault_id": self.fault_id,
            "kind": self.kind.value,
            "scheduled_at": self.scheduled_at,
            "injected_at": self.injected_at,
            "detected_at": self.detected_at,
            "recovered_at": self.recovered_at,
            "outcome": self.outcome,
            "target": self.target,
            "detail": self.detail,
        }

    def render(self) -> str:
        def at(value: Optional[int]) -> str:
            return "-" if value is None else str(value)

        latency = self.detection_latency
        recovery = self.recovery_time
        parts = [
            f"{self.fault_id} {self.kind.value:<12}",
            f"inject t={at(self.injected_at)}",
            f"detect t={at(self.detected_at)}"
            + (f" (+{latency})" if latency is not None else ""),
            f"recover t={at(self.recovered_at)}"
            + (f" (+{recovery})" if recovery is not None else ""),
            f"outcome={self.outcome}",
        ]
        if self.target:
            parts.append(f"target={self.target}")
        return "  ".join(parts)


class FaultInjector:
    """Schedules a plan's faults against one machine and records them."""

    def __init__(self, machine, plan: FaultPlan,
                 rng: Optional[RandomStream] = None,
                 kernel=None,
                 bus_model: Optional[BusFaultModel] = None,
                 qbus_model: Optional[QBusFaultModel] = None) -> None:
        self.machine = machine
        self.plan = plan
        self.kernel = kernel
        self.rng = (rng if rng is not None
                    else machine.streams.stream("faults"))
        self.bus_model = bus_model or BusFaultModel()
        self.bus_model.on_event = self._on_layer_event
        self.qbus_model = qbus_model or QBusFaultModel()
        self.qbus_model.on_event = self._on_layer_event
        self.records: List[FaultRecord] = []
        self.schedule: Tuple[ScheduledFault, ...] = ()
        self._outstanding: Dict[FaultKind, Deque[FaultRecord]] = {
            kind: deque() for kind in FaultKind}
        self._by_word: Dict[int, FaultRecord] = {}
        # Per-record snoop-drop quotas: [record, victim cache, remaining]
        # so consumed drops attribute to the right fault even when
        # several are outstanding against the same cache.
        self._drop_slots: List[List] = []
        #: Telemetry probe; inert unless the chaos engine attaches one.
        self.probe = NULL_PROBE
        self._armed = False

    # -- lifecycle -----------------------------------------------------

    def arm(self, horizon: int, start: Optional[int] = None
            ) -> Tuple[ScheduledFault, ...]:
        """Resolve the plan and schedule every activation.

        Layer hooks are installed here — a machine whose injector is
        never armed keeps ``faults is None`` everywhere, so building an
        injector does not perturb a fault-free run.
        """
        if self._armed:
            raise ConfigurationError("injector is already armed")
        self._armed = True
        sim = self.machine.sim
        base = sim.now if start is None else start
        if base < sim.now:
            raise ConfigurationError(
                f"cannot arm in the past (start={base}, now={sim.now})")
        self.schedule = self.plan.schedule(self.rng, base, horizon)
        self.machine.mbus.faults = self.bus_model
        self.machine.memory.on_ecc = self._on_ecc
        if self.machine.qbus is not None:
            self.machine.qbus.faults = self.qbus_model
        for fault in self.schedule:
            record = FaultRecord(fault.fault_id, fault.kind, fault.time)
            self.records.append(record)
            sim.call_at(fault.time - sim.now,
                        lambda f=fault, r=record: self._activate(f, r))
        return self.schedule

    def disarm(self) -> None:
        """Detach every layer hook (pending activations become no-ops)."""
        self._armed = False
        self.machine.mbus.faults = None
        self.machine.memory.on_ecc = None
        if self.machine.qbus is not None:
            self.machine.qbus.faults = None

    # -- activation ----------------------------------------------------

    def _activate(self, fault: ScheduledFault, record: FaultRecord) -> None:
        if not self._armed:
            record.outcome = "disarmed"
            return
        now = self.machine.sim.now
        record.injected_at = now
        handler = {
            FaultKind.BUS_CORRUPT: self._inject_bus_corrupt,
            FaultKind.MEMORY_FLIP: self._inject_memory_flip,
            FaultKind.SNOOP_DROP: self._inject_snoop_drop,
            FaultKind.CPU_FAIL: self._inject_cpu_fail,
            FaultKind.QBUS_TIMEOUT: self._inject_qbus_timeout,
        }[fault.kind]
        handler(fault, record)
        if self.probe.active and record.outcome != "skipped":
            self.probe.instant("fault.inject", "faults",
                               id=record.fault_id, kind=fault.kind.value,
                               target=record.target)

    def _inject_bus_corrupt(self, fault: ScheduledFault,
                            record: FaultRecord) -> None:
        burst = fault.spec.param("burst", 1)
        record.target = f"burst={burst}"
        record.outcome = "injected"
        self._outstanding[FaultKind.BUS_CORRUPT].append(record)
        self.bus_model.arm_corruption(burst)

    def _inject_memory_flip(self, fault: ScheduledFault,
                            record: FaultRecord) -> None:
        bits = fault.spec.param("bits", 1)
        shared = self.machine.shared_region
        offset = self.rng.randint(0, shared.words - 1)
        address = shared.base_word + offset
        record.target = f"word {address:#x} ({bits} bit)"
        record.outcome = "latent"
        self._by_word[address] = record
        self._outstanding[FaultKind.MEMORY_FLIP].append(record)
        self.machine.memory.inject_bit_flips(address, bits)

    def _inject_snoop_drop(self, fault: ScheduledFault,
                           record: FaultRecord) -> None:
        drops = fault.spec.param("drops", 1)
        victims = [cache.snooper_id for cache in self.machine.caches
                   if not self.machine.cpus[cache.snooper_id].failed]
        if not victims:
            record.outcome = "skipped"
            record.detail = "no attached cache to victimise"
            return
        victim = self.rng.choice(victims)
        record.target = f"cache{victim} x{drops}"
        record.outcome = "injected"
        self._outstanding[FaultKind.SNOOP_DROP].append(record)
        self._drop_slots.append([record, victim, drops])
        self.bus_model.arm_snoop_drops(victim, drops)

    def _inject_cpu_fail(self, fault: ScheduledFault,
                         record: FaultRecord) -> None:
        wanted = fault.spec.param("cpu", -1)
        eligible = [cpu.cpu_id for cpu in self.machine.cpus
                    if cpu.cpu_id != 0 and not cpu.failed]
        if wanted >= 0:
            eligible = [cpu_id for cpu_id in eligible if cpu_id == wanted]
        if not eligible:
            record.outcome = "skipped"
            record.detail = "no eligible CPU board to fail"
            return
        cpu_id = self.rng.choice(eligible)
        record.target = f"cpu{cpu_id}"
        record.detected_at = self.machine.sim.now  # fail-stop
        record.outcome = "offlining"
        offliner = self.kernel if self.kernel is not None else self.machine
        proc = offliner.offline_cpu(cpu_id)
        self.machine.sim.process(self._watch_offline(record, proc),
                                 name=f"watch-{record.fault_id}")

    def _watch_offline(self, record: FaultRecord, proc):
        written = yield proc
        record.recovered_at = self.machine.sim.now
        record.outcome = "offlined"
        record.detail = f"{written} dirty line(s) written back"
        if self.probe.active:
            self.probe.instant("fault.recover", "faults",
                               id=record.fault_id, outcome=record.outcome)

    def _inject_qbus_timeout(self, fault: ScheduledFault,
                             record: FaultRecord) -> None:
        if self.machine.qbus is None:
            record.outcome = "skipped"
            record.detail = "machine has no QBus"
            return
        timeouts = fault.spec.param("timeouts", 1)
        record.target = f"x{timeouts}"
        record.outcome = "injected"
        self._outstanding[FaultKind.QBUS_TIMEOUT].append(record)
        self.qbus_model.arm_timeouts(timeouts)

    # -- layer notifications -------------------------------------------

    def _oldest(self, kind: FaultKind) -> Optional[FaultRecord]:
        queue = self._outstanding[kind]
        return queue[0] if queue else None

    def _on_layer_event(self, event: str, **info) -> None:
        now = self.machine.sim.now
        if event == "bus_corrupted":
            record = self._oldest(FaultKind.BUS_CORRUPT)
            if record is not None and record.detected_at is None:
                record.detected_at = now
                self._emit_detect(record)
        elif event in ("bus_recovered", "bus_exhausted"):
            queue = self._outstanding[FaultKind.BUS_CORRUPT]
            if queue:
                record = queue.popleft()
                record.recovered_at = now
                record.outcome = ("retried" if event == "bus_recovered"
                                  else "retry-exhausted")
                record.detail = (f"{info.get('attempts')} attempt(s) on "
                                 f"{info.get('op')} at "
                                 f"{info.get('address'):#x}")
                self._emit_recover(record)
        elif event == "snoop_dropped":
            for slot in self._drop_slots:
                record, victim, remaining = slot
                if victim != info.get("snooper_id") or remaining <= 0:
                    continue
                slot[2] = remaining - 1
                if not record.detail:
                    record.detail = (f"dropped {info.get('op')} probe at "
                                     f"{info.get('address'):#x}")
                break
        elif event == "qbus_timeouts":
            queue = self._outstanding[FaultKind.QBUS_TIMEOUT]
            if queue:
                record = queue.popleft()
                record.detected_at = now
                record.recovered_at = now
                record.outcome = ("degraded" if info.get("degraded")
                                  else "retried")
                record.detail = f"{info.get('attempts')} missed slot(s)"
                self._emit_detect(record)
                self._emit_recover(record)

    def _on_ecc(self, address: int, bits: int, outcome: str) -> None:
        now = self.machine.sim.now
        record = self._by_word.get(address)
        if record is None:
            return
        record.detected_at = now
        record.outcome = outcome
        if outcome == "corrected":
            record.recovered_at = now
            self._emit_recover(record)
        else:
            # Recovery software retires the frame: rewrite it with
            # fresh data (clearing the poison) so one uncorrectable
            # word cannot wedge the whole campaign.  The initiating
            # read still sees UncorrectableMemoryError — the data it
            # wanted is gone — but later accesses find a clean frame.
            memory = self.machine.memory
            memory.poke(address, memory.peek(address))
            record.recovered_at = now
            record.detail = f"{bits} bits; frame retired and rewritten"
        self._emit_detect(record)
        queue = self._outstanding[FaultKind.MEMORY_FLIP]
        if record in queue:
            queue.remove(record)
        del self._by_word[address]

    # -- audit integration (chaos engine) ------------------------------

    def note_violations(self, violations) -> List[FaultRecord]:
        """Attribute I1-I4 audit findings to outstanding snoop drops.

        Returns the records newly marked detected.  Attribution is
        FIFO: coherence damage surfaces in injection order because the
        audit sweeps all words every pass.
        """
        if not violations:
            return []
        now = self.machine.sim.now
        flagged: List[FaultRecord] = []
        queue = self._outstanding[FaultKind.SNOOP_DROP]
        summary = "; ".join(str(v) for v in violations[:3])
        while queue:
            record = queue.popleft()
            record.detected_at = now
            record.recovered_at = now  # repair follows in the same audit
            record.outcome = "coherence-flagged"
            suffix = f" [{record.detail}]" if record.detail else ""
            record.detail = summary + suffix
            flagged.append(record)
            self._emit_detect(record)
            self._emit_recover(record)
        return flagged

    def repair_coherence(self, violations) -> int:
        """Repair audited damage so the campaign can continue.

        For each violated word: elect the coherent value (a dirty
        holder's copy if one exists, else memory), write it to memory,
        and invalidate every cached copy — the software equivalent of
        an OS-level refetch after a flagged line.  Returns the number
        of words repaired.
        """
        repaired = set()
        machine = self.machine
        for violation in violations:
            address = violation.address
            if address in repaired:
                continue
            value = None
            for cache in machine.caches:
                line, _, tag, offset = cache.lookup(address)
                if line.valid and line.tag == tag and line.state.is_dirty:
                    value = line.data[offset]
                    break
            if value is None:
                value = machine.memory.peek(address)
            machine.memory.poke(address, value)
            for cache in machine.caches:
                line, _, tag, _ = cache.lookup(address)
                if line.valid and line.tag == tag:
                    line.invalidate()
            repaired.add(address)
        return len(repaired)

    # -- reporting ------------------------------------------------------

    def _emit_detect(self, record: FaultRecord) -> None:
        if self.probe.active:
            self.probe.instant("fault.detect", "faults",
                               id=record.fault_id, kind=record.kind.value,
                               outcome=record.outcome)

    def _emit_recover(self, record: FaultRecord) -> None:
        if self.probe.active:
            self.probe.instant("fault.recover", "faults",
                               id=record.fault_id, outcome=record.outcome)

    def outcomes(self) -> Dict[str, int]:
        """Outcome -> count over the ledger (deterministic order)."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.outcome] = totals.get(record.outcome, 0) + 1
        return dict(sorted(totals.items()))

    def pending(self) -> List[FaultRecord]:
        """Records with no terminal outcome yet."""
        terminal = ("retried", "retry-exhausted", "corrected",
                    "uncorrectable", "coherence-flagged", "offlined",
                    "degraded", "skipped", "disarmed")
        return [r for r in self.records if r.outcome not in terminal]
