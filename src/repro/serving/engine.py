"""Pinned serving scenarios behind ``firefly-sim serve``.

Each scenario builds a fresh :class:`~repro.serving.workload.ServingWorkload`
from a pinned topology + resilience policy, runs it open-loop for a
warmup + measurement horizon, and gates the result on the topology's
SLOs (``p99 <= budget``, ``success_rate >= budget``) — a violated gate
fails the scenario and ``firefly-sim serve`` exits 1.  The
``latency-under-chaos`` scenario additionally arms a
:class:`~repro.faults.injector.FaultInjector` during the window and
reports degradation deltas against a fault-free twin, exactly as the
chaos campaigns do.

Determinism mirrors ``repro.faults.chaos``: everything derives from
the seed, reports hold no wall-clock or host fields, and ``--jobs N``
fans scenarios out over the deterministic executor and merges them
back in pinned order — the JSON report is byte-identical at any job
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.io.ethernet import EthernetParams
from repro.serving.policies import ResilienceParams
from repro.serving.workload import (ArrivalSpec, ServerSpec,
                                    ServingWorkload, SloSpec, TierSpec,
                                    Topology)

SERVE_SCHEMA = "firefly-serve/1"

DEFAULT_SEED = 1987

#: The serving scenarios run many small calls, so the DEQNA's
#: completion-service cost is trimmed to a light-interrupt
#: configuration (same knob the paper's driver work targeted); the
#: bench/A5 transports keep the stock constants.
SERVE_ETHERNET = EthernetParams(controller_overhead_cycles=1_500)


@dataclass(frozen=True)
class ServeHorizon:
    """Warm-up and measurement cycles for one serving scenario."""

    warmup: int
    measure: int


@dataclass(frozen=True)
class ServeScenario:
    """One pinned serving scenario.

    ``runner(scenario, horizon, seed)`` builds the workload, drives
    it, and returns a :class:`ServeOutcome`.
    """

    name: str
    description: str
    full: ServeHorizon
    quick: ServeHorizon
    runner: Callable[["ServeScenario", "ServeHorizon", int],
                     "ServeOutcome"]

    def horizon(self, quick: bool) -> ServeHorizon:
        return self.quick if quick else self.full


@dataclass
class ServeOutcome:
    """One scenario's serving result, renderable and JSON-safe."""

    name: str
    description: str
    seed: int
    warmup: int
    measure: int
    verdict: str = "FAIL"
    notes: List[str] = field(default_factory=list)
    slo_failures: List[str] = field(default_factory=list)
    classes: Dict[str, Dict] = field(default_factory=dict)
    segments: Dict[str, Dict] = field(default_factory=dict)
    transport: Dict[str, int] = field(default_factory=dict)
    topology: Dict = field(default_factory=dict)
    faults: List[Dict] = field(default_factory=list)
    twin: Dict[str, Dict] = field(default_factory=dict)
    degradation: Dict[str, float] = field(default_factory=dict)
    total_cycles: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict == "OK"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "verdict": self.verdict,
            "notes": list(self.notes),
            "slo_failures": list(self.slo_failures),
            "classes": {cls: dict(block)
                        for cls, block in sorted(self.classes.items())},
            "segments": {cls: dict(block)
                         for cls, block in sorted(self.segments.items())},
            "transport": dict(self.transport),
            "topology": dict(self.topology),
            "faults": list(self.faults),
            "twin": {cls: dict(block)
                     for cls, block in sorted(self.twin.items())},
            "degradation": dict(self.degradation),
            "total_cycles": self.total_cycles,
        }

    def render(self) -> str:
        lines = [f"scenario {self.name}: {self.description}  "
                 f"[{self.verdict}]"]
        lines.append(f"  horizon: warmup {self.warmup} + measure "
                     f"{self.measure} cycles")
        for cls in sorted(self.classes):
            block = self.classes[cls]
            lat = block["latency"]
            lines.append(
                f"  class {cls}: offered={block['offered']} "
                f"ok={block['ok']} failed={block['failed']} "
                f"shed={block['shed_total']} retries={block['retries']} "
                f"hedges={block['hedges']} "
                f"success={block['success_rate']:.4f}")
            lines.append(
                f"    latency: n={lat['count']} p50={lat['p50']} "
                f"p95={lat['p95']} p99={lat['p99']} max={lat['max']}")
            twin = self.twin.get(cls)
            if twin:
                tlat = twin["latency"]
                lines.append(
                    f"    fault-free twin: p50={tlat['p50']} "
                    f"p95={tlat['p95']} p99={tlat['p99']} "
                    f"success={twin['success_rate']:.4f}")
        if self.degradation:
            pairs = "  ".join(f"{key}={self.degradation[key]}"
                              for key in sorted(self.degradation))
            lines.append(f"  degradation: {pairs}")
        if self.faults:
            lines.append(f"  faults injected: {len(self.faults)}")
        for failure in self.slo_failures:
            lines.append(f"  SLO violation: {failure}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the scenario engine


def _drive_serving(workload: ServingWorkload, horizon: ServeHorizon,
                   plan=None, qbus_model=None):
    """Run warmup + window; returns (tracer, injector, fault records)."""
    from repro.causal.assemble import RequestTracer
    from repro.telemetry.instrument import attach_kernel, attach_serving
    from repro.telemetry.probe import TelemetryHub

    kernel = workload.kernel
    sim = kernel.sim
    hub = TelemetryHub(sim, max_events=0)
    attach_kernel(hub, kernel)
    attach_serving(hub, workload.resilient)
    tracer = RequestTracer(hub)

    injector = None
    if plan is not None:
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(kernel.machine, plan, kernel=kernel,
                                 qbus_model=qbus_model)
        injector.probe = hub.probe("faults")

    workload.io.start()
    kernel.machine.start()
    sim.run_until(sim.now + horizon.warmup)
    workload.mark_window()
    if injector is not None:
        injector.arm(horizon.measure)
    sim.run_until(sim.now + horizon.measure)
    tracer.close()
    return tracer, injector


def _segment_block(tracer, classes: List[str]) -> Dict[str, Dict]:
    """Mean cycles per causal segment, per request class (rounded)."""
    from repro.causal.assemble import SEGMENTS
    block: Dict[str, Dict] = {}
    traced = set(tracer.classes())
    for cls in classes:
        if cls not in traced:
            continue
        means = tracer.segment_means(cls)
        block[cls] = {name: round(means[name], 2) for name in SEGMENTS}
    return block


def _twin_classes(build: Callable[[], ServingWorkload],
                  horizon: ServeHorizon) -> Dict[str, Dict]:
    """The fault-free twin's per-class metrics (same build, no plan)."""
    twin = build()
    twin.run(horizon.warmup, horizon.measure)
    return twin.class_report()


def _degradation(classes: Dict[str, Dict],
                 twin: Dict[str, Dict]) -> Dict[str, float]:
    """Faulted-vs-twin latency and success deltas, per class."""
    block: Dict[str, float] = {}
    for cls in sorted(classes):
        if cls not in twin:
            continue
        faulted, baseline = classes[cls], twin[cls]
        base_p99 = baseline["latency"]["p99"]
        if base_p99 > 0:
            block[f"{cls}.p99_pct"] = round(
                (classes[cls]["latency"]["p99"] / base_p99 - 1.0)
                * 100.0, 2)
        block[f"{cls}.success_delta"] = round(
            faulted["success_rate"] - baseline["success_rate"], 6)
    return block


def _finish(scenario: ServeScenario, horizon: ServeHorizon, seed: int,
            workload: ServingWorkload, tracer, injector,
            extra_ok: bool, note: str) -> ServeOutcome:
    """Assemble the outcome; the verdict combines SLOs and invariants."""
    slo_failures = workload.slo_failures()
    outcome = ServeOutcome(
        name=scenario.name, description=scenario.description, seed=seed,
        warmup=horizon.warmup, measure=horizon.measure,
        slo_failures=slo_failures,
        classes=workload.class_report(),
        segments=_segment_block(tracer, workload.classes()),
        transport=workload.resilient.counters(),
        topology=workload.topology.to_dict(),
        faults=[record.to_dict() for record in injector.records]
               if injector is not None else [],
        total_cycles=workload.kernel.sim.now)
    ok = extra_ok and not slo_failures
    outcome.verdict = "OK" if ok else "FAIL"
    outcome.notes.append(note)
    return outcome


# ---------------------------------------------------------------------------
# pinned scenarios


def _steady_topology() -> Topology:
    return Topology(
        tiers=(
            TierSpec(name="interactive", workers=2,
                     arrivals=ArrivalSpec(process="poisson",
                                          mean_gap_cycles=30_000),
                     deadline_cycles=200_000, queue_limit=8,
                     slo=SloSpec(p99_cycles=150_000, success_rate=0.9)),
            TierSpec(name="batch", workers=1,
                     arrivals=ArrivalSpec(process="poisson",
                                          mean_gap_cycles=60_000),
                     deadline_cycles=400_000, calls_per_request=2,
                     queue_limit=8,
                     slo=SloSpec(p99_cycles=350_000, success_rate=0.8)),
        ),
        servers=ServerSpec(pool=2, turnaround_cycles=8_000))


def _run_steady(scenario: ServeScenario, horizon: ServeHorizon,
                seed: int) -> ServeOutcome:
    """Poisson arrivals well under capacity: every gate holds."""
    resilience = ResilienceParams(attempt_timeout_cycles=120_000,
                                  max_attempts=3,
                                  breaker_failure_threshold=3)
    workload = ServingWorkload(_steady_topology(), resilience, seed=seed,
                               ethernet_params=SERVE_ETHERNET)
    tracer, injector = _drive_serving(workload, horizon)
    served = sum(block["ok"] for block in workload.class_report().values())
    return _finish(scenario, horizon, seed, workload, tracer, injector,
                   extra_ok=served > 0,
                   note=f"{served} request(s) served within every gate")


def _bursty_topology() -> Topology:
    return Topology(
        tiers=(
            TierSpec(name="bursty", workers=2,
                     arrivals=ArrivalSpec(process="bursty",
                                          mean_gap_cycles=12_000,
                                          burst_factor=6.0,
                                          period_cycles=80_000),
                     deadline_cycles=400_000, queue_limit=4,
                     slo=SloSpec(p99_cycles=450_000,
                                 success_rate=0.15)),
        ),
        servers=ServerSpec(pool=2, turnaround_cycles=8_000))


def _run_bursty(scenario: ServeScenario, horizon: ServeHorizon,
                seed: int) -> ServeOutcome:
    """On/off bursts past capacity: the door sheds, the SLOs survive."""
    resilience = ResilienceParams(max_in_flight=3)
    workload = ServingWorkload(_bursty_topology(), resilience, seed=seed,
                               ethernet_params=SERVE_ETHERNET)
    tracer, injector = _drive_serving(workload, horizon)
    report = workload.class_report()
    shed = sum(block["shed_total"] for block in report.values())
    served = sum(block["ok"] for block in report.values())
    return _finish(scenario, horizon, seed, workload, tracer, injector,
                   extra_ok=shed > 0 and served > 0,
                   note=f"{shed} request(s) shed at the door or admission "
                        f"gate, {served} served")


def _hedge_topology() -> Topology:
    return Topology(
        tiers=(
            TierSpec(name="tail", workers=2,
                     arrivals=ArrivalSpec(process="poisson",
                                          mean_gap_cycles=40_000),
                     deadline_cycles=400_000, queue_limit=8,
                     slo=SloSpec(p99_cycles=350_000, success_rate=0.9)),
        ),
        servers=ServerSpec(pool=3, turnaround_cycles=8_000))


def _run_hedge(scenario: ServeScenario, horizon: ServeHorizon,
               seed: int) -> ServeOutcome:
    """Hedged requests race a second server for the tail."""
    resilience = ResilienceParams(hedge_after_cycles=6_000)
    workload = ServingWorkload(_hedge_topology(), resilience, seed=seed,
                               fork_headroom=160,
                               ethernet_params=SERVE_ETHERNET)
    tracer, injector = _drive_serving(workload, horizon)
    report = workload.class_report()
    hedges = sum(block["hedges"] for block in report.values())
    served = sum(block["ok"] for block in report.values())
    return _finish(scenario, horizon, seed, workload, tracer, injector,
                   extra_ok=hedges > 0 and served > 0,
                   note=f"{hedges} hedge(s) issued across {served} "
                        f"served request(s)")


def _chaos_topology() -> Topology:
    return Topology(
        tiers=(
            TierSpec(name="chaos", workers=2,
                     arrivals=ArrivalSpec(process="poisson",
                                          mean_gap_cycles=30_000),
                     deadline_cycles=500_000, queue_limit=16,
                     slo=SloSpec(p99_cycles=600_000,
                                 success_rate=0.5)),
        ),
        servers=ServerSpec(pool=2, turnaround_cycles=8_000))


def _chaos_resilience() -> ResilienceParams:
    return ResilienceParams(attempt_timeout_cycles=32_000,
                            max_attempts=4,
                            backoff_base_cycles=2_000,
                            breaker_failure_threshold=4)


def _run_latency_under_chaos(scenario: ServeScenario,
                             horizon: ServeHorizon,
                             seed: int) -> ServeOutcome:
    """QBus device timeouts degrade DMA mid-window; retries absorb it.

    The identical build runs fault-free as the twin, so the per-class
    p50/p95/p99 and success-rate degradation numbers are true deltas.
    """
    from repro.faults.models import QBusFaultModel
    from repro.faults.plan import FaultKind, FaultPlan, spec

    def build() -> ServingWorkload:
        return ServingWorkload(_chaos_topology(), _chaos_resilience(),
                               seed=seed,
                               ethernet_params=SERVE_ETHERNET)

    plan = FaultPlan([
        spec(FaultKind.QBUS_TIMEOUT, window=(0.10, 0.30), timeouts=2),
        spec(FaultKind.QBUS_TIMEOUT, window=(0.45, 0.65), timeouts=5),
    ])
    # A slow device, not just a glitchy one: each missed DMA slot costs
    # 4k cycles of silence, pushing the affected attempts past the
    # serving layer's 32k attempt timeout — that is what turns a QBus
    # fault into visible retries and a latency-tail delta.
    qbus_model = QBusFaultModel(timeout_cycles=4_000, max_retries=3,
                                degraded_penalty_cycles=30)
    workload = build()
    tracer, injector = _drive_serving(workload, horizon, plan=plan,
                                      qbus_model=qbus_model)
    outcome = _finish(scenario, horizon, seed, workload, tracer, injector,
                      extra_ok=True, note="")
    outcome.twin = _twin_classes(build, horizon)
    outcome.degradation = _degradation(outcome.classes, outcome.twin)
    retries = outcome.transport["retries"]
    settled = all(r["outcome"] in ("retried", "degraded", "not-triggered")
                  for r in outcome.faults)
    ok = (outcome.verdict == "OK" and retries > 0 and settled)
    outcome.verdict = "OK" if ok else "FAIL"
    outcome.notes = [
        f"{retries} retry(ies) under injected QBus timeouts; fault "
        f"outcomes {[r['outcome'] for r in outcome.faults]}"]
    return outcome


SERVE_SCENARIOS: Tuple[ServeScenario, ...] = (
    ServeScenario("steady-poisson",
                  "Poisson arrivals under capacity meet every SLO",
                  full=ServeHorizon(150_000, 1_200_000),
                  quick=ServeHorizon(60_000, 400_000),
                  runner=_run_steady),
    ServeScenario("bursty-shed",
                  "on/off bursts past capacity shed at the door",
                  full=ServeHorizon(150_000, 1_200_000),
                  quick=ServeHorizon(60_000, 400_000),
                  runner=_run_bursty),
    ServeScenario("hedge-tail",
                  "hedged requests race a second server for the tail",
                  full=ServeHorizon(150_000, 900_000),
                  quick=ServeHorizon(60_000, 400_000),
                  runner=_run_hedge),
    ServeScenario("latency-under-chaos",
                  "QBus device timeouts vs retries, with fault-free twin",
                  full=ServeHorizon(150_000, 1_200_000),
                  quick=ServeHorizon(60_000, 400_000),
                  runner=_run_latency_under_chaos),
)


def serve_scenario_names() -> List[str]:
    return [scenario.name for scenario in SERVE_SCENARIOS]


# ---------------------------------------------------------------------------
# the campaign report


@dataclass
class ServeReport:
    """A full serving campaign: one outcome per scenario, plus rollups."""

    seed: int
    mode: str
    outcomes: List[ServeOutcome]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def totals(self) -> Dict[str, int]:
        keys = ("calls", "ok", "shed", "retries", "hedges")
        rollup = {key: 0 for key in keys}
        for outcome in self.outcomes:
            for key in keys:
                rollup[key] += outcome.transport.get(key, 0)
        return rollup

    def to_dict(self) -> Dict:
        return {
            "schema": SERVE_SCHEMA,
            "seed": self.seed,
            "mode": self.mode,
            "ok": self.ok,
            "totals": self.totals(),
            "scenarios": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        lines = [f"serving campaign: seed={self.seed} mode={self.mode} "
                 f"scenarios={len(self.outcomes)}"]
        for outcome in self.outcomes:
            lines.append("")
            lines.append(outcome.render())
        totals = self.totals()
        failed = [o.name for o in self.outcomes if not o.ok]
        lines.append("")
        lines.append(
            f"serve: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.outcomes) - len(failed)}/{len(self.outcomes)} "
            f"scenarios; {totals['calls']} call(s), {totals['shed']} "
            f"shed, {totals['retries']} retried, {totals['hedges']} "
            f"hedged)"
            + (f"; failing: {', '.join(failed)}" if failed else ""))
        return "\n".join(lines)


def run_serve_campaign(seed: int = DEFAULT_SEED, quick: bool = False,
                       scenarios: Optional[List[str]] = None,
                       jobs: int = 1,
                       progress: Optional[Callable[[str], None]] = None
                       ) -> ServeReport:
    """Run the pinned serving scenarios and return the campaign report.

    Every scenario derives its workload, arrivals, and (where armed)
    fault schedule from ``seed`` alone, so ``jobs > 1`` fans scenarios
    out over worker processes and merges the outcomes back in pinned
    order — the report is byte-identical at any job count.
    """
    selected = list(SERVE_SCENARIOS)
    if scenarios:
        by_name = {s.name: s for s in SERVE_SCENARIOS}
        unknown = sorted(set(scenarios) - set(by_name))
        if unknown:
            raise ConfigurationError(
                f"unknown serve scenario(s) {', '.join(unknown)}; "
                f"pinned: {', '.join(serve_scenario_names())}")
        selected = [by_name[name] for name in scenarios]
    outcomes: List[ServeOutcome] = []
    if jobs is not None and jobs > 1 and len(selected) > 1:
        from repro.observatory.runner import (describe_serve_spec,
                                              run_ordered, serve_scenario)
        specs = [(scenario.name, quick, seed) for scenario in selected]
        if progress is not None:
            for scenario in selected:
                progress(f"{scenario.name}: {scenario.description}")
        outcomes = run_ordered(specs, serve_scenario, jobs=jobs,
                               describe=describe_serve_spec)
        if progress is not None:
            for outcome in outcomes:
                progress(f"  {outcome.name}: {outcome.verdict}")
    else:
        for scenario in selected:
            if progress is not None:
                progress(f"{scenario.name}: {scenario.description}")
            horizon = scenario.horizon(quick)
            outcome = scenario.runner(scenario, horizon, seed)
            outcomes.append(outcome)
            if progress is not None:
                progress(f"  {scenario.name}: {outcome.verdict}")
    return ServeReport(seed=seed, mode="quick" if quick else "full",
                       outcomes=outcomes)
