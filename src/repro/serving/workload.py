"""Open-loop serving workload: arrival processes over a service topology.

The closed-loop RPC workload (``repro.workloads.rpc_server``) measures
saturation throughput — K clients issue the next call the moment the
previous one returns, so offered load adapts to capacity.  A serving
study needs the opposite: an **open loop**, where requests arrive on
their own clock ("millions of users" do not slow down because the
server is busy), queues grow when capacity is exceeded, and tail
latency and shed rates are the observables.

The topology is declarative (``firefly-serve-topology/1``): client
tiers — each with an arrival process, a worker pool, a deadline and an
SLO — in front of a pool of remote servers reached through one
:class:`~repro.serving.policies.ResilientTransport`.  Per tier there is
one *dispatcher* kernel thread (turns the arrival process into queue
entries, shedding past the queue bound) and a fixed pool of *worker*
threads (dequeue, stamp the request deadline, make the resilient
call(s), record end-to-end latency from *arrival*, queueing included).

Arrival gaps draw only from per-tier ``serving.arrivals.<tier>``
streams, so two topologies with different tier sets never perturb each
other's arrivals and a seed replays byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from collections import deque

from repro.common.errors import ConfigurationError
from repro.common.stats import Histogram
from repro.io.ethernet import EthernetParams, RemoteEndpoint
from repro.io.subsystem import IoSubsystem
from repro.serving.policies import (CallOutcome, ResilienceParams,
                                    ResilientTransport, _sleep)
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel
from repro.topaz.rpc import RpcParams, RpcTransport

TOPOLOGY_SCHEMA = "firefly-serve-topology/1"

ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")

LATENCY_BOUNDS = tuple(int(round(1000 * 1.5 ** i)) for i in range(36))
"""Histogram bounds for end-to-end latencies (same geometry as the
causal assembler's request buckets)."""


def _require(condition: bool, path: str, message: str, value: Any) -> None:
    if not condition:
        raise ConfigurationError(
            f"topology: {path} {message}, got {value!r}")


@dataclass(frozen=True)
class ArrivalSpec:
    """One tier's arrival process over sim time."""

    process: str = "poisson"
    #: Long-run mean inter-arrival gap, cycles.
    mean_gap_cycles: int = 25_000
    #: Bursty: on-phase gaps shrink by this factor, off-phase gaps grow
    #: by it.  Diurnal: unused.
    burst_factor: float = 4.0
    #: Bursty/diurnal modulation period, cycles.
    period_cycles: int = 0
    #: Diurnal: rate swing amplitude (0..1).
    amplitude: float = 0.5

    def validate(self, path: str) -> None:
        _require(self.process in ARRIVAL_PROCESSES, f"{path}.process",
                 f"must be one of {ARRIVAL_PROCESSES}", self.process)
        _require(self.mean_gap_cycles > 0, f"{path}.mean_gap_cycles",
                 "must be positive", self.mean_gap_cycles)
        _require(self.burst_factor >= 1.0, f"{path}.burst_factor",
                 "must be >= 1.0", self.burst_factor)
        _require(0.0 <= self.amplitude < 1.0, f"{path}.amplitude",
                 "must be in [0, 1)", self.amplitude)
        if self.process in ("bursty", "diurnal"):
            _require(self.period_cycles > 0, f"{path}.period_cycles",
                     f"must be positive for {self.process} arrivals",
                     self.period_cycles)

    def next_gap(self, rng, now: int) -> int:
        """Draw the next inter-arrival gap (cycles, >= 1)."""
        mean = float(self.mean_gap_cycles)
        if self.process == "bursty":
            half = max(1, self.period_cycles // 2)
            on = (now // half) % 2 == 0
            mean = mean / self.burst_factor if on \
                else mean * self.burst_factor
        elif self.process == "diurnal":
            phase = 2.0 * math.pi * (now % self.period_cycles) \
                / self.period_cycles
            rate = 1.0 + self.amplitude * math.sin(phase)
            mean = mean / rate
        return max(1, int(rng.expovariate(mean)))


@dataclass(frozen=True)
class SloSpec:
    """Per-tier service-level objectives; 0 disables a gate."""

    p99_cycles: int = 0
    success_rate: float = 0.0

    def validate(self, path: str) -> None:
        _require(self.p99_cycles >= 0, f"{path}.p99_cycles",
                 "must be >= 0", self.p99_cycles)
        _require(0.0 <= self.success_rate <= 1.0, f"{path}.success_rate",
                 "must be in [0, 1]", self.success_rate)


@dataclass(frozen=True)
class TierSpec:
    """One client tier: arrivals in, deadlined resilient calls out."""

    name: str
    workers: int = 2
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: Request class label (defaults to the tier name).
    cls: str = ""
    #: Per-request deadline from arrival; 0 = none.
    deadline_cycles: int = 0
    #: Sequential resilient calls per request (> 1 exercises deadline
    #: propagation across nested work).
    calls_per_request: int = 1
    #: Dispatcher queue bound; arrivals past it are shed.
    queue_limit: int = 32
    slo: SloSpec = field(default_factory=SloSpec)

    @property
    def request_class(self) -> str:
        return self.cls or self.name

    def validate(self, path: str) -> None:
        _require(bool(self.name), f"{path}.name", "must be non-empty",
                 self.name)
        _require(self.workers > 0, f"{path}.workers", "must be positive",
                 self.workers)
        _require(self.deadline_cycles >= 0, f"{path}.deadline_cycles",
                 "must be >= 0", self.deadline_cycles)
        _require(self.calls_per_request > 0, f"{path}.calls_per_request",
                 "must be positive", self.calls_per_request)
        _require(self.queue_limit > 0, f"{path}.queue_limit",
                 "must be positive", self.queue_limit)
        self.arrivals.validate(f"{path}.arrivals")
        self.slo.validate(f"{path}.slo")


@dataclass(frozen=True)
class ServerSpec:
    """The remote server pool behind the resilient transport."""

    pool: int = 2
    turnaround_cycles: int = 8_000
    payload_bytes: int = 256
    packets_per_call: int = 1
    reply_bytes: int = 64

    def validate(self, path: str) -> None:
        _require(self.pool > 0, f"{path}.pool", "must be positive",
                 self.pool)
        _require(self.turnaround_cycles >= 0, f"{path}.turnaround_cycles",
                 "must be >= 0", self.turnaround_cycles)

    def rpc_params(self) -> RpcParams:
        return RpcParams(payload_bytes=self.payload_bytes,
                         packets_per_call=self.packets_per_call,
                         reply_bytes=self.reply_bytes,
                         server_turnaround_cycles=self.turnaround_cycles)


@dataclass(frozen=True)
class Topology:
    """The declarative service topology (client tiers -> server pool)."""

    tiers: tuple
    servers: ServerSpec = field(default_factory=ServerSpec)

    def validate(self) -> None:
        _require(len(self.tiers) > 0, "tiers", "must be non-empty",
                 len(self.tiers))
        seen = set()
        for i, tier in enumerate(self.tiers):
            tier.validate(f"tiers[{i}]")
            _require(tier.name not in seen, f"tiers[{i}].name",
                     "duplicates an earlier tier", tier.name)
            seen.add(tier.name)
        self.servers.validate("servers")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Topology":
        """Build + validate a topology from its JSON/dict form."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"topology: must be a mapping, got {type(data).__name__}")
        schema = data.get("schema", TOPOLOGY_SCHEMA)
        _require(schema == TOPOLOGY_SCHEMA, "schema",
                 f"must be {TOPOLOGY_SCHEMA!r}", schema)
        known = {"schema", "tiers", "servers"}
        extra = sorted(set(data) - known)
        _require(not extra, "keys", "unknown key(s)", extra)
        tiers = []
        for i, entry in enumerate(data.get("tiers", ())):
            tiers.append(_tier_from_dict(entry, f"tiers[{i}]"))
        servers = _build(ServerSpec, data.get("servers", {}), "servers")
        topology = cls(tiers=tuple(tiers), servers=servers)
        topology.validate()
        return topology

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TOPOLOGY_SCHEMA,
            "tiers": [
                {"name": t.name, "workers": t.workers,
                 "cls": t.request_class,
                 "arrivals": {"process": t.arrivals.process,
                              "mean_gap_cycles":
                                  t.arrivals.mean_gap_cycles,
                              "burst_factor": t.arrivals.burst_factor,
                              "period_cycles": t.arrivals.period_cycles,
                              "amplitude": t.arrivals.amplitude},
                 "deadline_cycles": t.deadline_cycles,
                 "calls_per_request": t.calls_per_request,
                 "queue_limit": t.queue_limit,
                 "slo": {"p99_cycles": t.slo.p99_cycles,
                         "success_rate": t.slo.success_rate}}
                for t in self.tiers],
            "servers": {"pool": self.servers.pool,
                        "turnaround_cycles":
                            self.servers.turnaround_cycles,
                        "payload_bytes": self.servers.payload_bytes,
                        "packets_per_call": self.servers.packets_per_call,
                        "reply_bytes": self.servers.reply_bytes},
        }


def _build(spec_cls, data: Dict[str, Any], path: str):
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"topology: {path} must be a mapping, "
            f"got {type(data).__name__}")
    fields = {f.name for f in spec_cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    extra = sorted(set(data) - fields)
    _require(not extra, f"{path}", "unknown key(s)", extra)
    try:
        return spec_cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"topology: {path}: {exc}") from exc


def _tier_from_dict(data: Dict[str, Any], path: str) -> TierSpec:
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"topology: {path} must be a mapping, "
            f"got {type(data).__name__}")
    data = dict(data)
    arrivals = _build(ArrivalSpec, data.pop("arrivals", {}),
                      f"{path}.arrivals")
    slo = _build(SloSpec, data.pop("slo", {}), f"{path}.slo")
    tier = _build(TierSpec, dict(data, arrivals=arrivals, slo=slo), path)
    return tier


# ---------------------------------------------------------------------------
# per-class metrics


_SHED_REASON_GROUPS = {
    "queue": "queue", "expired": "expired",
    "ready-depth": "admission", "in-flight": "admission",
    "breaker-open": "breaker",
}


class ClassMetrics:
    """Windowed per-request-class serving metrics (fixed report keys)."""

    __slots__ = ("cls", "offered", "ok", "failed", "shed", "retries",
                 "hedges", "latency")

    def __init__(self, cls: str) -> None:
        self.cls = cls
        self.offered = 0
        self.ok = 0
        self.failed = 0
        self.shed = {"queue": 0, "expired": 0, "admission": 0,
                     "breaker": 0}
        self.retries = 0
        self.hedges = 0
        self.latency = Histogram(f"serve.{cls}.latency",
                                 bounds=LATENCY_BOUNDS)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def requests(self) -> int:
        return self.ok + self.failed + self.shed_total

    @property
    def success_rate(self) -> float:
        total = self.requests
        return self.ok / total if total else 0.0

    def note_shed(self, reason: str) -> None:
        self.shed[_SHED_REASON_GROUPS.get(reason, "admission")] += 1

    def note_outcome(self, outcome: CallOutcome, latency: int) -> None:
        self.retries += outcome.retries
        if outcome.hedged:
            self.hedges += 1
        if outcome.status == "ok":
            self.ok += 1
            self.latency.record(latency)
        elif outcome.status == "shed":
            self.note_shed(outcome.shed_reason)
        else:
            self.failed += 1

    def to_dict(self) -> Dict[str, Any]:
        hist = self.latency
        return {
            "offered": self.offered,
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "retries": self.retries,
            "hedges": self.hedges,
            "success_rate": round(self.success_rate, 6),
            "latency": {"count": hist.count,
                        "mean": round(hist.mean, 2),
                        "p50": hist.percentile(50),
                        "p95": hist.percentile(95),
                        "p99": hist.percentile(99),
                        "max": hist.max},
        }


# ---------------------------------------------------------------------------
# the open-loop engine


class ServingWorkload:
    """A built machine serving an open-loop topology.

    ``fork_headroom`` reserves extra shared-region room (TCBs) for
    threads forked at run time — hedged calls fork two racers each, so
    hedging topologies must size this above the expected hedged-call
    count.
    """

    def __init__(self, topology: Topology,
                 resilience: Optional[ResilienceParams] = None,
                 processors: int = 4, seed: int = 1987,
                 fork_headroom: int = 0,
                 ethernet_params: Optional[EthernetParams] = None) -> None:
        topology.validate()
        self.topology = topology
        self.resilience = resilience or ResilienceParams()
        self.seed = seed
        total_workers = sum(t.workers for t in topology.tiers)
        hint = total_workers + len(topology.tiers) + 8 + fork_headroom
        self.kernel = TopazKernel.build(
            processors=processors, threads_hint=hint, seed=seed,
            io_enabled=True)
        self.io = IoSubsystem(self.kernel.machine,
                              ethernet_params=ethernet_params)
        _, buffer_qbus = self.io.alloc(512, "serve buffer")
        rpc_params = topology.servers.rpc_params()
        pool = [RpcTransport(self.kernel, self.io.ethernet, buffer_qbus,
                             params=rpc_params,
                             remote=RemoteEndpoint(
                                 topology.servers.turnaround_cycles))
                for _ in range(topology.servers.pool)]
        self.transports = pool
        self.resilient = ResilientTransport(self.kernel, pool,
                                            self.resilience)

        self.metrics: Dict[str, ClassMetrics] = {}
        self._measuring = False
        self._queues: Dict[str, Deque[int]] = {}
        streams = self.kernel.machine.streams
        for tier in topology.tiers:
            self.metrics[tier.request_class] = ClassMetrics(
                tier.request_class)
            queue: Deque[int] = deque()
            self._queues[tier.name] = queue
            mutex = self.kernel.mutex(f"{tier.name}-q")
            cond = self.kernel.condition(f"{tier.name}-work")
            rng = streams.stream(f"serving.arrivals.{tier.name}")
            self.kernel.fork(
                self._dispatcher_body(tier, queue, mutex, cond, rng),
                name=f"{tier.name}-dispatch")
            for i in range(tier.workers):
                self.kernel.fork(
                    self._worker_body(tier, queue, mutex, cond),
                    name=f"{tier.name}-worker{i}")

    # -- thread bodies ---------------------------------------------------

    def _dispatcher_body(self, tier: TierSpec, queue, mutex, cond, rng):
        sim = self.kernel.sim
        arrivals = tier.arrivals
        metrics = self.metrics[tier.request_class]

        def dispatcher():
            while True:
                gap = arrivals.next_gap(rng, sim.now)
                yield ops.DeviceCall(_sleep(sim, gap), label="arrivals")
                yield ops.Lock(mutex)
                if self._measuring:
                    metrics.offered += 1
                if len(queue) >= tier.queue_limit:
                    # Shed at the door: counted, never silently dropped.
                    if self._measuring:
                        metrics.note_shed("queue")
                    self.resilient.stats.incr("shed.queue")
                    probe = self.resilient.probe
                    if probe.active:
                        probe.instant("serve.shed", "serve",
                                      cls=tier.request_class,
                                      reason="queue", depth=len(queue))
                else:
                    queue.append(sim.now)
                    yield ops.Signal(cond)
                yield ops.Unlock(mutex)
        return dispatcher

    def _worker_body(self, tier: TierSpec, queue, mutex, cond):
        sim = self.kernel.sim
        metrics = self.metrics[tier.request_class]
        resilient = self.resilient

        def worker():
            me = yield ops.CurrentThread()
            while True:
                yield ops.Lock(mutex)
                while not queue:
                    yield ops.Wait(cond, mutex)
                arrival = queue.popleft()
                yield ops.Unlock(mutex)
                deadline = (arrival + tier.deadline_cycles
                            if tier.deadline_cycles else None)
                if deadline is not None and sim.now >= deadline:
                    # Expired while queued: shed before any call.
                    if self._measuring:
                        metrics.note_shed("expired")
                    resilient.stats.incr("shed.expired")
                    continue
                me.deadline = deadline
                outcome = None
                for _ in range(tier.calls_per_request):
                    outcome = yield from resilient.call(
                        cls=tier.request_class)
                    if not outcome.ok:
                        break
                me.deadline = None
                if self._measuring and outcome is not None:
                    metrics.note_outcome(outcome, sim.now - arrival)
        return worker

    # -- running ---------------------------------------------------------

    def mark_window(self) -> None:
        """Open the measurement window (counters from here on)."""
        self._measuring = True
        self.kernel.machine.mark_window()
        self.resilient.mark_window()
        self.io.ethernet.stats.mark_all()

    def run(self, warmup_cycles: int, measure_cycles: int) -> None:
        """Warm up, open the window, and run the measurement."""
        self.io.start()
        self.kernel.machine.start()
        sim = self.kernel.sim
        sim.run_until(sim.now + warmup_cycles)
        self.mark_window()
        sim.run_until(sim.now + measure_cycles)

    # -- readouts --------------------------------------------------------

    def classes(self) -> List[str]:
        return sorted(self.metrics)

    def class_report(self) -> Dict[str, Dict[str, Any]]:
        return {cls: self.metrics[cls].to_dict()
                for cls in self.classes()}

    def slo_failures(self) -> List[str]:
        """Every violated gate, as a stable human-readable list."""
        failures: List[str] = []
        for tier in self.topology.tiers:
            m = self.metrics[tier.request_class]
            slo = tier.slo
            if not (slo.p99_cycles or slo.success_rate):
                continue
            if m.requests == 0:
                failures.append(
                    f"{tier.request_class}: no requests completed "
                    f"in the window")
                continue
            if slo.p99_cycles:
                p99 = m.latency.percentile(99)
                if m.latency.count == 0 or p99 > slo.p99_cycles:
                    failures.append(
                        f"{tier.request_class}: p99 {p99} cycles "
                        f"exceeds budget {slo.p99_cycles}")
            if slo.success_rate and m.success_rate < slo.success_rate:
                failures.append(
                    f"{tier.request_class}: success rate "
                    f"{m.success_rate:.4f} below budget "
                    f"{slo.success_rate:.4f}")
        return failures
