"""Resilience policies wrapped around the Topaz RPC transport.

The Firefly's RPC layer (paper §4.1, §6) assumes every call completes;
real serving systems in front of it need the four classic defences —
deadlines, retries, circuit breakers, and load shedding — plus hedging
for the tail.  :class:`ResilientTransport` adds exactly those, as a
wrapper: the underlying :class:`~repro.topaz.rpc.RpcTransport` is
untouched, and an **unarmed** wrapper delegates straight through,
yielding the identical op sequence as a bare transport (the
equivalence test in ``tests/test_serving.py`` pins this).

Determinism rules of the house apply:

- Retry jitter draws only from the dedicated ``"serving"`` RNG stream
  (created only when the wrapper is armed), so arming the layer never
  perturbs any other stream and a given seed replays byte-identically.
- Every policy decision is emitted through the probe layer
  (``serve.retry``, ``serve.shed``, ``serve.hedge``, ``serve.breaker``,
  ``serve.late``) and the resilience waits carry dedicated block
  reasons (``device:backoff``, ``wait:hedge``) so the causal assembler
  attributes them as their own turnaround segments — still summing
  exactly (see ``repro.causal.assemble``).
- Deadlines are absolute sim times carried on the thread
  (``TopazThread.deadline``); ``ops.Fork`` children inherit them, so a
  nested call started inside a deadlined request can never be granted
  more budget than its parent has left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import StatSet
from repro.telemetry.probe import NULL_PROBE
from repro.topaz import ops


def _sleep(sim, cycles: int):
    """Device-call body: a pure timer (the backoff / hedge-delay wait)."""
    yield sim.timeout(cycles)


@dataclass(frozen=True)
class ResilienceParams:
    """Policy knobs for one :class:`ResilientTransport`.

    All cycle counts are simulator cycles (100 ns each).  A value of 0
    disables the corresponding policy, so the all-defaults instance is
    a plain pass-through even when armed.
    """

    #: An attempt slower than this is treated as failed (the client
    #: gave up on the reply); 0 disables lateness detection.
    attempt_timeout_cycles: int = 0
    #: Total attempts per call (1 = no retries).
    max_attempts: int = 1
    #: First retry backoff; doubles (times ``backoff_multiplier``) per
    #: subsequent retry, with multiplicative jitter on top.
    backoff_base_cycles: int = 2_000
    backoff_multiplier: float = 2.0
    #: Jitter fraction: the drawn wait is uniform in
    #: ``[base, base * (1 + jitter)]``.
    backoff_jitter: float = 0.5
    #: Per-call budget, measured from call start; 0 = none.  Combined
    #: (min) with any deadline inherited from the calling thread.
    deadline_cycles: int = 0
    #: Issue a second, racing attempt if the first has not completed
    #: after this many cycles; 0 disables hedging.  When enabled the
    #: hedged race replaces the serial retry loop.
    hedge_after_cycles: int = 0
    #: Admission control: calls admitted while this many are already in
    #: flight are shed; 0 = unlimited.
    max_in_flight: int = 0
    #: Admission control: calls arriving while the kernel run queue is
    #: at least this deep are shed; 0 disables the check.
    shed_ready_depth: int = 0
    #: Circuit breaker: consecutive failures on one server that trip
    #: its breaker open; 0 disables breakers.
    breaker_failure_threshold: int = 0
    #: How long a tripped breaker stays open before probing.
    breaker_open_cycles: int = 50_000
    #: Probes allowed through a half-open breaker.
    breaker_half_open_probes: int = 1

    def __post_init__(self) -> None:
        positive = ("max_attempts", "backoff_base_cycles",
                    "breaker_open_cycles", "breaker_half_open_probes")
        for field in positive:
            value = getattr(self, field)
            if value <= 0:
                raise ConfigurationError(
                    f"ResilienceParams.{field} must be positive, "
                    f"got {value!r}")
        non_negative = ("attempt_timeout_cycles", "deadline_cycles",
                        "hedge_after_cycles", "max_in_flight",
                        "shed_ready_depth", "breaker_failure_threshold",
                        "backoff_jitter")
        for field in non_negative:
            value = getattr(self, field)
            if value < 0:
                raise ConfigurationError(
                    f"ResilienceParams.{field} must be >= 0, "
                    f"got {value!r}")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"ResilienceParams.backoff_multiplier must be >= 1.0, "
                f"got {self.backoff_multiplier!r}")


class CircuitBreaker:
    """Per-server closed / open / half-open breaker.

    Pure bookkeeping over sim time — the owner calls :meth:`allow`
    before an attempt and :meth:`record` after, and emits telemetry
    for any ``(old, new)`` state transition the calls return.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("name", "threshold", "open_cycles", "half_open_probes",
                 "state", "failures", "opened_at", "probes", "trips")

    def __init__(self, name: str, threshold: int, open_cycles: int,
                 half_open_probes: int) -> None:
        self.name = name
        self.threshold = threshold
        self.open_cycles = open_cycles
        self.half_open_probes = half_open_probes
        self.state = self.CLOSED
        self.failures = 0          # consecutive, while closed
        self.opened_at = 0
        self.probes = 0            # in-flight half-open probes
        self.trips = 0

    def allow(self, now: int) -> Optional[tuple]:
        """May an attempt go to this server now?

        Returns ``None`` if refused, else a (possibly empty) tuple of
        ``(old, new)`` state transitions taken.
        """
        if self.state == self.CLOSED:
            return ()
        if self.state == self.OPEN:
            if now - self.opened_at < self.open_cycles:
                return None
            self.state = self.HALF_OPEN
            self.probes = 0
            return ((self.OPEN, self.HALF_OPEN),)
        # Half-open: a bounded number of probes may be in flight.
        if self.probes >= self.half_open_probes:
            return None
        return ()

    def note_attempt(self) -> None:
        if self.state == self.HALF_OPEN:
            self.probes += 1

    def record(self, ok: bool, now: int) -> Optional[tuple]:
        """Account one attempt result; returns transitions taken."""
        if ok:
            if self.state == self.CLOSED:
                self.failures = 0
                return ()
            # A successful half-open probe closes the breaker.
            old = self.state
            self.state = self.CLOSED
            self.failures = 0
            return ((old, self.CLOSED),)
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
            self.trips += 1
            return ((self.HALF_OPEN, self.OPEN),)
        if self.state == self.CLOSED:
            self.failures += 1
            if self.failures >= self.threshold:
                self.state = self.OPEN
                self.opened_at = now
                self.trips += 1
                return ((self.CLOSED, self.OPEN),)
        return ()


class CallOutcome:
    """What one resilient call experienced, returned to the caller."""

    __slots__ = ("status", "attempts", "retries", "hedged", "server",
                 "shed_reason", "start", "end")

    def __init__(self, status: str, attempts: int = 0, retries: int = 0,
                 hedged: bool = False, server: int = -1,
                 shed_reason: str = "", start: int = 0, end: int = 0) -> None:
        self.status = status          # "ok" | "shed" | "deadline"
        self.attempts = attempts
        self.retries = retries
        self.hedged = hedged
        self.server = server
        self.shed_reason = shed_reason
        self.start = start
        self.end = end

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"status": self.status, "attempts": self.attempts,
                "retries": self.retries, "hedged": self.hedged,
                "server": self.server, "shed_reason": self.shed_reason,
                "latency": self.latency}


class ResilientTransport:
    """Deadlines, retries, breakers, shedding and hedging over a pool.

    ``transports`` is the server pool: one
    :class:`~repro.topaz.rpc.RpcTransport` per remote server (they may
    share the controller — the pool then models distinct machines
    behind one wire).  ``armed=False`` constructs a wrapper that is
    *provably inert*: no RNG stream, no sync-object allocation, and
    :meth:`call` delegates to the first transport with an identical op
    sequence.
    """

    def __init__(self, kernel, transports,
                 params: Optional[ResilienceParams] = None,
                 armed: bool = True, stream_name: str = "serving") -> None:
        if not transports:
            raise ConfigurationError("ResilientTransport needs at least "
                                     "one underlying transport")
        self.kernel = kernel
        self.transports = list(transports)
        self.params = params or ResilienceParams()
        self.armed = armed
        self.stats = StatSet("serving")
        self.probe = NULL_PROBE
        self.breakers: List[Optional[CircuitBreaker]] = []
        self._rng = None
        self._in_flight = 0
        self._pick = 0
        self._hedge_mutex = None
        self._hedge_cond = None
        self._hedge_seq = 0
        if armed:
            p = self.params
            # The dedicated stream: retry jitter must never perturb any
            # other consumer of the machine's seed.
            self._rng = kernel.machine.streams.stream(stream_name)
            if p.breaker_failure_threshold > 0:
                self.breakers = [
                    CircuitBreaker(f"server{i}",
                                   p.breaker_failure_threshold,
                                   p.breaker_open_cycles,
                                   p.breaker_half_open_probes)
                    for i in range(len(self.transports))]
            if p.hedge_after_cycles > 0:
                # One shared rendezvous for all hedged calls: per-call
                # sync objects would bleed the shared-region allocator.
                # The condition is named "hedge" so the requester's
                # block reason is exactly ``wait:hedge`` — the causal
                # assembler's hedge_wait segment.
                self._hedge_mutex = kernel.mutex("hedge-mutex")
                self._hedge_cond = kernel.condition("hedge")

    # -- the call --------------------------------------------------------

    def call(self, cls: str = "rpc"):
        """Topaz program fragment: one resilient call (``yield from``).

        Returns a :class:`CallOutcome`; shed and deadline-exhausted
        calls return (never raise) so the caller always learns the
        fate of its request.
        """
        if not self.armed:
            result = yield from self.transports[0].call(cls=cls)
            return result
        outcome = yield from self._resilient_call(cls)
        return outcome

    def _resilient_call(self, cls: str):
        p = self.params
        sim = self.kernel.sim
        start = sim.now
        caller = yield ops.CurrentThread()
        ctx = self.kernel.causal.child(caller.ctx)

        # Admission control: shed before any work is queued.
        if p.shed_ready_depth > 0:
            depth = self.kernel.scheduler.ready_count
            if depth >= p.shed_ready_depth:
                return self._shed(cls, "ready-depth", depth, start)
        if p.max_in_flight > 0 and self._in_flight >= p.max_in_flight:
            return self._shed(cls, "in-flight", self._in_flight, start)

        # Deadline: own budget combined with any inherited one.
        deadline = start + p.deadline_cycles if p.deadline_cycles else None
        if caller.deadline is not None:
            deadline = (caller.deadline if deadline is None
                        else min(deadline, caller.deadline))
        saved = caller.deadline
        caller.deadline = deadline
        self._in_flight += 1
        try:
            if p.hedge_after_cycles > 0:
                outcome = yield from self._hedged_call(cls, caller, deadline)
            else:
                outcome = yield from self._serial_call(cls, deadline)
        finally:
            self._in_flight -= 1
            caller.deadline = saved
        outcome.start = start
        outcome.end = sim.now

        self.stats.incr("calls")
        self.stats.incr("ok" if outcome.ok else f"failed.{outcome.status}")
        if self.probe.active:
            # The outer request span: named rpc.call so the causal
            # assembler treats the whole resilient call — attempts,
            # backoffs, hedge waits — as one request.
            self.probe.complete("rpc.call", "serve", start, sim.now - start,
                                thread=caller.name, tid=caller.tid,
                                trace=ctx.trace_id, span=ctx.span_id,
                                parent_span=ctx.parent_id, cls=cls,
                                status=outcome.status,
                                attempts=outcome.attempts)
        return outcome

    def _shed(self, cls: str, reason: str, depth: int,
              start: int) -> CallOutcome:
        self.stats.incr("shed")
        self.stats.incr(f"shed.{reason}")
        if self.probe.active:
            self.probe.instant("serve.shed", "serve", cls=cls,
                               reason=reason, depth=depth)
        return CallOutcome("shed", shed_reason=reason,
                           start=start, end=start)

    # -- serial attempts with backoff ------------------------------------

    def _serial_call(self, cls: str, deadline: Optional[int]):
        p = self.params
        sim = self.kernel.sim
        attempts = retries = 0
        backoff = p.backoff_base_cycles
        while True:
            if deadline is not None and sim.now >= deadline:
                return CallOutcome("deadline", attempts, retries)
            idx = self._pick_server(sim.now)
            if idx is None:
                return self._shed(cls, "breaker-open",
                                  len(self.transports), sim.now)
            breaker = self.breakers[idx] if self.breakers else None
            if breaker is not None:
                breaker.note_attempt()
            attempts += 1
            t0 = sim.now
            yield from self.transports[idx].call(cls=cls)
            elapsed = sim.now - t0
            late = (p.attempt_timeout_cycles > 0
                    and elapsed > p.attempt_timeout_cycles)
            self._record_attempt(idx, not late)
            if not late:
                return CallOutcome("ok", attempts, retries, server=idx)
            self.stats.incr("late_attempts")
            if self.probe.active:
                self.probe.instant("serve.late", "serve", cls=cls,
                                   server=idx, elapsed=elapsed)
            if attempts >= p.max_attempts:
                return CallOutcome("deadline", attempts, retries,
                                   server=idx)
            wait = backoff + int(backoff * p.backoff_jitter
                                 * self._rng.random())
            if deadline is not None:
                left = deadline - sim.now
                if left <= 0:
                    return CallOutcome("deadline", attempts, retries,
                                       server=idx)
                wait = min(wait, left)
            retries += 1
            self.stats.incr("retries")
            if self.probe.active:
                self.probe.instant("serve.retry", "serve", cls=cls,
                                   attempt=attempts, backoff=wait,
                                   server=idx)
            if wait > 0:
                yield ops.DeviceCall(_sleep(sim, wait), label="backoff")
            backoff = int(backoff * p.backoff_multiplier)

    # -- hedged attempts -------------------------------------------------

    def _hedged_call(self, cls: str, caller, deadline: Optional[int]):
        """Race a primary attempt against a delayed hedge.

        Two forked racer threads share one rendezvous (the transport's
        hedge mutex/condition); the requester parks on ``wait:hedge``
        until the first racer finishes.  The loser completes in the
        background — its cost is the hedging waste, visible in the
        underlying transport stats.
        """
        sim = self.kernel.sim
        primary = self._pick_server(sim.now)
        if primary is None:
            return self._shed(cls, "breaker-open",
                              len(self.transports), sim.now)
        state = {"done": False, "winner": -1, "hedged": False}
        seq = self._hedge_seq
        self._hedge_seq += 1
        yield ops.Fork(self._primary_racer, state, primary, cls,
                       name=f"hedge{seq}-primary")
        yield ops.Fork(self._hedge_racer, state, primary, cls,
                       name=f"hedge{seq}-hedge")
        yield ops.Lock(self._hedge_mutex)
        while not state["done"]:
            yield ops.Wait(self._hedge_cond, self._hedge_mutex)
        yield ops.Unlock(self._hedge_mutex)
        attempts = 2 if state["hedged"] else 1
        return CallOutcome("ok", attempts, hedged=state["hedged"],
                           server=state["winner"])

    def _primary_racer(self, state, idx: int, cls: str):
        breaker = self.breakers[idx] if self.breakers else None
        if breaker is not None:
            breaker.note_attempt()
        yield from self.transports[idx].call(cls=cls)
        self._record_attempt(idx, True)
        yield from self._finish_race(state, idx)

    def _hedge_racer(self, state, primary: int, cls: str):
        sim = self.kernel.sim
        yield ops.DeviceCall(_sleep(sim, self.params.hedge_after_cycles),
                             label="hedge-delay")
        if state["done"]:
            return            # primary already won; no hedge issued
        idx = self._pick_server(sim.now, avoid=primary)
        if idx is None:
            return
        state["hedged"] = True
        self.stats.incr("hedges")
        if self.probe.active:
            self.probe.instant("serve.hedge", "serve", cls=cls, server=idx)
        breaker = self.breakers[idx] if self.breakers else None
        if breaker is not None:
            breaker.note_attempt()
        yield from self.transports[idx].call(cls=cls)
        self._record_attempt(idx, True)
        yield from self._finish_race(state, idx)

    def _finish_race(self, state, idx: int):
        yield ops.Lock(self._hedge_mutex)
        if not state["done"]:
            state["done"] = True
            state["winner"] = idx
        else:
            self.stats.incr("hedge_waste")
        yield ops.Broadcast(self._hedge_cond)
        yield ops.Unlock(self._hedge_mutex)

    # -- server selection and breaker accounting -------------------------

    def _pick_server(self, now: int,
                     avoid: Optional[int] = None) -> Optional[int]:
        """Round-robin over servers whose breaker admits an attempt."""
        n = len(self.transports)
        for off in range(n):
            idx = (self._pick + off) % n
            if avoid is not None and idx == avoid and n > 1:
                continue
            breaker = self.breakers[idx] if self.breakers else None
            if breaker is None:
                self._pick = (idx + 1) % n
                return idx
            transitions = breaker.allow(now)
            if transitions is None:
                continue
            self._emit_breaker(breaker, transitions)
            self._pick = (idx + 1) % n
            return idx
        return None

    def _record_attempt(self, idx: int, ok: bool) -> None:
        breaker = self.breakers[idx] if self.breakers else None
        if breaker is None:
            return
        transitions = breaker.record(ok, self.kernel.sim.now)
        self._emit_breaker(breaker, transitions or ())

    def _emit_breaker(self, breaker: CircuitBreaker, transitions) -> None:
        for (old, new) in transitions:
            self.stats.incr("breaker_transitions")
            if self.probe.active:
                self.probe.instant("serve.breaker", "serve",
                                   server=breaker.name,
                                   **{"from": old, "to": new})

    # -- measurement -----------------------------------------------------

    def mark_window(self) -> None:
        self.stats.mark_all()
        for transport in self.transports:
            transport.mark_window()

    def counters(self) -> Dict[str, int]:
        """Windowed policy counters, fixed keys (report-stable)."""
        return {key: self.stats[key].windowed
                for key in ("calls", "ok", "failed.deadline", "shed",
                            "retries", "late_attempts", "hedges",
                            "hedge_waste", "breaker_transitions")}
