"""The resilient RPC serving layer (deadlines, retries, breakers,
shedding, hedging) and the open-loop workload engine that exercises it
under chaos.  See ``docs/SERVING.md``.
"""

from repro.serving.policies import (CallOutcome, CircuitBreaker,
                                    ResilienceParams, ResilientTransport)
from repro.serving.workload import (ArrivalSpec, ClassMetrics, ServerSpec,
                                    ServingWorkload, SloSpec, TierSpec,
                                    Topology, TOPOLOGY_SCHEMA)
from repro.serving.engine import (SERVE_SCENARIOS, SERVE_SCHEMA,
                                  ServeHorizon, ServeOutcome, ServeReport,
                                  ServeScenario, run_serve_campaign,
                                  serve_scenario_names)

__all__ = [
    "ArrivalSpec", "CallOutcome", "CircuitBreaker", "ClassMetrics",
    "ResilienceParams", "ResilientTransport", "SERVE_SCENARIOS",
    "SERVE_SCHEMA", "ServeHorizon", "ServeOutcome", "ServeReport",
    "ServeScenario", "ServerSpec", "ServingWorkload", "SloSpec",
    "TierSpec", "Topology", "TOPOLOGY_SCHEMA", "run_serve_campaign",
    "serve_scenario_names",
]
