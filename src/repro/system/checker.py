"""The runtime coherence invariant checker.

"The most important feature of the Firefly caches is that they provide
a global shared memory in which data written by one processor is
immediately available to other processors."  The checker verifies the
invariants that statement implies, at any quiescent instant (between
bus transactions — which, in this model, is any time the caller runs).

The invariant *definitions* (I1 single writer, I2 copy agreement, I3
memory currency, I4 no silent-write state while shared, including the
stale-Shared allowance) live in :mod:`repro.verify.invariants`; this
class merely gathers the live machine's cached copies and applies the
shared predicates.  The static model checker
(:mod:`repro.verify.model`) applies the *same* predicates to every
reachable global state, so a property it certifies is exactly the
property audited at run time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.line import LineState
from repro.common.errors import CoherenceViolation
from repro.verify.invariants import Violation, check_word, iter_violations


class CoherenceChecker:
    """Audits a machine's caches + memory against the invariants."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _gather(self) -> Dict[int, List[Tuple[int, LineState, int]]]:
        """word address -> [(cache_id, state, value)] over all caches."""
        holders: Dict[int, List[Tuple[int, LineState, int]]] = {}
        for cache in self.machine.caches:
            wpl = cache.geometry.words_per_line
            for index, line in cache.valid_lines():
                base = cache.geometry.rebuild_address(index, line.tag)
                for offset in range(wpl):
                    holders.setdefault(base + offset, []).append(
                        (cache.snooper_id, line.state, line.data[offset]))
        return holders

    def check(self) -> int:
        """Audit every cached word; return the number of words audited.

        Raises :class:`CoherenceViolation` on the first failure.
        """
        silent_states = self.machine.protocol.silent_write_states
        holders = self._gather()
        for address, copies in holders.items():
            self._check_word(address, copies, silent_states)
        return len(holders)

    def _check_word(self, address: int,
                    copies: List[Tuple[int, LineState, int]],
                    silent_states: frozenset) -> None:
        memory_value = self.machine.memory.peek(address)
        violation = check_word(address, copies, memory_value, silent_states)
        if violation is not None:
            raise CoherenceViolation(address, violation.detail)

    def violations(self) -> List[Violation]:
        """Audit every cached word, returning *all* invariant failures.

        Unlike :meth:`check` this never raises: the chaos harness polls
        it to measure *when* injected coherence damage becomes visible,
        and needs the full damage inventory for fault attribution.
        """
        silent_states = self.machine.protocol.silent_write_states
        holders = self._gather()
        found: List[Violation] = []
        for address in sorted(holders):
            memory_value = self.machine.memory.peek(address)
            for invariant, detail in iter_violations(
                    holders[address], memory_value, silent_states):
                found.append(Violation(invariant, address, detail))
        return found

    def audit_word(self, address: int) -> List[Tuple[int, str, int]]:
        """All cached copies of one word, for debugging."""
        report = []
        for cache in self.machine.caches:
            value = cache.peek(address)
            if value is not None:
                report.append((cache.snooper_id,
                               cache.state_of(address).value, value))
        return report
