"""The coherence invariant checker.

"The most important feature of the Firefly caches is that they provide
a global shared memory in which data written by one processor is
immediately available to other processors."  The checker verifies the
invariants that statement implies, at any quiescent instant (between
bus transactions — which, in this model, is any time the caller runs):

I1. **Single writer** — at most one cache holds a given word dirty.
I2. **Copy agreement** — every valid cached copy of a word holds the
    same value (true for update protocols by construction; for
    invalidate protocols because sharers are clean copies of memory).
I3. **Memory currency** — if *no* cached copy of a word is dirty, every
    cached copy equals main memory.
I4. **No silent-write state while shared** — if two or more caches hold
    a word, none of them may be in a state whose write hits skip the
    bus (the protocol's ``silent_write_states``): a local write there
    would leave the other copies stale.  The converse need not hold: a
    Shared tag may be stale-true ("some other cache *may* also contain
    the line"), costing at most one redundant write-through.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.line import LineState
from repro.common.errors import CoherenceViolation


class CoherenceChecker:
    """Audits a machine's caches + memory against the invariants."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _gather(self) -> Dict[int, List[Tuple[int, LineState, int]]]:
        """word address -> [(cache_id, state, value)] over all caches."""
        holders: Dict[int, List[Tuple[int, LineState, int]]] = {}
        for cache in self.machine.caches:
            wpl = cache.geometry.words_per_line
            for index, line in cache.valid_lines():
                base = cache.geometry.rebuild_address(index, line.tag)
                for offset in range(wpl):
                    holders.setdefault(base + offset, []).append(
                        (cache.snooper_id, line.state, line.data[offset]))
        return holders

    def check(self) -> int:
        """Audit every cached word; return the number of words audited.

        Raises :class:`CoherenceViolation` on the first failure.
        """
        silent_states = self.machine.protocol.silent_write_states
        holders = self._gather()
        for address, copies in holders.items():
            self._check_word(address, copies, silent_states)
        return len(holders)

    def _check_word(self, address: int,
                    copies: List[Tuple[int, LineState, int]],
                    silent_states: frozenset) -> None:
        dirty = [(cid, state) for cid, state, _ in copies if state.is_dirty]
        if len(dirty) > 1:
            raise CoherenceViolation(
                address, f"multiple dirty holders: {dirty}")

        values = {value for _, _, value in copies}
        if len(values) > 1:
            detail = ", ".join(f"cache{cid}[{state.value}]={value}"
                               for cid, state, value in copies)
            raise CoherenceViolation(address, f"copies disagree: {detail}")

        if not dirty:
            memory_value = self.machine.memory.peek(address)
            cached_value = copies[0][2]
            if cached_value != memory_value:
                raise CoherenceViolation(
                    address,
                    f"all copies clean ({cached_value}) but memory holds "
                    f"{memory_value}")

        if len(copies) > 1:
            for cid, state, _ in copies:
                if state in silent_states:
                    raise CoherenceViolation(
                        address,
                        f"cache{cid} holds {state.value} (silent-write "
                        f"state) while {len(copies) - 1} other holder(s) "
                        f"exist")

    def audit_word(self, address: int) -> List[Tuple[int, str, int]]:
        """All cached copies of one word, for debugging."""
        report = []
        for cache in self.machine.caches:
            value = cache.peek(address)
            if value is not None:
                report.append((cache.snooper_id,
                               cache.state_of(address).value, value))
        return report
