"""Measurement collection: the counters the paper reports.

Rates are in **K references per second** to match Table 2's units.
Bus load L, miss rate M, dirty fraction D and TPI use the paper's
definitions:

- L — fraction of non-idle MBus cycles over the window;
- M — misses / CPU references presented to the off-chip cache;
- D — fraction of valid cache lines that would need a victim write;
- TPI — ticks per instruction realised over the window.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List

from repro.common.stats import ratio
from repro.common.types import SECONDS_PER_CYCLE


@dataclass(frozen=True)
class CpuMetrics:
    """One processor's windowed measurements."""

    cpu_id: int
    instructions: int
    ifetches: int
    data_reads: int
    data_writes: int
    read_krate: float
    write_krate: float
    miss_rate: float
    tpi: float
    idle_fraction: float

    @property
    def references(self) -> int:
        return self.ifetches + self.data_reads + self.data_writes

    @property
    def total_krate(self) -> float:
        return self.read_krate + self.write_krate

    @property
    def read_write_ratio(self) -> float:
        return ratio(self.read_krate, self.write_krate)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (field values only, properties recomputable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CpuMetrics":
        """Rebuild from :meth:`to_dict` output (extra keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class MachineMetrics:
    """Whole-machine windowed measurements (one ``run()`` call)."""

    window_cycles: int
    cpus: List[CpuMetrics]
    bus_load: float
    bus_ops: int
    bus_reads_memory: int
    bus_reads_cache: int
    bus_writes_mshared: int
    bus_writes_not_mshared: int
    bus_victim_writes: int
    dirty_fraction: float
    qbus_load: float = 0.0

    @property
    def window_seconds(self) -> float:
        return self.window_cycles * SECONDS_PER_CYCLE

    @property
    def processors(self) -> int:
        return len(self.cpus)

    @property
    def bus_reads(self) -> int:
        return self.bus_reads_memory + self.bus_reads_cache

    @property
    def bus_writes(self) -> int:
        return (self.bus_writes_mshared + self.bus_writes_not_mshared
                + self.bus_victim_writes)

    @property
    def bus_krate(self) -> float:
        """MBus operations per second, in K (Table 2's 'MBus Total')."""
        return self.bus_ops / self.window_seconds / 1e3

    @property
    def mean_cpu_krate(self) -> float:
        """Per-CPU mean total reference K-rate."""
        if not self.cpus:
            return 0.0
        return sum(c.total_krate for c in self.cpus) / len(self.cpus)

    @property
    def mean_read_krate(self) -> float:
        if not self.cpus:
            return 0.0
        return sum(c.read_krate for c in self.cpus) / len(self.cpus)

    @property
    def mean_write_krate(self) -> float:
        if not self.cpus:
            return 0.0
        return sum(c.write_krate for c in self.cpus) / len(self.cpus)

    @property
    def mean_miss_rate(self) -> float:
        if not self.cpus:
            return 0.0
        return sum(c.miss_rate for c in self.cpus) / len(self.cpus)

    @property
    def mean_tpi(self) -> float:
        busy = [c.tpi for c in self.cpus if c.tpi > 0]
        if not busy:
            return 0.0
        return sum(busy) / len(busy)

    @property
    def total_instruction_krate(self) -> float:
        instructions = sum(c.instructions for c in self.cpus)
        return instructions / self.window_seconds / 1e3

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; one schema shared with telemetry samples.

        Benchmark result files and telemetry exports both serialise
        through this, so downstream tooling parses a single format.
        """
        data = asdict(self)
        data["cpus"] = [cpu.to_dict() for cpu in self.cpus]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MachineMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        names = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        kwargs["cpus"] = [CpuMetrics.from_dict(c) for c in data.get("cpus", [])]
        return cls(**kwargs)

    def summary(self) -> str:
        """A human-readable block, in the spirit of Table 2."""
        lines = [
            f"window: {self.window_cycles} cycles "
            f"({self.window_seconds * 1e3:.2f} ms simulated)",
            f"bus load L = {self.bus_load:.3f}   "
            f"MBus total = {self.bus_krate:.0f} K ops/sec",
            f"MBus reads: {self.bus_reads} "
            f"(memory {self.bus_reads_memory}, cache {self.bus_reads_cache})",
            f"MBus writes: MShared {self.bus_writes_mshared}, "
            f"not-MShared {self.bus_writes_not_mshared}, "
            f"victims {self.bus_victim_writes}",
            f"dirty fraction D = {self.dirty_fraction:.3f}",
        ]
        for cpu in self.cpus:
            lines.append(
                f"  cpu{cpu.cpu_id}: reads {cpu.read_krate:7.0f}K/s  "
                f"writes {cpu.write_krate:6.0f}K/s  M={cpu.miss_rate:.3f}  "
                f"TPI={cpu.tpi:5.2f}  idle={cpu.idle_fraction:.0%}")
        return "\n".join(lines)


def collect_metrics(machine, window_cycles: int) -> MachineMetrics:
    """Read every component's windowed counters into a snapshot."""
    cpus = []
    for cpu, cache in zip(machine.cpus, machine.caches):
        stats = cache.stats
        hits = sum(stats[k].windowed for k in
                   ("ifetch.hit", "dread.hit", "dwrite.hit") if k in stats)
        misses = sum(stats[k].windowed for k in
                     ("ifetch.miss", "dread.miss", "dwrite.miss") if k in stats)
        seconds = window_cycles * SECONDS_PER_CYCLE
        cpus.append(CpuMetrics(
            cpu_id=cpu.cpu_id,
            instructions=cpu.stats["instructions"].windowed,
            ifetches=cpu.stats["refs.ifetch"].windowed,
            data_reads=cpu.stats["refs.dread"].windowed,
            data_writes=cpu.stats["refs.dwrite"].windowed,
            read_krate=(cpu.stats["refs.ifetch"].windowed
                        + cpu.stats["refs.dread"].windowed) / seconds / 1e3,
            write_krate=cpu.stats["refs.dwrite"].windowed / seconds / 1e3,
            miss_rate=ratio(misses, hits + misses),
            tpi=cpu.measured_tpi(),
            idle_fraction=ratio(cpu.stats["idle_cycles"].windowed,
                                window_cycles),
        ))

    bus = machine.mbus.stats
    dirty = [cache.dirty_fraction() for cache in machine.caches]
    return MachineMetrics(
        window_cycles=window_cycles,
        cpus=cpus,
        bus_load=machine.mbus.load(),
        bus_ops=bus.get_windowed("ops"),
        bus_reads_memory=bus.get_windowed("read.memory_supplied"),
        bus_reads_cache=bus.get_windowed("read.cache_supplied"),
        bus_writes_mshared=bus.get_windowed("write.mshared"),
        bus_writes_not_mshared=bus.get_windowed("write.not_mshared"),
        bus_victim_writes=bus.get_windowed("write.victim"),
        dirty_fraction=sum(dirty) / len(dirty) if dirty else 0.0,
        qbus_load=machine.qbus.load() if machine.qbus is not None else 0.0,
    )
