"""Machine configuration.

A :class:`FireflyConfig` fully describes a machine: generation
(MicroVAX or CVAX), processor count, memory size, cache geometry,
coherence protocol, prefetcher behaviour, workload shape and the
random seed.  Validation happens here, eagerly, so an inconsistent
machine is impossible to build.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import CacheGeometry
from repro.cache.protocols import available_protocols
from repro.common.errors import ConfigurationError
from repro.processor.cpu import PrefetchConfig
from repro.processor.mix import VAX_MIX, ReferenceMix
from repro.processor.refgen import WorkloadShape
from repro.processor.timing import CVAX_TIMING, MICROVAX_TIMING, ProcessorTiming


class Generation(enum.Enum):
    """The two Firefly hardware generations."""

    MICROVAX = "microvax"
    CVAX = "cvax"

    @property
    def timing(self) -> ProcessorTiming:
        return MICROVAX_TIMING if self is Generation.MICROVAX else CVAX_TIMING

    @property
    def default_cache(self) -> CacheGeometry:
        return (CacheGeometry.MICROVAX if self is Generation.MICROVAX
                else CacheGeometry.CVAX)

    @property
    def default_memory_megabytes(self) -> int:
        return 16 if self is Generation.MICROVAX else 32

    @property
    def max_memory_megabytes(self) -> int:
        return 16 if self is Generation.MICROVAX else 128


@dataclass(frozen=True)
class FireflyConfig:
    """Everything needed to build a :class:`~repro.system.FireflyMachine`.

    The defaults describe the paper's "standard five-processor
    configuration" of the original machine: five MicroVAX CPUs (one of
    which is the I/O processor), 16 KB write-back snoopy caches running
    the Firefly protocol, and 16 MB of memory.
    """

    processors: int = 5
    generation: Generation = Generation.MICROVAX
    memory_megabytes: Optional[int] = None
    protocol: str = "firefly"
    cache_geometry: Optional[CacheGeometry] = None
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    mix: ReferenceMix = VAX_MIX
    workload: WorkloadShape = field(default_factory=WorkloadShape)
    shared_region_words: int = 512
    seed: int = 1987
    io_enabled: bool = False
    trace_bus: bool = False

    MAX_PROCESSORS = 16

    def __post_init__(self) -> None:
        if not 1 <= self.processors <= self.MAX_PROCESSORS:
            raise ConfigurationError(
                f"processor count must be 1..{self.MAX_PROCESSORS}, "
                f"got {self.processors}")
        if self.protocol not in available_protocols():
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; "
                f"known: {', '.join(available_protocols())}")
        if self.memory_megabytes is not None:
            if self.memory_megabytes > self.generation.max_memory_megabytes:
                raise ConfigurationError(
                    f"{self.generation.value} Firefly supports at most "
                    f"{self.generation.max_memory_megabytes} MB, "
                    f"got {self.memory_megabytes}")
        if self.shared_region_words < 1:
            raise ConfigurationError("shared region must be non-empty")

    @property
    def effective_memory_megabytes(self) -> int:
        return (self.memory_megabytes
                if self.memory_megabytes is not None
                else self.generation.default_memory_megabytes)

    @property
    def effective_cache(self) -> CacheGeometry:
        return (self.cache_geometry
                if self.cache_geometry is not None
                else self.generation.default_cache)

    @property
    def timing(self) -> ProcessorTiming:
        return self.generation.timing

    def with_changes(self, **overrides) -> "FireflyConfig":
        """A modified copy — the sweep helper used by the benches.

        >>> FireflyConfig().with_changes(processors=9).processors
        9
        """
        from dataclasses import replace
        return replace(self, **overrides)
