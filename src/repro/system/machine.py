"""The machine builder: assembles a complete Firefly.

A :class:`FireflyMachine` wires together memory modules, the MBus, one
snoopy cache and CPU per processor slot, the optional QBus I/O
subsystem behind processor 0 (the I/O processor on the primary board),
and per-CPU reference sources.

By default every CPU runs the synthetic calibrated workload
(:class:`~repro.processor.refgen.SyntheticReferenceSource`); callers
may supply a ``source_factory`` to run anything else (the Topaz runtime
does this to execute real thread programs).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.bus.mbus import MBus
from repro.bus.qbus import QBus
from repro.bus.signals import SignalTrace
from repro.cache.cache import SnoopyCache
from repro.cache.protocols import protocol_by_name
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.rng import StreamFactory
from repro.memory.main_memory import MainMemory
from repro.processor.cpu import Processor, ReferenceSource
from repro.processor.refgen import (
    RegionLayout,
    SharedRegion,
    SyntheticReferenceSource,
)
from repro.system.config import FireflyConfig, Generation
from repro.system.metrics import MachineMetrics, collect_metrics
from repro.telemetry.probe import NULL_PROBE

SourceFactory = Callable[[int, "FireflyMachine"], ReferenceSource]

_MIN_CPU_SPAN_WORDS = 16384


class FireflyMachine:
    """A fully assembled Firefly system ready to simulate.

    Parameters
    ----------
    config:
        The machine description.
    source_factory:
        Optional ``f(cpu_id, machine) -> ReferenceSource`` override.
        When omitted, each CPU gets a synthetic calibrated source with
        its own private code/heap regions plus the machine-wide shared
        region.
    """

    def __init__(self, config: FireflyConfig,
                 source_factory: Optional[SourceFactory] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.config = config
        # Multi-machine experiments (e.g. real two-machine RPC) place
        # several Fireflies on one simulator; by default each machine
        # owns its own clock.
        self.sim = sim if sim is not None else Simulator()
        self.streams = StreamFactory(config.seed)
        geometry = config.effective_cache

        self.memory = self._build_memory()
        self.trace = SignalTrace() if config.trace_bus else None
        self.mbus = MBus(self.sim, self.memory,
                         words_per_line=geometry.words_per_line,
                         trace=self.trace)
        self.protocol = protocol_by_name(config.protocol)

        self.shared_region = self._place_shared_region()
        self._cpu_span = self._compute_cpu_span()

        self.caches: List[SnoopyCache] = []
        self.cpus: List[Processor] = []
        factory = source_factory or self._default_source
        for cpu_id in range(config.processors):
            cache = SnoopyCache(self.mbus, self.protocol, cpu_id, geometry)
            self.caches.append(cache)
        for cpu_id in range(config.processors):
            source = factory(cpu_id, self)
            rng = (self.streams.stream(f"cpu{cpu_id}.prefetch")
                   if config.prefetch.enabled else None)
            cpu = Processor(self.sim, cpu_id, config.timing,
                            self.caches[cpu_id], source,
                            prefetch=config.prefetch, rng=rng)
            self.cpus.append(cpu)

        self.qbus: Optional[QBus] = None
        if config.io_enabled:
            self.qbus = QBus(self.sim, self.io_cache)

        #: Telemetry probe; inert unless a TelemetryHub is attached.
        self.probe = NULL_PROBE
        self._started = False
        self._failed_cpus: List[int] = []

    # -- construction helpers ------------------------------------------

    def _build_memory(self) -> MainMemory:
        config = self.config
        geometry = config.effective_cache
        megabytes = config.effective_memory_megabytes
        if config.generation is Generation.MICROVAX:
            return MainMemory.standard_microvax(
                megabytes, words_per_line=geometry.words_per_line)
        return MainMemory.standard_cvax(
            megabytes, words_per_line=geometry.words_per_line)

    def _place_shared_region(self) -> SharedRegion:
        words = self.config.shared_region_words
        total = self.memory.total_words
        base = total - words
        # Align down to a line boundary so sharing statistics are clean.
        wpl = self.config.effective_cache.words_per_line
        base = (base // wpl) * wpl
        if base <= 0:
            raise ConfigurationError("shared region does not fit in memory")
        return SharedRegion(base, words)

    def _compute_cpu_span(self) -> int:
        available = self.shared_region.base_word
        span = available // self.config.processors
        if span < _MIN_CPU_SPAN_WORDS:
            raise ConfigurationError(
                f"memory too small for {self.config.processors} private "
                f"regions (span would be {span} words)")
        return min(span, 262144)

    def layout_for(self, cpu_id: int) -> RegionLayout:
        """The private code/heap regions assigned to one CPU."""
        base = cpu_id * self._cpu_span
        code_words = self._cpu_span // 4
        heap_words = self._cpu_span // 2
        return RegionLayout(code_base=base, code_words=code_words,
                            heap_base=base + code_words,
                            heap_words=heap_words)

    def _default_source(self, cpu_id: int,
                        machine: "FireflyMachine") -> ReferenceSource:
        return SyntheticReferenceSource(
            rng=self.streams.stream(f"cpu{cpu_id}.refs"),
            layout=self.layout_for(cpu_id),
            shared=self.shared_region,
            shape=self.config.workload,
            mix=self.config.mix)

    # -- convenience accessors ---------------------------------------------

    @property
    def io_cache(self) -> SnoopyCache:
        """Processor 0's cache — all DMA flows through it."""
        return self.caches[0]

    @property
    def io_cpu(self) -> Processor:
        """Processor 0 — the one CPU with QBus access."""
        return self.cpus[0]

    # -- running --------------------------------------------------------------

    def start(self) -> None:
        """Launch every CPU process (idempotent)."""
        if self._started:
            return
        for cpu in self.cpus:
            cpu.start()
        self._started = True

    # -- graceful degradation ------------------------------------------

    @property
    def failed_cpus(self) -> Tuple[int, ...]:
        """CPU ids offlined so far, in failure order."""
        return tuple(self._failed_cpus)

    @property
    def online_cpus(self) -> List[Processor]:
        """CPUs still running (construction order)."""
        return [cpu for cpu in self.cpus if not cpu.failed]

    def offline_cpu(self, cpu_id: int, absorb: bool = True):
        """Fail one CPU board and recover gracefully; returns a Process.

        The paper's availability story — "a multiprocessor can be
        structured to continue operation in the face of failures of
        individual processors" — maps to three steps: stop the board,
        sweep its cache's dirty lines back to memory (as ordinary
        victim write-backs the survivors snoop), and detach it from the
        snoop fan-out.  With ``absorb=True`` the board's reference
        stream is then interleaved into the least-loaded survivor
        (synthetic workloads); the Topaz layer passes ``absorb=False``
        and re-queues the dead board's thread itself.

        Processor 0 cannot be offlined: it is the I/O processor on the
        primary board, and the QBus (hence all I/O) dies with it.
        """
        if not 0 <= cpu_id < len(self.cpus):
            raise ConfigurationError(f"no CPU {cpu_id} in this machine")
        if cpu_id == 0:
            raise ConfigurationError(
                "cannot offline CPU 0: it is the I/O processor on the "
                "primary board (the QBus has no other master)")
        cpu = self.cpus[cpu_id]
        if cpu.failed:
            raise ConfigurationError(f"CPU {cpu_id} is already offline")
        cache = self.caches[cpu_id]
        cpu.fail()
        self._failed_cpus.append(cpu_id)
        if self.probe.active:
            self.probe.instant("fault.cpu_fail", "machine", cpu=cpu_id)

        def _offline():
            written = yield from cache.flush_lines()
            self.mbus.detach_snooper(cache.snooper_id)
            if absorb:
                self._absorb_orphan(cpu_id)
            if self.probe.active:
                self.probe.instant("fault.cpu_offlined", "machine",
                                   cpu=cpu_id, writebacks=written)
            return written

        return self.sim.process(_offline(), name=f"offline{cpu_id}")

    def _absorb_orphan(self, cpu_id: int) -> Processor:
        """Hand the failed CPU's reference stream to a survivor."""
        survivors = self.online_cpus
        if not survivors:  # pragma: no cover - CPU 0 can never fail
            raise ConfigurationError("no surviving CPU to absorb work")
        survivor = min(
            survivors,
            key=lambda c: (c.stats.counter("instructions").total, c.cpu_id))
        survivor.absorb_source(self.cpus[cpu_id].source)
        return survivor

    def mark_window(self) -> None:
        """Open a measurement window on every component."""
        self.mbus.mark_window()
        if self.qbus is not None:
            self.qbus.mark_window()
        for cache in self.caches:
            cache.stats.mark_all()
        for cpu in self.cpus:
            cpu.mark_window()

    def run(self, warmup_cycles: int = 100_000,
            measure_cycles: int = 400_000) -> MachineMetrics:
        """Warm up, open a window, measure, and collect metrics.

        The warm-up mirrors the paper's methodology: Table 2's counters
        "span several minutes of execution of the target program",
        i.e. steady state, not cold caches.
        """
        if warmup_cycles < 0 or measure_cycles <= 0:
            raise ConfigurationError("invalid warmup/measure horizon")
        self.start()
        if self.probe.active:
            self.probe.instant("phase.warmup", "machine",
                               cycles=warmup_cycles)
        self.sim.run_until(self.sim.now + warmup_cycles)
        self.mark_window()
        start = self.sim.now
        if self.probe.active:
            self.probe.instant("phase.measure", "machine",
                               cycles=measure_cycles)
        self.sim.run_until(start + measure_cycles)
        if self.probe.active:
            self.probe.instant("phase.end", "machine")
        return collect_metrics(self, window_cycles=measure_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cfg = self.config
        return (f"<FireflyMachine {cfg.processors}x {cfg.timing.name} "
                f"{cfg.effective_memory_megabytes}MB {cfg.protocol}>")
