"""System assembly: configurations, the machine builder, and metrics.

This is the level a library user normally touches::

    from repro.system import FireflyConfig, FireflyMachine

    machine = FireflyMachine(FireflyConfig(processors=5))
    metrics = machine.run(warmup_cycles=200_000, measure_cycles=500_000)
    print(metrics.summary())
"""

from repro.system.checker import CoherenceChecker
from repro.system.config import FireflyConfig, Generation
from repro.system.machine import FireflyMachine
from repro.system.metrics import CpuMetrics, MachineMetrics

__all__ = [
    "CoherenceChecker",
    "CpuMetrics",
    "FireflyConfig",
    "FireflyMachine",
    "Generation",
    "MachineMetrics",
]
