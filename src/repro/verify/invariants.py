"""The I1–I4 coherence invariants, as pure predicates.

One definition shared by both checkers: the runtime
:class:`~repro.system.checker.CoherenceChecker` audits the live caches
of a particular simulation run, and the static
:class:`~repro.verify.model.ModelChecker` audits every *reachable*
global state of an N-cache system.  A divergence between what the two
enforce would make "verified" meaningless, so both call
:func:`check_word`.

The invariants formalise the paper's coherence claim ("data written by
one processor is immediately available to other processors"):

I1. **Single writer** — at most one cache holds a given word dirty.
I2. **Copy agreement** — every valid cached copy of a word holds the
    same value.
I3. **Memory currency** — if no cached copy of a word is dirty, every
    cached copy equals main memory.
I4. **No silent-write state while shared** — if two or more caches
    hold a word, none of them may be in a state whose write hits skip
    the bus (the protocol's ``silent_write_states``).  The converse
    need not hold: a Shared tag may be stale-true ("some other cache
    *may* also contain the line"), costing at most one redundant
    write-through — the stale-Shared allowance.

Values are compared only for equality, so the predicates work equally
over concrete simulated words and over the model checker's symbolic
version numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.cache.line import LineState

#: One cached copy of a word: (holder id, line state, value).
Copy = Tuple[int, LineState, object]


@dataclass(frozen=True)
class Violation:
    """One invariant failure at one word address."""

    invariant: str  # "I1" .. "I4"
    address: int
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant} violated at {self.address:#x}: {self.detail}"


def i1_single_writer(copies: Sequence[Copy]) -> Optional[str]:
    """I1: at most one dirty holder per word."""
    dirty = [(cid, state.value) for cid, state, _ in copies if state.is_dirty]
    if len(dirty) > 1:
        return f"multiple dirty holders: {dirty}"
    return None


def i2_copy_agreement(copies: Sequence[Copy]) -> Optional[str]:
    """I2: all valid cached copies hold the same value."""
    values = {value for _, _, value in copies}
    if len(values) > 1:
        detail = ", ".join(f"cache{cid}[{state.value}]={value}"
                           for cid, state, value in copies)
        return f"copies disagree: {detail}"
    return None


def i3_memory_currency(copies: Sequence[Copy],
                       memory_value) -> Optional[str]:
    """I3: with no dirty holder, cached copies equal main memory."""
    if not copies or any(state.is_dirty for _, state, _ in copies):
        return None
    cached_value = copies[0][2]
    if cached_value != memory_value:
        return (f"all copies clean ({cached_value}) but memory holds "
                f"{memory_value}")
    return None


def i4_no_silent_sharing(copies: Sequence[Copy],
                         silent_states: FrozenSet[LineState]) -> Optional[str]:
    """I4: no silent-write state may coexist with other holders."""
    if len(copies) <= 1:
        return None
    for cid, state, _ in copies:
        if state in silent_states:
            return (f"cache{cid} holds {state.value} (silent-write state) "
                    f"while {len(copies) - 1} other holder(s) exist")
    return None


def check_word(address: int, copies: Sequence[Copy], memory_value,
               silent_states: FrozenSet[LineState]) -> Optional[Violation]:
    """Apply I1–I4 to one word; the first failing invariant wins.

    ``copies`` lists every valid cached copy; invalid lines must not be
    included.  The I1→I4 order matches the runtime checker's historical
    reporting order, so both checkers describe a multiply-broken state
    the same way.
    """
    for invariant, detail in iter_violations(copies, memory_value,
                                             silent_states):
        return Violation(invariant, address, detail)
    return None


def iter_violations(copies: Sequence[Copy], memory_value,
                    silent_states: FrozenSet[LineState],
                    ) -> Iterable[Tuple[str, str]]:
    """Yield ("I<n>", detail) for every invariant the word breaks."""
    checks = (
        ("I1", i1_single_writer(copies)),
        ("I2", i2_copy_agreement(copies)),
        ("I3", i3_memory_currency(copies, memory_value)),
        ("I4", i4_no_silent_sharing(copies, silent_states)),
    )
    for invariant, detail in checks:
        if detail is not None:
            yield invariant, detail


INVARIANTS = ("I1", "I2", "I3", "I4")
"""The invariant identifiers, in checking order."""
