"""The simulation-safety linter: AST checks for determinism hazards.

A cycle simulator's value rests on bit-identical reruns; the hazards
that quietly destroy that property are always the same four, so they
are linted for mechanically:

``V101 unseeded-random``
    Importing :mod:`random` (or ``numpy.random``) anywhere outside
    :mod:`repro.common.rng`.  Every stochastic component must draw
    from its own named, seeded :class:`~repro.common.rng.RandomStream`
    so adding a component never perturbs existing draws.
``V102 wall-clock``
    Calling ``time.time``/``monotonic``/``perf_counter``/``sleep`` or
    ``datetime.now``-style constructors inside simulator code.  The
    only clock that exists inside a simulation is ``sim.now``; wall
    time makes results machine- and load-dependent.
``V103 unordered-iteration``
    Iterating directly over a ``set``/``frozenset`` display, call, or
    set union/intersection expression (in a ``for`` or comprehension)
    without ``sorted(...)``.  Set iteration order varies with hash
    seeding and insertion history; in event-ordering paths that skew
    results run to run.
``V104 state-bypass``
    Assigning a ``LineState`` to ``<expr>.state`` outside the cache
    layer (``repro/cache/``) and the verifier's injection rigs.  Line
    states may only change through the protocol FSM; a direct mutation
    bypasses the coherence machinery the checker audits.  (Unrelated
    ``.state`` attributes — thread states, RPC states — are not
    flagged: the value must mention ``LineState``.)
``V105 hand-written-protocol``
    A ``*Protocol`` subclass that defines ``read_miss`` / ``write_hit``
    / ``write_miss`` / ``snoop`` by hand instead of deriving the
    handlers from a declarative :class:`repro.protodsl.defs.
    ProtocolDef`.  Hand-written handlers bypass the guard checker's
    exhaustiveness/determinism/reachability proofs and silently fall
    out of sync with the generated facts table and transition oracle.
    (Classes whose base is literally ``Protocol`` — i.e. ``typing.
    Protocol`` structural types — are not protocol implementations and
    are not flagged.)

False positives are silenced per line with ``# lint: allow(V1xx)``
(deliberate, reviewed exceptions — e.g. a test helper corrupting state
on purpose).  The linter is pure :mod:`ast` analysis: no imports are
executed, so linting is safe on any tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

#: Paths (relative, substring match) exempt from a given rule.
_RULE_PATH_EXEMPTIONS = {
    "V101": ("repro/common/rng.py",),
    "V104": ("repro/cache/", "repro/verify/"),
}

_WALL_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "sleep"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

_SET_CONSTRUCTORS = {"set", "frozenset"}
_ORDERING_SINKS = {"sorted", "min", "max", "sum", "len", "any", "all"}

#: The CoherenceProtocol handlers V105 refuses to see hand-written.
_PROTOCOL_HANDLERS = ("read_miss", "write_hit", "write_miss", "snoop")


@dataclass(frozen=True)
class LintFinding:
    """One linter hit: where, which rule, and why it matters."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one module's source text; returns findings, never raises.

    >>> lint_source("import random\\n")[0].rule
    'V101'
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, exc.offset or 0,
                            "V100", f"syntax error: {exc.msg}")]
    allowed = _allow_pragmas(source)
    visitor = _HazardVisitor(path)
    visitor.visit(tree)
    return [f for f in visitor.findings
            if f.rule not in allowed.get(f.line, ())
            and not _path_exempt(path, f.rule)]


def lint_paths(paths: Sequence, root: Optional[Path] = None,
               ) -> List[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[LintFinding] = []
    for path in _py_files(paths):
        display = str(path if root is None else path.relative_to(root))
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), display))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col))


def _py_files(paths: Sequence) -> Iterable[Path]:
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(p for p in entry.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield entry


def _path_exempt(path: str, rule: str) -> bool:
    normalised = path.replace("\\", "/")
    return any(fragment in normalised
               for fragment in _RULE_PATH_EXEMPTIONS.get(rule, ()))


def _allow_pragmas(source: str) -> dict:
    """{line number: (allowed rule ids,)} from ``# lint: allow(...)``."""
    allowed = {}
    for number, text in enumerate(source.splitlines(), start=1):
        marker = "# lint: allow("
        index = text.find(marker)
        if index < 0:
            continue
        inside = text[index + len(marker):text.find(")", index)]
        allowed[number] = tuple(rule.strip() for rule in inside.split(","))
    return allowed


class _HazardVisitor(ast.NodeVisitor):
    """Collects rule violations over one module's AST."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[LintFinding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(LintFinding(
            self.path, node.lineno, node.col_offset, rule, message))

    # -- V101: unseeded randomness ------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random" or alias.name == "numpy.random":
                self._flag(node, "V101",
                           f"import of {alias.name!r}: draw from the seeded "
                           f"repro.common.rng streams instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "random":
            self._flag(node, "V101",
                       "import from 'random': draw from the seeded "
                       "repro.common.rng streams instead")
        self.generic_visit(node)

    # -- V102: wall-clock reads ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_tail(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            self._flag(node, "V102",
                       f"wall-clock call {'.'.join(dotted)}(): simulated "
                       f"code must use the Simulator clock (sim.now)")
        self.generic_visit(node)

    # -- V103: unordered iteration ------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if _is_set_expression(iter_node):
            self._flag(iter_node, "V103",
                       "iteration over an unordered set: wrap in sorted() "
                       "so event ordering is deterministic")

    # -- V105: hand-written protocol handlers ---------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_is_protocol_base(base) for base in node.bases):
            handlers = [stmt.name for stmt in node.body
                        if isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))
                        and stmt.name in _PROTOCOL_HANDLERS]
            if handlers:
                self._flag(node, "V105",
                           f"class {node.name} hand-writes protocol "
                           f"handler(s) {', '.join(sorted(handlers))}: "
                           f"express the protocol as a declarative "
                           f"repro.protodsl ProtocolDef (compiled by "
                           f"DSLProtocol) so the guard checker can prove "
                           f"its transition tables")
        self.generic_visit(node)

    # -- V104: FSM bypass ----------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        # Only `.state` assignments whose value involves LineState are
        # cache-line transitions; other subsystems (threads, RPC) have
        # their own unrelated .state attributes.
        if any(isinstance(t, ast.Attribute) and t.attr == "state"
               for t in node.targets) and _mentions_line_state(node.value):
            self._flag(node, "V104",
                       "direct LineState assignment bypasses the protocol "
                       "FSM; route the change through the protocol (or mark "
                       "a deliberate test corruption with a pragma)")
        self.generic_visit(node)


def _dotted_tail(func: ast.expr) -> Optional[Tuple[str, str]]:
    """("time", "monotonic") for ``time.monotonic`` / ``a.time.monotonic``."""
    if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                      ast.Attribute):
        return (func.value.attr, func.attr)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _is_protocol_base(base: ast.expr) -> bool:
    """A base class name that marks a coherence-protocol subclass.

    The last dotted segment must *end* with ``Protocol`` without being
    exactly ``Protocol`` — ``typing.Protocol`` structural types are
    interfaces, not protocol implementations.
    """
    if isinstance(base, ast.Attribute):
        name = base.attr
    elif isinstance(base, ast.Name):
        name = base.id
    else:
        return False
    return name.endswith("Protocol") and name != "Protocol"


def _mentions_line_state(node: ast.expr) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == "LineState"
               for sub in ast.walk(node))


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _SET_CONSTRUCTORS:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # A union/intersection/difference of sets is itself a set; only
        # flag when at least one operand is syntactically a set.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False
