"""Structural checks over a protocol's measured transition table.

Where the model checker (:mod:`repro.verify.model`) asks "does any
reachable global state break an invariant?", this pass asks whether
the per-line FSM itself is well-formed, using the complete table
:func:`repro.cache.fsm.full_transition_table` measures from the live
implementation:

- **Totality** — every applicable (state, stimulus, peer-presence)
  combination has an arc.  A processor must be able to read and write
  from every state; a resident line must tolerate every foreign bus
  operation the protocol can emit.
- **Determinism** — re-probing the whole domain yields the identical
  table.  The rigs are seeded and single-threaded, so any divergence
  means hidden mutable state inside a protocol (they are required to
  be stateless singletons).
- **Reachability** — every state the protocol declares
  (:data:`repro.cache.fsm.PROTOCOL_STATES`) is reachable from INVALID
  along measured arcs; an unreachable state is dead code in the
  protocol or a stale declaration.
- **No dead-end states** — from every state some stimulus leads to a
  *different* state; a state no stimulus can leave would pin a line's
  behaviour forever (evictions aside).
- **No silent-write capture** — no arc may end with the focal cache in
  a silent-write state (write hits skip the bus) while the peer still
  holds a valid copy: the next local write would leave the peer stale
  without any bus transaction to catch it.  This is the transition-
  table shadow of invariant I4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.fsm import PROTOCOL_STATES, full_transition_table
from repro.cache.line import LineState
from repro.cache.protocols import protocol_by_name


@dataclass(frozen=True)
class StructuralFinding:
    """One structural defect in a protocol's transition table."""

    check: str      # "totality" | "determinism" | "reachability" | ...
    protocol: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.protocol}: {self.detail}"


def check_structure(protocol_name: str,
                    protocol=None) -> List[StructuralFinding]:
    """Run every structural check; empty list means the table is sound."""
    if protocol is None:
        protocol = protocol_by_name(protocol_name)
    table = full_transition_table(protocol_name, protocol=protocol)
    findings: List[StructuralFinding] = []
    findings += _check_totality(protocol_name, table)
    findings += _check_determinism(protocol_name, table, protocol)
    findings += _check_reachability(protocol_name, table)
    findings += _check_dead_ends(protocol_name, table)
    findings += _check_silent_capture(protocol_name, table, protocol)
    return findings


def _domain(protocol_name: str):
    """Every (state, stimulus, peer_holds) the table must cover."""
    states = (LineState.INVALID,) + PROTOCOL_STATES[protocol_name]
    for state in states:
        for stimulus in ("P-read", "P-write"):
            for peer_holds in (False, True):
                yield state, stimulus, peer_holds
        if state is not LineState.INVALID:
            for stimulus in ("M-read", "M-write"):
                yield state, stimulus, False


def _check_totality(protocol_name, table) -> List[StructuralFinding]:
    findings = []
    for key in _domain(protocol_name):
        if key not in table:
            state, stimulus, peer_holds = key
            findings.append(StructuralFinding(
                "totality", protocol_name,
                f"no transition for state {state.value} under {stimulus} "
                f"(peer_holds={peer_holds})"))
    return findings


def _check_determinism(protocol_name, table,
                       protocol) -> List[StructuralFinding]:
    replay = full_transition_table(protocol_name, protocol=protocol)
    findings = []
    for key, first in sorted(table.items(),
                             key=lambda item: str(item[0])):
        second = replay.get(key)
        if second != first:
            state, stimulus, peer_holds = key
            findings.append(StructuralFinding(
                "determinism", protocol_name,
                f"state {state.value} under {stimulus} "
                f"(peer_holds={peer_holds}) produced {first.end.value} then "
                f"{second.end.value if second else '<missing>'} — protocol "
                f"holds hidden mutable state"))
    return findings


def _check_reachability(protocol_name, table) -> List[StructuralFinding]:
    reached = {LineState.INVALID}
    frontier = [LineState.INVALID]
    while frontier:
        state = frontier.pop()
        for (start, _, _), transition in table.items():
            if start is not state:
                continue
            for successor in (transition.end, transition.peer_end):
                if successor is not None and successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
    findings = []
    for state in PROTOCOL_STATES[protocol_name]:
        if state not in reached:
            findings.append(StructuralFinding(
                "reachability", protocol_name,
                f"declared state {state.value} is unreachable from INVALID"))
    return findings


def _check_dead_ends(protocol_name, table) -> List[StructuralFinding]:
    findings = []
    for state in PROTOCOL_STATES[protocol_name]:
        exits = {t.end for (start, _, _), t in table.items()
                 if start is state} - {state}
        if not exits:
            findings.append(StructuralFinding(
                "dead-end", protocol_name,
                f"state {state.value} has no arc to any other state"))
    return findings


def _check_silent_capture(protocol_name, table,
                          protocol) -> List[StructuralFinding]:
    silent = protocol.silent_write_states
    findings = []
    for (start, stimulus, peer_holds), t in sorted(
            table.items(), key=lambda item: str(item[0])):
        if not peer_holds:
            continue
        if start in silent:
            # The probe enumerates the whole domain, including joint
            # configurations (focal silent-write + peer holding) that
            # already violate I4 and are unreachable in a correct
            # protocol; arcs out of them are vacuous.  The model
            # checker proves the unreachability separately.
            continue
        if t.end in silent and t.peer_end is not None \
                and t.peer_end.is_valid:
            findings.append(StructuralFinding(
                "silent-capture", protocol_name,
                f"{start.value} --{stimulus}--> {t.end.value} leaves the "
                f"focal cache in silent-write state {t.end.value} while the "
                f"peer still holds {t.peer_end.value}"))
    return findings
