"""Static protocol verification and simulation-safety linting.

Two engines, both usable as a library and via ``firefly-sim verify``:

- :mod:`repro.verify.model` — an exhaustive model checker for the
  reachable global state space of an N-cache system under any
  implemented coherence protocol, checking the I1–I4 invariants (the
  same predicates the runtime :class:`~repro.system.checker.
  CoherenceChecker` applies, factored into
  :mod:`repro.verify.invariants`) on every reachable state and
  producing a minimal counterexample stimulus trace on violation.
- :mod:`repro.verify.structural` — structural checks over a protocol's
  measured transition table (:func:`repro.cache.fsm.
  full_transition_table`): totality, determinism, reachability, no
  dead-end states, and no arc that parks a cache in a silent-write
  state while a peer still holds the line.
- :mod:`repro.verify.lint` — an AST lint pass over simulator sources
  that flags determinism hazards (unseeded ``random``, wall-clock
  reads inside simulated time, iteration over unordered sets, direct
  ``line.state`` mutation outside the protocol layer, hand-written
  protocol handlers that bypass the DSL pipeline).
- :mod:`repro.protodsl.check` (re-exported here) — the guard checker:
  per-(state, stimulus) exhaustiveness, determinism, reachability and
  fact-consistency proofs over the declarative protocol definitions,
  run before any simulation.

See ``docs/VERIFY.md`` and ``docs/PROTOCOL_DSL.md`` for the full
treatment.
"""

from repro.verify.invariants import (
    INVARIANTS,
    Copy,
    Violation,
    check_word,
)
from repro.verify.lint import LintFinding, lint_paths, lint_source
from repro.verify.model import (
    Counterexample,
    ModelChecker,
    VerificationReport,
    abstract_state_of,
    verify_protocol,
)
from repro.verify.structural import StructuralFinding, check_structure
from repro.protodsl import GuardFinding, check_guards

__all__ = [
    "Copy",
    "Counterexample",
    "GuardFinding",
    "INVARIANTS",
    "LintFinding",
    "ModelChecker",
    "StructuralFinding",
    "VerificationReport",
    "Violation",
    "abstract_state_of",
    "check_guards",
    "check_structure",
    "check_word",
    "lint_paths",
    "lint_source",
    "verify_protocol",
]
