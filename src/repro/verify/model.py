"""Exhaustive model checking of the global N-cache state space.

The runtime checker only audits states a particular run happens to
reach; races that simulation never exercises stay unexamined.  This
module closes that gap by *enumerating* the reachable global states of
an N-cache system (default N=3) under every interleaving of processor
stimuli, checking the shared I1–I4 invariants
(:mod:`repro.verify.invariants`) on each one, and reporting a
shortest-possible counterexample stimulus trace on violation.

Abstraction
-----------
Coherence is a per-line property, and between bus transactions the
machine is quiescent, so the global state of one line is fully
described by::

    (per-cache (LineState, value), main-memory value)

Concrete values only matter up to equality, so they are abstracted to
*version numbers*: every processor write mints a fresh version, and
states are canonicalised by renaming versions in first-appearance
order (memory first, then cache 0..N-1).  With N caches at most N+1
distinct versions can be observed at once, so the abstract space is
finite and small — a few hundred states for three caches.

Soundness comes from using the real simulator as the transition
function (the default ``oracle="sim"``): each exploration step
materialises the abstract state into a fresh single-line rig (the same
injection technique :mod:`repro.cache.fsm` uses to measure Figure 3),
applies one stimulus through the actual cache/bus/protocol code, and
reads the successor state back.  Nothing about the protocols is
re-modelled, so the checker verifies the *implementation*, not a
transcription of it.

For protocols expressed in the guarded-action DSL, ``oracle="dsl"``
swaps in :func:`repro.protodsl.oracle.global_step` — a pure transition
function compiled from the same declarative definition the runtime
protocol is compiled from, with no simulator in the loop.  It is much
faster, and the cross-validation tests assert both oracles reach the
identical state set, which pins the generated runtime code and the
generated oracle to each other through the bus semantics.

Breadth-first exploration makes the first trace that reaches a
violating state a minimal one (fewest stimuli).

Stimuli are ``P-read``/``P-write`` per cache, plus optional DMA
read/write through cache 0 (the I/O processor's cache) when
``include_dma=True``.  Conflict evictions are out of scope: the model
tracks one line, which is exactly the granularity at which the
invariants are stated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bus.mbus import MBus
from repro.cache.cache import CacheGeometry, SnoopyCache
from repro.cache.fsm import PROTOCOL_STATES
from repro.cache.line import LineState
from repro.cache.protocols import definition_of, protocol_by_name
from repro.common.errors import ConfigurationError
from repro.common.events import Simulator
from repro.common.types import AccessKind, MemRef
from repro.memory.main_memory import MainMemory, MemoryModule
from repro.protodsl.oracle import global_step
from repro.verify.invariants import Violation, check_word
from repro.verify.structural import StructuralFinding, check_structure

#: (state value, version) per cache — version None when INVALID — plus
#: the memory version, e.g. ((("D", 1), ("I", None)), 0).
GlobalState = Tuple[Tuple[Tuple[str, Optional[int]], ...], int]

#: One stimulus: ("P-read" | "P-write" | "DMA-read" | "DMA-write", cache).
Stimulus = Tuple[str, int]

_VALUE_BASE = 1000  # version v is materialised as the word 1000 + v
_ADDRESS = 0        # the single line the model tracks
_DMA_INITIATOR_OFFSET = 100  # DMA port ids sit above any cache id


@dataclass(frozen=True)
class Counterexample:
    """A minimal stimulus trace from reset to a violating state.

    ``trace`` lists (stimulus, resulting global state) pairs; applying
    the stimuli in order from the all-invalid reset state reproduces
    the violation in a live rig.
    """

    protocol: str
    violation: Violation
    trace: Tuple[Tuple[Stimulus, GlobalState], ...]

    def render(self) -> str:
        lines = [f"counterexample for protocol {self.protocol!r} "
                 f"({len(self.trace)} stimuli):"]
        for step, (stimulus, state) in enumerate(self.trace, start=1):
            kind, cache = stimulus
            lines.append(f"  {step}. {kind} @cache{cache}  ->  "
                         f"{format_state(state)}")
        lines.append(f"  violated: {self.violation}")
        return "\n".join(lines)


@dataclass
class VerificationReport:
    """Everything one protocol's verification run established."""

    protocol: str
    caches: int
    states_explored: int = 0
    transitions_taken: int = 0
    structural_findings: List[StructuralFinding] = field(default_factory=list)
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None and not self.structural_findings

    def render(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        lines = [f"[{verdict}] {self.protocol}: {self.states_explored} "
                 f"reachable global states, {self.transitions_taken} "
                 f"transitions ({self.caches} caches)"]
        for finding in self.structural_findings:
            lines.append(f"  structural: {finding}")
        if self.counterexample is not None:
            lines.append("  " + self.counterexample.render()
                         .replace("\n", "\n  "))
        return "\n".join(lines)


def format_state(state: GlobalState) -> str:
    """Compact rendering, e.g. ``caches[D:v1, I, S:v0] mem=v0``."""
    caches, memory = state
    cells = []
    for value, version in caches:
        cells.append(value if version is None else f"{value}:v{version}")
    return f"caches[{', '.join(cells)}] mem=v{memory}"


class _ModelRig:
    """A fresh N-cache single-line rig for one transition step."""

    def __init__(self, protocol, n_caches: int) -> None:
        self.sim = Simulator()
        self.memory = MainMemory([MemoryModule(0, 1 << 10, is_master=True)])
        self.mbus = MBus(self.sim, self.memory)
        geometry = CacheGeometry(1, 1)
        self.caches = [SnoopyCache(self.mbus, protocol, i, geometry)
                       for i in range(n_caches)]

    def materialise(self, state: GlobalState) -> None:
        caches, memory_version = state
        self.memory.poke(_ADDRESS, _VALUE_BASE + memory_version)
        for cache, (value, version) in zip(self.caches, caches):
            if version is None:
                continue
            line, _, tag, _ = cache.lookup(_ADDRESS)
            line.fill(tag, (_VALUE_BASE + version,), LineState(value))

    def run(self, gen) -> None:
        self.sim.process(gen, "stimulus")
        self.sim.run()

    def observe(self) -> Tuple[Tuple[Tuple[str, Optional[int]], ...], int]:
        """Read back the (un-canonicalised) global state as raw values."""
        views = []
        for cache in self.caches:
            state = cache.state_of(_ADDRESS)
            if state is LineState.INVALID:
                views.append((LineState.INVALID.value, None))
            else:
                views.append((state.value, cache.peek(_ADDRESS)))
        return tuple(views), self.memory.peek(_ADDRESS)


class ModelChecker:
    """Breadth-first exploration of one protocol's global state space.

    ``protocol`` may override the instance being driven (protocols are
    stateless singletons, so one instance serves every rig) — the
    mutation tests pass deliberately broken subclasses through this
    hook while keeping the registry untouched.
    """

    def __init__(self, protocol_name: str, caches: int = 3,
                 protocol=None, include_dma: bool = False,
                 oracle: str = "sim") -> None:
        if protocol_name not in PROTOCOL_STATES:
            raise ConfigurationError(f"unknown protocol {protocol_name!r}")
        if caches < 2:
            raise ConfigurationError(
                f"model checking needs >= 2 caches, got {caches}")
        if oracle not in ("sim", "dsl"):
            raise ConfigurationError(
                f"unknown oracle {oracle!r}; choose 'sim' or 'dsl'")
        self.protocol_name = protocol_name
        self.protocol = (protocol if protocol is not None
                         else protocol_by_name(protocol_name))
        self.caches = caches
        self.include_dma = include_dma
        self.oracle = oracle
        # definition_of refuses protocols whose behaviour is not fully
        # captured by a definition (hand-written handlers, mutation-test
        # subclasses with overrides) — exactly the cases where the pure
        # oracle would silently diverge from the running code.
        self._definition = (definition_of(self.protocol)
                            if oracle == "dsl" else None)

    # -- stimuli ---------------------------------------------------------

    def stimuli(self) -> List[Stimulus]:
        kinds = [("P-read", i) for i in range(self.caches)]
        kinds += [("P-write", i) for i in range(self.caches)]
        if self.include_dma:
            # All DMA flows through the I/O processor's cache (cache 0).
            kinds += [("DMA-read", 0), ("DMA-write", 0)]
        return kinds

    def _apply(self, state: GlobalState,
               stimulus: Stimulus) -> GlobalState:
        """Run one stimulus against a materialised rig; canonical result."""
        if self.oracle == "dsl":
            kind, cache_index = stimulus
            raw = global_step(self._definition, state, kind, cache_index,
                              self._fresh_version(state))
            return _canonicalise(raw)
        rig = _ModelRig(self.protocol, self.caches)
        rig.materialise(state)
        kind, cache_index = stimulus
        cache = rig.caches[cache_index]
        fresh = _VALUE_BASE + self._fresh_version(state)
        if kind == "P-read":
            def gen():
                yield from cache.cpu_read(
                    MemRef(_ADDRESS, AccessKind.DATA_READ))
        elif kind == "P-write":
            def gen():
                yield from cache.cpu_write(
                    MemRef(_ADDRESS, AccessKind.DATA_WRITE), fresh)
        elif kind == "DMA-read":
            def gen():
                yield from cache.dma_read(_ADDRESS)
        elif kind == "DMA-write":
            def gen():
                yield from cache.dma_write(_ADDRESS, fresh)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown stimulus kind {kind!r}")
        rig.run(gen())
        return _canonicalise(rig.observe())

    @staticmethod
    def _fresh_version(state: GlobalState) -> int:
        caches, memory = state
        used = {memory} | {v for _, v in caches if v is not None}
        return max(used) + 1

    # -- exploration ------------------------------------------------------

    def explore(self, max_states: int = 100_000) -> VerificationReport:
        """BFS the reachable space; stop at the first violation.

        The structural pass over the measured transition table runs
        first — a non-total or non-deterministic table would make the
        exploration itself untrustworthy.
        """
        report = VerificationReport(self.protocol_name, self.caches)
        self.reachable: frozenset = frozenset()
        report.structural_findings = check_structure(
            self.protocol_name, protocol=self.protocol)

        initial: GlobalState = (
            tuple((LineState.INVALID.value, None)
                  for _ in range(self.caches)), 0)
        parent: Dict[GlobalState, Optional[Tuple[GlobalState, Stimulus]]] = {
            initial: None}
        frontier: List[GlobalState] = [initial]
        stimuli = self.stimuli()
        silent_states = self.protocol.silent_write_states

        while frontier:
            next_frontier: List[GlobalState] = []
            for state in frontier:
                for stimulus in stimuli:
                    successor = self._apply(state, stimulus)
                    report.transitions_taken += 1
                    if successor not in parent:
                        parent[successor] = (state, stimulus)
                        violation = self._check(successor, silent_states)
                        if violation is not None:
                            report.states_explored = len(parent)
                            self.reachable = frozenset(parent)
                            report.counterexample = self._trace(
                                parent, successor, violation)
                            return report
                        if len(parent) > max_states:
                            raise ConfigurationError(
                                f"state space exceeded {max_states} states; "
                                f"raise max_states or reduce caches")
                        next_frontier.append(successor)
            frontier = next_frontier
        report.states_explored = len(parent)
        #: The reachable set survives on the checker for cross-
        #: validation against dynamic runs (the fuzz tests assert that
        #: every abstract state a simulation visits was explored here).
        self.reachable = frozenset(parent)
        return report

    def _check(self, state: GlobalState,
               silent_states) -> Optional[Violation]:
        caches, memory_version = state
        copies = [(cid, LineState(value), version)
                  for cid, (value, version) in enumerate(caches)
                  if version is not None]
        return check_word(_ADDRESS, copies, memory_version, silent_states)

    def _trace(self, parent, state: GlobalState,
               violation: Violation) -> Counterexample:
        steps: List[Tuple[Stimulus, GlobalState]] = []
        cursor: Optional[GlobalState] = state
        while parent[cursor] is not None:
            predecessor, stimulus = parent[cursor]
            steps.append((stimulus, cursor))
            cursor = predecessor
        steps.reverse()
        return Counterexample(protocol=self.protocol_name,
                              violation=violation, trace=tuple(steps))


def _canonicalise(raw) -> GlobalState:
    """Rename concrete values to versions in first-appearance order.

    Memory is scanned first, then cache 0..N-1, so two configurations
    that differ only in which concrete words happen to be involved
    collapse to the same abstract state.
    """
    views, memory_value = raw
    rename: Dict[int, int] = {memory_value: 0}
    for _, value in views:
        if value is not None and value not in rename:
            rename[value] = len(rename)
    caches = tuple(
        (state, None if value is None else rename[value])
        for state, value in views)
    return caches, rename[memory_value]


def abstract_state_of(caches, memory, address: int) -> GlobalState:
    """The canonical abstract state of one word in a live machine.

    ``caches`` is any sequence of :class:`~repro.cache.cache.
    SnoopyCache`; the result is comparable against a
    :class:`ModelChecker`'s ``reachable`` set, which is how the fuzz
    tests cross-validate the dynamic and static checkers.
    """
    views = []
    for cache in caches:
        state = cache.state_of(address)
        if state is LineState.INVALID:
            views.append((LineState.INVALID.value, None))
        else:
            views.append((state.value, cache.peek(address)))
    return _canonicalise((tuple(views), memory.peek(address)))


def verify_protocol(protocol_name: str, caches: int = 3,
                    protocol=None, include_dma: bool = False,
                    max_states: int = 100_000,
                    oracle: str = "sim") -> VerificationReport:
    """Run the full static verification for one protocol.

    >>> verify_protocol("write-through", caches=2).ok
    True
    """
    checker = ModelChecker(protocol_name, caches=caches, protocol=protocol,
                           include_dma=include_dma, oracle=oracle)
    return checker.explore(max_states=max_states)
