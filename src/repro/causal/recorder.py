"""The always-on flight recorder: a bounded causal event ring.

A :class:`FlightRecorder` keeps the *recent causal history* of a run —
scheduler dispatches, wakes, RPC spans, DMA bursts, faults — in a ring
buffer sized for a crash report, not a full trace.  Two constraints
shape it:

- **Off-by-default byte-identical.**  Attaching nothing changes
  nothing: all instrumentation rides the existing probe layer, whose
  disabled path is one attribute test.  ``detach()`` restores the
  inert probes, and tests pin that a run with an attached-then-
  detached recorder produces byte-identical metrics.
- **≤2 % overhead when on.**  In own-hub mode the recorder enables
  only the low-rate categories (``sched``, ``rpc``, ``dma``,
  ``machine``, ``faults``) via :meth:`TelemetryHub.enable_only` — the
  per-bus-op and per-cache-transition hot paths stay dark — and the
  hub buffers nothing (``max_events=0``); events flow straight into
  the ring.  The bench overhead gate measures this mode.

When something goes wrong (``DeadlockError``, invariant violation,
unrecovered fault), :func:`repro.causal.crash.capture_crash` drains
the ring into the deterministic crash report that
``firefly-sim postmortem`` renders.
"""

from __future__ import annotations

from typing import List, Optional

from repro.telemetry.probe import NULL_PROBE, TelemetryEvent, TelemetryHub
from repro.telemetry.sampler import RingBuffer

LOW_RATE_CATEGORIES = frozenset(
    {"sched", "rpc", "dma", "machine", "faults"})
"""Categories cheap enough to record always-on.  ``bus`` and ``cache``
emit per transaction/transition and stay disabled in recorder mode."""

DEFAULT_CAPACITY = 4096
"""Ring capacity: enough recent history to explain a crash."""


class FlightRecorder:
    """Bounded ring of recent causal events over a kernel or machine.

    Two modes:

    - ``FlightRecorder(subject)`` builds its own streaming hub,
      attaches the subject's probes and restricts live categories to
      :data:`LOW_RATE_CATEGORIES` — the always-on configuration.
    - ``FlightRecorder(subject, hub=existing)`` rides along on a hub
      someone else attached (e.g. the chaos engine's span tracer),
      adding only a subscriber — no probe slots are touched, so it
      cannot conflict with other instrumentation.
    """

    def __init__(self, subject, capacity: int = DEFAULT_CAPACITY,
                 hub: Optional[TelemetryHub] = None,
                 categories=LOW_RATE_CATEGORIES) -> None:
        self.subject = subject
        machine = getattr(subject, "machine", subject)
        self.machine = machine
        self.kernel = subject if hasattr(subject, "scheduler") else None
        self.sim = machine.sim
        self.owns_hub = hub is None
        if hub is None:
            from repro.telemetry.instrument import (attach_kernel,
                                                    attach_machine)
            hub = TelemetryHub(self.sim, max_events=0)
            if self.kernel is not None:
                attach_kernel(hub, self.kernel)
            else:
                attach_machine(hub, machine)
            hub.enable_only(categories)
        self.hub = hub
        self.ring: RingBuffer = RingBuffer(capacity)
        self.recorded = 0
        self._attached = True
        hub.subscribe(self._on_event)

    # -- intake --------------------------------------------------------

    def _on_event(self, event: TelemetryEvent) -> None:
        self.recorded += 1
        self.ring.append(event)

    # -- readouts ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring."""
        return self.ring.dropped

    def events(self) -> List[TelemetryEvent]:
        """Retained events, oldest first."""
        return list(self.ring)

    def recent(self, count: Optional[int] = None) -> List[dict]:
        """The last ``count`` retained events as plain dicts."""
        events = self.events()
        if count is not None:
            events = events[-count:]
        return [e.to_dict() for e in events]

    # -- teardown ------------------------------------------------------

    def detach(self) -> None:
        """Unsubscribe; in own-hub mode also restore the inert probes.

        After detach the subject is byte-identical to one that never
        saw a recorder (the off-by-default guarantee).
        """
        if not self._attached:
            return
        self._attached = False
        self.hub.unsubscribe(self._on_event)
        if not self.owns_hub:
            return
        machine = self.machine
        machine.probe = NULL_PROBE
        machine.mbus.probe = NULL_PROBE
        for cache in machine.caches:
            cache.probe = NULL_PROBE
        if machine.qbus is not None:
            machine.qbus.probe = NULL_PROBE
        if self.kernel is not None:
            self.kernel.probe = NULL_PROBE
            self.kernel.scheduler.probe = NULL_PROBE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "own-hub" if self.owns_hub else "ride-along"
        return (f"<FlightRecorder {mode} kept={len(self.ring)} "
                f"recorded={self.recorded} dropped={self.dropped}>")
