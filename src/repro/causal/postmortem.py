"""Postmortem rendering and the pinned deadlock scenario.

Two halves:

- :func:`render_crash_report` turns a ``firefly-crash/1`` dict into
  the text the ``firefly-sim postmortem`` subcommand prints — the
  error, the wait-for cycle (resource + holder + waiters), per-CPU run
  state, the in-flight bus op and the recent causal timeline.
- :func:`run_pinned_deadlock` builds a deliberately deadlocking
  two-thread program (classic AB/BA lock order) on a 2-CPU kernel with
  a flight recorder attached, runs it until the kernel's deadlock
  detector fires, and captures the crash report.  Deterministic end to
  end, so the report digests identically across runs — the CI smoke
  and the golden-digest test both pin it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.common.errors import DeadlockError, SimulationError
from repro.causal.crash import capture_crash
from repro.causal.recorder import FlightRecorder

PINNED_DEADLOCK_SEED = 1987
"""Seed of the pinned scenario (any seed deadlocks; pinned for CI)."""


def run_pinned_deadlock(seed: int = PINNED_DEADLOCK_SEED,
                        capacity: int = 512) -> Dict[str, Any]:
    """Run the AB/BA deadlock and return its crash report.

    Raises :class:`SimulationError` if — against its whole purpose —
    the program terminates.
    """
    from repro.topaz import ops
    from repro.topaz.kernel import TopazKernel

    kernel = TopazKernel.build(processors=2, threads_hint=4, seed=seed)
    recorder = FlightRecorder(kernel, capacity=capacity)
    mutex_a = kernel.mutex("fork-a")
    mutex_b = kernel.mutex("fork-b")

    def philosopher(first, second, spin):
        # The stagger makes both inner Lock()s land while the partner
        # already holds the other mutex: a certain AB/BA deadlock.
        yield ops.Compute(spin)
        yield ops.Lock(first)
        yield ops.Compute(400)
        yield ops.Lock(second)
        yield ops.Compute(10)          # pragma: no cover - never reached
        yield ops.Unlock(second)
        yield ops.Unlock(first)

    kernel.fork(philosopher, mutex_a, mutex_b, 20, name="left-fork")
    kernel.fork(philosopher, mutex_b, mutex_a, 20, name="right-fork")

    try:
        kernel.run_until_quiescent(max_cycles=2_000_000,
                                   slice_cycles=5_000)
    except DeadlockError as error:
        report = capture_crash(error, subject=kernel, recorder=recorder)
        recorder.detach()
        return report
    raise SimulationError(
        "pinned deadlock scenario terminated without deadlocking")


def report_digest(report: Dict[str, Any]) -> str:
    """A short sha256 over the canonical JSON form of a crash report."""
    canonical = json.dumps(report, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def extract_crash(document: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Find a crash report inside a loaded JSON document.

    Accepts a bare ``firefly-crash/1`` report, or a ``firefly-chaos/1``
    campaign report whose scenarios captured one (first crash wins).
    """
    if not isinstance(document, dict):
        return None
    if document.get("schema") == "firefly-crash/1":
        return document
    for scenario in document.get("scenarios", ()):
        crash = scenario.get("crash") if isinstance(scenario, dict) else None
        if crash:
            return crash
    return None


def render_crash_report(report: Dict[str, Any]) -> str:
    """The human-readable postmortem of one crash report."""
    lines = []
    error = report.get("error", {})
    lines.append(f"postmortem ({report.get('schema', '?')}) "
                 f"at t={report.get('time')}")
    lines.append(f"error: {error.get('type')}: {error.get('message')}")

    wait_for = report.get("wait_for", {})
    cycle = wait_for.get("cycle") or []
    if cycle:
        lines.append("")
        lines.append(f"wait-for cycle ({len(cycle)} threads):")
        for edge in cycle:
            lines.append(f"  {edge['waiter']} waits on {edge['resource']} "
                         f"held by {edge['holder']}")
    edges = wait_for.get("edges") or []
    extra = [e for e in edges if e not in cycle]
    if extra:
        lines.append("other waiters:")
        for edge in extra:
            holder = f" held by {edge['holder']}" if edge.get("holder") else ""
            lines.append(f"  {edge['waiter']} waits on "
                         f"{edge['resource']}{holder}")

    cpus = report.get("cpus")
    if cpus is not None:
        lines.append("")
        lines.append("per-CPU state:")
        for row in cpus:
            running = row.get("running") or "idle"
            queued = row.get("queued_kernel_bundles", 0)
            note = f" (+{queued} queued kernel bundles)" if queued else ""
            lines.append(f"  cpu{row['cpu']}: {running}{note}")
        ready = report.get("ready_queue") or []
        lines.append(f"  ready queue: {', '.join(ready) if ready else '[]'}")

    bus = report.get("bus")
    if bus is not None:
        in_flight = bus.get("in_flight") or "idle"
        lines.append(f"bus: {in_flight} "
                     f"(queue depth {bus.get('queue_depth', 0)})")
    caches = report.get("caches")
    if caches:
        parts = [f"cache{c['cache']}: {c['valid_lines']} valid, "
                 f"{c['dirty_fraction']:.0%} dirty" for c in caches]
        lines.append("caches: " + "; ".join(parts))

    recent = report.get("recent_events") or []
    if recent:
        lines.append("")
        lines.append(f"causal timeline (last {len(recent)} events):")
        for event in recent[-16:]:
            args = event.get("args", {})
            detail = " ".join(f"{k}={v}" for k, v in sorted(args.items())
                              if k in ("thread", "reason", "cause", "tid",
                                       "span", "op", "initiator"))
            lines.append(f"  t={event['time']:>8} {event['name']:<14} "
                         f"[{event['track']}] {detail}".rstrip())
        if len(recent) > 16:
            lines.append(f"  ... ({len(recent) - 16} earlier retained)")
    recorder = report.get("recorder")
    if recorder:
        lines.append(f"recorder: {recorder['recorded']} recorded, "
                     f"{recorder['kept']} kept, "
                     f"{recorder['dropped']} aged out")
    lines.append(f"report digest: {report_digest(report)}")
    return "\n".join(lines)
