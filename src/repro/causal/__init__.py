"""Causal request tracing, flight recording and postmortems.

Three layers, each usable alone:

- :mod:`repro.causal.context` — trace/span identity allocated by the
  kernel and propagated through thread creation, wakeups, scheduling,
  RPC and DMA (carried on the existing telemetry events).
- :mod:`repro.causal.assemble` — span-tree assembly and the exact-sum
  critical-path decomposition: per-request latency split into run /
  sched_wait / bus_arb_wait / transfer / blocked_on_lock segments that
  sum exactly to the turnaround, with streaming percentiles per class.
- :mod:`repro.causal.recorder` / :mod:`~repro.causal.crash` /
  :mod:`~repro.causal.postmortem` — the always-on flight recorder
  (bounded ring, low-rate categories only) and the deterministic
  ``firefly-crash/1`` report rendered by ``firefly-sim postmortem``.
"""

from repro.causal.assemble import (REQUEST_BOUNDS, SEGMENTS, RequestRecord,
                                   RequestTracer, trace_requests)
from repro.causal.context import ContextAllocator, TraceContext
from repro.causal.crash import CRASH_SCHEMA, capture_crash, find_cycle
from repro.causal.postmortem import (PINNED_DEADLOCK_SEED, extract_crash,
                                     render_crash_report, report_digest,
                                     run_pinned_deadlock)
from repro.causal.recorder import (DEFAULT_CAPACITY, LOW_RATE_CATEGORIES,
                                   FlightRecorder)

__all__ = [
    "CRASH_SCHEMA",
    "ContextAllocator",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "LOW_RATE_CATEGORIES",
    "PINNED_DEADLOCK_SEED",
    "REQUEST_BOUNDS",
    "RequestRecord",
    "RequestTracer",
    "SEGMENTS",
    "TraceContext",
    "capture_crash",
    "extract_crash",
    "find_cycle",
    "render_crash_report",
    "report_digest",
    "run_pinned_deadlock",
    "trace_requests",
]
