"""Trace-context identity for causal request tracing.

A :class:`TraceContext` names one span of work inside one causal trace:
``trace_id`` groups everything descended from a single root (a forked
thread tree, an RPC exerciser run), ``span_id`` names this particular
unit, and ``parent_id`` links back to the span that created it.  The
triple is carried on :class:`~repro.topaz.thread.TopazThread` objects
and stamped onto telemetry events (``sched.run``, ``bus.op``,
``dma.burst``, ``rpc.call``) so the assembler in
:mod:`repro.causal.assemble` can rebuild per-request trees offline.

Identifiers come from :class:`ContextAllocator`, a plain deterministic
counter.  It deliberately never touches the machine's seeded RNG
streams: allocating a trace id must not perturb any simulated decision,
so the same seed produces byte-identical runs whether or not tracing is
enabled.

>>> alloc = ContextAllocator()
>>> root = alloc.root()
>>> child = alloc.child(root)
>>> (root.trace_id, child.trace_id, child.parent_id == root.span_id)
(1, 1, True)
"""

from __future__ import annotations

__all__ = ["TraceContext", "ContextAllocator"]


class TraceContext:
    """Immutable-by-convention (trace, span, parent) identity triple."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int, parent_id: int = 0) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext(trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")

    def to_dict(self) -> dict:
        return {"trace": self.trace_id, "span": self.span_id,
                "parent": self.parent_id}


class ContextAllocator:
    """Deterministic trace/span id source (monotonic counters, no RNG)."""

    __slots__ = ("_next_trace", "_next_span")

    def __init__(self) -> None:
        self._next_trace = 1
        self._next_span = 1

    def root(self) -> TraceContext:
        """Start a new trace (a thread forked from host code)."""
        trace = self._next_trace
        self._next_trace += 1
        span = self._next_span
        self._next_span += 1
        return TraceContext(trace, span, 0)

    def child(self, parent: "TraceContext | None") -> TraceContext:
        """A new span causally under ``parent`` (same trace)."""
        if parent is None:
            return self.root()
        span = self._next_span
        self._next_span += 1
        return TraceContext(parent.trace_id, span, parent.span_id)
