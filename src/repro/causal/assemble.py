"""Span-tree assembly and exact critical-path extraction.

The :class:`RequestTracer` subscribes to a live
:class:`~repro.telemetry.probe.TelemetryHub` and rebuilds, per request,
*where the time went*.  A request is one ``rpc.call`` span (or any
COMPLETE event carrying ``tid``/``trace``/``span`` args and a ``cls``
label); its turnaround is attributed into seven segments that **sum
exactly** to the measured latency — the same exact-sum discipline as
the observatory's CacheSpans:

``run``
    On a CPU, executing, not stalled on the MBus.
``sched_wait``
    Runnable but waiting for a CPU (ready-queue time, preemption).
``bus_arb_wait``
    On a CPU but stalled in MBus arbitration (the ``wait`` part of a
    ``bus.op`` issued by that CPU).
``transfer``
    Bus/DMA/wire occupancy: the granted part of bus ops while running,
    plus blocked-on-device time before the wakeup's ready mark.
``blocked_on_lock``
    Blocked on a mutex / condition / join, before the ready mark.
``backoff``
    Deliberately sleeping between retry attempts (the serving layer's
    jittered exponential backoff — blocked on ``device:backoff``).
``hedge_wait``
    A hedged request's rendezvous wait: the requester parked on the
    serving layer's hedge condition (``wait:hedge``) while its racer
    attempts run.

The decomposition is evidence-driven, from four event families:

- ``sched.run`` (COMPLETE, per-CPU track): run slices ``[start, end)``
  with the descheduling reason (``preempt``, ``yield``, a block label
  like ``device:rpc-tx`` or ``lock:m``);
- ``sched.ready`` (instant): when a thread re-entered the ready queue
  (splits an off-CPU gap into blocked vs scheduler-wait);
- ``bus.op`` (COMPLETE): per-initiator arbitration wait and transfer
  intervals, clipped against the covering run slice;
- ``rpc.call`` / ``causal.fork`` / ``causal.wake``: the requests
  themselves and the parent→child links for span trees.

Because a request's COMPLETE event is emitted *while its thread is
still running* (mid run-slice), finalisation is deferred until the
covering ``sched.run`` closes; :meth:`RequestTracer.close` force-
finalises any leftovers (flagged ``complete=False``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.stats import Histogram
from repro.telemetry.probe import TelemetryEvent, TelemetryHub

SEGMENTS = ("run", "sched_wait", "bus_arb_wait", "transfer",
            "blocked_on_lock", "backoff", "hedge_wait")
"""Latency segment names, in render order; they sum to the turnaround."""

REQUEST_BOUNDS = tuple(int(round(1000 * 1.5 ** i)) for i in range(36))
"""Histogram bucket bounds for request turnarounds (1k cycles up,
~1.5× geometric — wide enough for multi-millisecond requests)."""

_BLOCK_LOCK_PREFIXES = ("lock:", "wait:", "join:")
_BLOCK_DEVICE_PREFIX = "device:"
# The serving layer's resilience waits get their own segments so a
# retried/hedged call's tail is visible as policy time, not bus time.
_BACKOFF_REASON = "device:backoff"
_HEDGE_REASON = "wait:hedge"

_MAX_BUS_OPS_PER_CPU = 100_000
_MAX_SLICES_PER_TID = 100_000
_MAX_READY_PER_TID = 100_000
_MAX_LINKS = 65_536


def _cpu_of_track(track: str) -> Optional[int]:
    """``cpu3`` / ``m1.cpu3`` -> 3; None for non-CPU tracks."""
    leaf = track.rsplit(".", 1)[-1]
    if leaf.startswith("cpu"):
        try:
            return int(leaf[3:])
        except ValueError:
            return None
    return None


class RequestRecord:
    """One assembled request with its exact segment decomposition."""

    __slots__ = ("cls", "trace", "span", "parent_span", "tid", "thread",
                 "start", "end", "segments", "complete")

    def __init__(self, cls: str, trace: int, span: int, parent_span: int,
                 tid: int, thread: str, start: int, end: int) -> None:
        self.cls = cls
        self.trace = trace
        self.span = span
        self.parent_span = parent_span
        self.tid = tid
        self.thread = thread
        self.start = start
        self.end = end
        self.segments: Dict[str, int] = {name: 0 for name in SEGMENTS}
        self.complete = True

    @property
    def turnaround(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"cls": self.cls, "trace": self.trace, "span": self.span,
                "parent_span": self.parent_span, "tid": self.tid,
                "thread": self.thread, "start": self.start, "end": self.end,
                "turnaround": self.turnaround, "complete": self.complete,
                "segments": dict(self.segments)}


class RequestTracer:
    """Streaming per-request critical-path assembler.

    Subscribe-once: ``RequestTracer(hub)`` wires itself onto the hub;
    call :meth:`close` after the run to flush still-open requests, then
    read :attr:`finished`, :meth:`percentiles` and :meth:`span_tree`.
    """

    def __init__(self, hub: TelemetryHub, keep_requests: int = 8192) -> None:
        self.hub = hub
        self.keep_requests = keep_requests
        #: Finalised requests, oldest first (bounded).
        self.finished: Deque[RequestRecord] = deque(maxlen=keep_requests)
        self.assembled = 0
        self.incomplete = 0

        # Raw evidence, pruned as requests finalise.
        self._slices: Dict[int, List[Tuple[int, int, int, str]]] = {}
        self._ready: Dict[int, List[int]] = {}
        self._bus: Dict[int, Deque[Tuple[int, int, int]]] = {}
        self._pending: List[RequestRecord] = []
        self._links: Deque[Tuple[str, Tuple]] = deque(maxlen=_MAX_LINKS)

        # Streaming per-class latency distributions.
        self._hist: Dict[Tuple[str, str], Histogram] = {}

        hub.subscribe(self._on_sched, prefix="sched.")
        hub.subscribe(self._on_bus_op, prefix="bus.op")
        hub.subscribe(self._on_request, prefix="rpc.call")
        hub.subscribe(self._on_causal, prefix="causal.")

    # -- event intake --------------------------------------------------

    def _on_sched(self, event: TelemetryEvent) -> None:
        if event.name == "sched.run":
            args = dict(event.args)
            tid = args.get("tid")
            if tid is None:
                return
            cpu = _cpu_of_track(event.track)
            if cpu is None:
                return
            slices = self._slices.setdefault(tid, [])
            if len(slices) >= _MAX_SLICES_PER_TID:
                del slices[:_MAX_SLICES_PER_TID // 2]
            slices.append(
                (event.time, event.time + event.duration, cpu,
                 str(args.get("reason", ""))))
            if self._pending:
                self._drain_pending(tid)
        elif event.name == "sched.ready":
            args = dict(event.args)
            tid = args.get("tid")
            if tid is not None:
                marks = self._ready.setdefault(tid, [])
                if len(marks) >= _MAX_READY_PER_TID:
                    del marks[:_MAX_READY_PER_TID // 2]
                insort(marks, event.time)

    def _on_bus_op(self, event: TelemetryEvent) -> None:
        args = dict(event.args)
        initiator = args.get("initiator")
        if initiator is None:
            return
        wait = args.get("wait", 0)
        ring = self._bus.get(initiator)
        if ring is None:
            ring = deque(maxlen=_MAX_BUS_OPS_PER_CPU)
            self._bus[initiator] = ring
        # (request, grant, release): arbitration wait then transfer.
        ring.append((event.time - wait, event.time,
                     event.time + event.duration))

    def _on_request(self, event: TelemetryEvent) -> None:
        args = dict(event.args)
        tid = args.get("tid")
        if tid is None:
            return
        record = RequestRecord(
            cls=str(args.get("cls", "rpc")),
            trace=args.get("trace", 0), span=args.get("span", 0),
            parent_span=args.get("parent_span", 0),
            tid=tid, thread=str(args.get("thread", "")),
            start=event.time, end=event.time + event.duration)
        self._pending.append(record)
        self._drain_pending(tid)

    def _on_causal(self, event: TelemetryEvent) -> None:
        self._links.append((event.name, event.args))

    # -- finalisation --------------------------------------------------

    def _drain_pending(self, tid: int) -> None:
        """Finalise pending requests whose covering run slice closed."""
        slices = self._slices.get(tid)
        if not slices:
            return
        last_end = slices[-1][1]
        still = []
        for record in self._pending:
            if record.tid == tid and last_end >= record.end:
                self._finalize(record, forced=False)
            else:
                still.append(record)
        self._pending = still

    def close(self) -> None:
        """Flush requests whose final run slice never closed.

        Their tail (from the last closed slice to the request end) is
        attributed from the evidence available — gaps split at ready
        marks, the unobserved remainder counted as ``run`` (the thread
        *was* running when it emitted the request-complete event).
        Such records are flagged ``complete=False``.
        """
        pending, self._pending = self._pending, []
        for record in pending:
            self._finalize(record, forced=True)

    def _finalize(self, record: RequestRecord, forced: bool) -> None:
        t0, t1 = record.start, record.end
        seg = record.segments
        slices = [s for s in self._slices.get(record.tid, ())
                  if s[1] > t0 and s[0] < t1]
        cursor = t0
        prev_reason = ""
        for (s_start, s_end, cpu, reason) in slices:
            a, b = max(s_start, t0), min(s_end, t1)
            if a > cursor:
                self._classify_gap(record, cursor, a, prev_reason)
            arb, xfer = self._bus_overlap(cpu, a, b)
            seg["bus_arb_wait"] += arb
            seg["transfer"] += xfer
            seg["run"] += (b - a) - arb - xfer
            cursor = b
            prev_reason = reason
        if cursor < t1:
            # Open tail: the thread's final run slice had not closed
            # when this record was force-finalised.  Split the leading
            # off-CPU gap at the ready mark as usual; the unobserved
            # remainder was running (it emitted the request-end event),
            # so it counts as run.  Still flagged incomplete.
            if prev_reason:
                mark = self._first_ready(record.tid, cursor, t1)
                end_gap = mark if mark is not None else t1
                self._classify_gap(record, cursor, end_gap, prev_reason)
                cursor = end_gap
            seg["run"] += t1 - cursor
            record.complete = False
            self.incomplete += 1
        self.assembled += 1
        self.finished.append(record)
        self._record_stats(record)
        self._prune(record.tid, t1)

    def _classify_gap(self, record: RequestRecord, g0: int, g1: int,
                      reason: str) -> None:
        """Attribute an off-CPU gap ``[g0, g1)`` from its block reason.

        Preempt/yield gaps are pure scheduler wait.  Block gaps split
        at the thread's first ready mark inside the gap: before it the
        thread was genuinely blocked (on a device -> ``transfer``, on a
        lock/condition/join -> ``blocked_on_lock``, on the serving
        layer's retry sleep -> ``backoff``, on its hedge rendezvous ->
        ``hedge_wait``), after it the thread was runnable but queued
        (``sched_wait``).
        """
        seg = record.segments
        length = g1 - g0
        if length <= 0:
            return
        if reason in ("preempt", "yield", "cpu-offline", "exit", ""):
            seg["sched_wait"] += length
            return
        if reason == _BACKOFF_REASON:
            blocked_kind = "backoff"
        elif reason == _HEDGE_REASON:
            blocked_kind = "hedge_wait"
        elif reason.startswith(_BLOCK_DEVICE_PREFIX):
            blocked_kind = "transfer"
        elif reason.startswith(_BLOCK_LOCK_PREFIXES):
            blocked_kind = "blocked_on_lock"
        else:
            seg["sched_wait"] += length
            return
        mark = self._first_ready(record.tid, g0, g1)
        if mark is None:
            seg[blocked_kind] += length
        else:
            seg[blocked_kind] += mark - g0
            seg["sched_wait"] += g1 - mark

    def _first_ready(self, tid: int, after: int, before: int) -> Optional[int]:
        """The first ready mark in ``(after, before]``, or None."""
        marks = self._ready.get(tid)
        if not marks:
            return None
        i = bisect_left(marks, after)
        while i < len(marks) and marks[i] <= after:
            i += 1
        if i < len(marks) and marks[i] <= before:
            return marks[i]
        return None

    def _bus_overlap(self, cpu: int, a: int, b: int) -> Tuple[int, int]:
        """(arb_wait, transfer) cycles of CPU ``cpu``'s bus ops in [a, b).

        Intervals are swept so overlapping ops (e.g. a prefetch racing
        the demand stream) never double-count a cycle; where wait and
        transfer overlap, transfer wins.
        """
        ops = self._bus.get(cpu)
        if not ops:
            return 0, 0
        waits: List[Tuple[int, int]] = []
        xfers: List[Tuple[int, int]] = []
        for (req, grant, release) in ops:
            if release <= a:
                continue
            if req >= b:
                break
            w0, w1 = max(req, a), min(grant, b)
            if w1 > w0:
                waits.append((w0, w1))
            x0, x1 = max(grant, a), min(release, b)
            if x1 > x0:
                xfers.append((x0, x1))
        if not waits and not xfers:
            return 0, 0
        xfer_total = _union_length(xfers)
        # Arb wait counts only where no transfer covers the cycle.
        arb_total = _union_length(waits + xfers) - xfer_total
        return arb_total, xfer_total

    def _record_stats(self, record: RequestRecord) -> None:
        cls = record.cls
        self._class_hist(cls, "turnaround").record(record.turnaround)
        for name in SEGMENTS:
            self._class_hist(cls, name).record(record.segments[name])

    def _class_hist(self, cls: str, what: str) -> Histogram:
        key = (cls, what)
        hist = self._hist.get(key)
        if hist is None:
            hist = Histogram(f"request.{cls}.{what}",
                             bounds=REQUEST_BOUNDS)
            self._hist[key] = hist
        return hist

    def _prune(self, tid: int, upto: int) -> None:
        """Drop evidence this thread's later requests cannot need."""
        slices = self._slices.get(tid)
        if slices:
            # Keep slices that end after the finalised request (the
            # covering slice may also cover the next request's start).
            self._slices[tid] = [s for s in slices if s[1] > upto]
        marks = self._ready.get(tid)
        if marks:
            self._ready[tid] = marks[bisect_left(marks, upto):]

    # -- readouts ------------------------------------------------------

    def classes(self) -> List[str]:
        """Request class names seen, sorted."""
        return sorted({cls for (cls, what) in self._hist
                       if what == "turnaround"})

    def percentiles(self, cls: str) -> Dict[str, Any]:
        """Streaming p50/p95/p99 (+count/mean) for one request class."""
        hist = self._class_hist(cls, "turnaround")
        return {"count": hist.count, "mean": hist.mean,
                "p50": hist.percentile(50), "p95": hist.percentile(95),
                "p99": hist.percentile(99), "max": hist.max}

    def segment_means(self, cls: str) -> Dict[str, float]:
        """Mean cycles per segment for one request class."""
        return {name: self._class_hist(cls, name).mean
                for name in SEGMENTS}

    def span_tree(self, trace: int) -> Dict[int, List[int]]:
        """``parent_span -> [child spans]`` from the causal link events."""
        children: Dict[int, List[int]] = {}
        for name, args in self._links:
            a = dict(args)
            if a.get("trace") != trace:
                continue
            parent = a.get("parent_span", a.get("waker_span", 0))
            span = a.get("span", 0)
            if span:
                children.setdefault(parent, []).append(span)
        return children

    def links(self) -> List[Dict[str, Any]]:
        """The retained causal link events as dicts (fork + wake)."""
        return [dict(args, kind=name.split(".", 1)[1])
                for name, args in self._links]

    def render(self) -> str:
        """A per-class latency table with mean segment shares."""
        lines = ["request critical paths"]
        for cls in self.classes():
            p = self.percentiles(cls)
            lines.append(
                f"  {cls}: n={p['count']} p50={p['p50']} p95={p['p95']} "
                f"p99={p['p99']} mean={p['mean']:.0f} cycles")
            means = self.segment_means(cls)
            total = sum(means.values()) or 1.0
            shares = "  ".join(f"{name}={means[name] / total:.1%}"
                               for name in SEGMENTS)
            lines.append(f"    {shares}")
        if self.incomplete:
            lines.append(f"  ({self.incomplete} request(s) force-closed "
                         f"with an open run slice)")
        if not self.classes():
            lines.append("  (no requests observed)")
        return "\n".join(lines)


def _union_length(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of half-open intervals."""
    if not intervals:
        return 0
    intervals = sorted(intervals)
    total = 0
    cur_start, cur_end = intervals[0]
    for (start, end) in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    total += cur_end - cur_start
    return total


def trace_requests(kernel, transport=None, max_events: int = 0,
                   keep_requests: int = 8192
                   ) -> Tuple[TelemetryHub, RequestTracer]:
    """One-call setup: a streaming hub + request tracer on a kernel.

    ``max_events=0`` keeps the hub buffer empty (pure streaming) so
    long runs don't hold every event; pass a transport to also capture
    ``rpc.call`` requests.
    """
    from repro.telemetry.instrument import (attach_kernel, attach_rpc)
    hub = TelemetryHub(kernel.sim, max_events=max_events)
    attach_kernel(hub, kernel)
    if transport is not None:
        attach_rpc(hub, transport)
    return hub, RequestTracer(hub, keep_requests=keep_requests)
