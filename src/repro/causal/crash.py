"""Deterministic crash reports (schema ``firefly-crash/1``).

:func:`capture_crash` snapshots everything a postmortem needs the
instant something goes wrong — the error, the recent causal events out
of the flight recorder, the wait-for graph over threads and waitables
(with its cycle, if any), per-CPU run state, cache-line summaries and
the in-flight bus operation.  Every field derives from simulation
state only (no wall clock, no ids from unordered iteration), so the
same seed produces a byte-identical report — pinned by a golden-digest
test.

The report is a plain JSON-safe dict; render it with
:func:`repro.causal.postmortem.render_crash_report` or the
``firefly-sim postmortem`` subcommand.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

CRASH_SCHEMA = "firefly-crash/1"
"""Schema tag of every crash report produced here."""

DEFAULT_RECENT_EVENTS = 64
"""Recent causal events included in a report."""


def find_cycle(edges: List[tuple]) -> List[Dict[str, str]]:
    """The first wait-for cycle in ``(waiter, resource, holder)`` triples.

    Follows waiter -> holder links (a waiter can hold several things
    but waits on at most one); returns the cycle's edges in a
    deterministic rotation (starting from its lexicographically
    smallest waiter), or ``[]`` when the graph is acyclic.
    """
    by_waiter = {}
    for waiter, resource, holder in sorted(edges):
        if waiter not in by_waiter and holder:
            by_waiter[waiter] = (resource, holder)
    for start in sorted(by_waiter):
        path = [start]
        seen = {start}
        node = start
        while True:
            nxt = by_waiter.get(node)
            if nxt is None:
                break
            _, holder = nxt
            if holder in seen:
                cycle_nodes = path[path.index(holder):]
                smallest = min(cycle_nodes)
                i = cycle_nodes.index(smallest)
                ordered = cycle_nodes[i:] + cycle_nodes[:i]
                return [{"waiter": w, "resource": by_waiter[w][0],
                         "holder": by_waiter[w][1]}
                        for w in ordered]
            seen.add(holder)
            path.append(holder)
            node = holder
    return []


def _thread_rows(kernel) -> List[Dict[str, Any]]:
    rows = []
    for thread in kernel.threads:
        ctx = thread.ctx
        rows.append({"name": thread.name, "tid": thread.tid,
                     "state": thread.state.value,
                     "blocked_on": thread.blocked_on,
                     "last_cpu": thread.last_cpu,
                     "trace": ctx.trace_id if ctx else 0,
                     "span": ctx.span_id if ctx else 0})
    return rows


def _cpu_rows(kernel) -> List[Dict[str, Any]]:
    rows = []
    for cpu_id, thread in enumerate(kernel._current):
        rows.append({"cpu": cpu_id,
                     "running": thread.name if thread is not None else None,
                     "queued_kernel_bundles":
                         len(kernel._switch_queue[cpu_id])})
    return rows


def _cache_rows(machine) -> List[Dict[str, Any]]:
    rows = []
    for cache in machine.caches:
        valid = sum(1 for _ in cache.valid_lines())
        rows.append({"cache": cache.snooper_id,
                     "valid_lines": valid,
                     "dirty_fraction": round(cache.dirty_fraction(), 6),
                     "occupancy": round(cache.occupancy(), 6)})
    return rows


def _bus_row(machine) -> Dict[str, Any]:
    holder = machine.mbus._resource.holder
    return {"in_flight": holder.name if holder is not None else None,
            "queue_depth": machine.mbus.queue_depth}


def _process_rows(sim) -> List[Dict[str, Any]]:
    rows = []
    for proc in sim._live:
        if not proc.done:
            rows.append({"name": proc.name,
                         "blocked_on": proc._blocked_on})
    rows.sort(key=lambda r: r["name"])
    return rows


def capture_crash(error: BaseException, subject=None, recorder=None,
                  recent: int = DEFAULT_RECENT_EVENTS) -> Dict[str, Any]:
    """Snapshot a deterministic crash report.

    ``subject`` is a TopazKernel or FireflyMachine (kernel preferred —
    it contributes the thread-level wait-for graph and run queues);
    ``recorder`` an optional :class:`FlightRecorder` whose ring
    supplies the recent causal events.
    """
    kernel = subject if hasattr(subject, "scheduler") else None
    machine = getattr(subject, "machine", subject)
    sim = machine.sim if machine is not None else None

    # Wait-for edges: prefer what the error itself pinned (exact at
    # raise time), fall back to live kernel / simulator state.
    edges = [tuple(e) for e in getattr(error, "edges", ()) or ()]
    if not edges and kernel is not None:
        edges = kernel.wait_edges()
    if not edges and sim is not None:
        edges = sim._wait_edges()

    report: Dict[str, Any] = {
        "schema": CRASH_SCHEMA,
        "time": sim.now if sim is not None else None,
        "error": {"type": type(error).__name__, "message": str(error)},
        "wait_for": {
            "edges": [{"waiter": w, "resource": r, "holder": h}
                      for w, r, h in edges],
            "cycle": find_cycle(edges),
        },
    }
    if kernel is not None:
        report["cpus"] = _cpu_rows(kernel)
        report["ready_queue"] = [t.name for t in kernel.scheduler._ready]
        report["threads"] = _thread_rows(kernel)
    if machine is not None:
        report["caches"] = _cache_rows(machine)
        report["bus"] = _bus_row(machine)
    if sim is not None:
        report["processes"] = _process_rows(sim)
    if recorder is not None:
        report["recent_events"] = recorder.recent(recent)
        report["recorder"] = {"recorded": recorder.recorded,
                              "dropped": recorder.dropped,
                              "kept": len(recorder.ring)}
    else:
        report["recent_events"] = []
        report["recorder"] = None
    return report
