"""The RPC throughput workload (paper §6's 4.6 Mbit/s claim).

Builds a machine with the standard I/O complement, binds an
:class:`~repro.topaz.rpc.RpcTransport` to the DEQNA, runs K client
threads making back-to-back bulk-data calls for a measurement window,
and reports sustained goodput.  The A5 bench sweeps K to show the
saturation near 4.6 Mbit/s at about three concurrent threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.io.subsystem import IoSubsystem
from repro.topaz.kernel import TopazKernel
from repro.topaz.rpc import RpcParams, RpcTransport


@dataclass
class RpcRunResult:
    """One measurement point."""

    client_threads: int
    goodput_mbit: float
    calls_completed: int
    wire_utilization: float
    bus_load: float


class RpcWorkload:
    """K RPC client threads on one machine."""

    def __init__(self, processors: int = 5, client_threads: int = 3,
                 params: Optional[RpcParams] = None,
                 seed: int = 1987) -> None:
        if client_threads < 1:
            raise ConfigurationError("need at least one client thread")
        self.client_threads = client_threads
        self.kernel = TopazKernel.build(
            processors=processors,
            threads_hint=client_threads + 4,
            seed=seed,
            io_enabled=True)
        self.io = IoSubsystem(self.kernel.machine)
        buffer, buffer_qbus = self.io.alloc(512, "rpc buffer")
        self.transport = RpcTransport(self.kernel, self.io.ethernet,
                                      buffer_qbus, params=params)

        transport = self.transport
        for i in range(client_threads):
            def client():
                while True:
                    yield from transport.call()
            self.kernel.fork(client, name=f"rpc-client{i}")

    def run(self, warmup_cycles: int = 400_000,
            measure_cycles: int = 2_000_000) -> RpcRunResult:
        """Measure sustained goodput over the window."""
        self.io.start()
        machine = self.kernel.machine
        machine.start()
        sim = self.kernel.sim
        sim.run_until(sim.now + warmup_cycles)
        machine.mark_window()
        self.transport.mark_window()
        self.io.ethernet.stats.mark_all()
        start = sim.now
        sim.run_until(start + measure_cycles)
        window = sim.now - start
        return RpcRunResult(
            client_threads=self.client_threads,
            goodput_mbit=self.transport.goodput_bits_per_second(window) / 1e6,
            calls_completed=self.transport.stats["calls"].windowed,
            wire_utilization=self.io.ethernet.wire_utilization(window),
            bus_load=machine.mbus.load(),
        )


def sweep_client_threads(thread_counts, processors: int = 5,
                         params: Optional[RpcParams] = None,
                         measure_cycles: int = 2_000_000
                         ) -> Dict[int, RpcRunResult]:
    """Goodput versus concurrency — the A5 bench's data."""
    results = {}
    for count in thread_counts:
        workload = RpcWorkload(processors=processors, client_threads=count,
                               params=params)
        results[count] = workload.run(measure_cycles=measure_cycles)
    return results
