"""A counting semaphore built from the Topaz primitives.

Topaz itself offers Mutex and Condition (paper §4.2); workloads that
need bounded parallelism (parallel make's ``-j``, bounded pipeline
buffers) build this classic Mesa-style semaphore on top, exactly as a
Modula-2+ program would.  The count lives in a shared memory word, so
semaphore traffic is real coherence traffic.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.topaz import ops
from repro.topaz.kernel import TopazKernel


class TopazSemaphore:
    """Counting semaphore: ``yield from sem.acquire()`` in thread code."""

    def __init__(self, kernel: TopazKernel, initial: int,
                 name: str = "sem") -> None:
        if initial < 0:
            raise ConfigurationError("semaphore count must be >= 0")
        self.kernel = kernel
        self.name = name
        self.mutex = kernel.mutex(f"{name}.mutex")
        self.condition = kernel.condition(f"{name}.cond")
        self.count_address = kernel.alloc_shared(1, f"{name}.count")
        # Pre-set the count without bus traffic (setup happens before
        # the machine starts running).
        kernel.machine.memory.poke(self.count_address, initial)

    def acquire(self):
        """Topaz fragment: P().  Blocks while the count is zero."""
        yield ops.Lock(self.mutex)
        while True:
            value = yield ops.Read(self.count_address)
            if value > 0:
                yield ops.Write(self.count_address, value - 1)
                break
            yield ops.Wait(self.condition, self.mutex)
        yield ops.Unlock(self.mutex)

    def release(self):
        """Topaz fragment: V()."""
        yield ops.Lock(self.mutex)
        value = yield ops.Read(self.count_address)
        yield ops.Write(self.count_address, value + 1)
        yield ops.Signal(self.condition)
        yield ops.Unlock(self.mutex)
